"""Figure 9: access overhead versus ORAM capacity at 50% utilization.

Paper result (1 MB - 16 GB working sets): overhead grows linearly while
capacity grows exponentially (good scalability); Z = 3 is best for large
ORAMs, while smaller ORAMs favour smaller Z (Z = 2 wins between 1 MB and
64 MB); Z = 1 is never competitive beyond tiny sizes because of dummy
accesses.
"""

from conftest import bench_executor, emit, scaled

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_capacity

Z_VALUES = [1, 2, 3, 4]
# Scaled-down stand-ins for the paper's 1 MB ... 16 GB sweep.
WORKING_SETS = [1024, 4096, 16384]


def _run_experiment():
    return sweep_capacity(
        Z_VALUES,
        WORKING_SETS,
        num_accesses_per_point=scaled(600, minimum=200),
        utilization=0.5,
        seed=11,
        stash_slack=25,
        executor=bench_executor(),
    )


def test_figure9_overhead_vs_capacity(benchmark):
    points = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    by_key = {(p.z, p.working_set_blocks): p for p in points}

    rows = []
    for working_set in WORKING_SETS:
        rows.append(
            [working_set]
            + [f"{by_key[(z, working_set)].access_overhead:.0f}" for z in Z_VALUES]
        )
    emit(
        "Figure 9 — access overhead vs. working set at 50% utilization",
        format_table(["working set (blocks)"] + [f"Z={z}" for z in Z_VALUES], rows),
    )

    # Scalability: doubling the working set several times must grow overhead
    # roughly linearly (levels), not exponentially.
    for z in (3, 4):
        small = by_key[(z, WORKING_SETS[0])].access_overhead
        large = by_key[(z, WORKING_SETS[-1])].access_overhead
        assert large < 4 * small
        assert large > small
    # For the largest ORAM, Z=3 (or Z=4) beats Z=1: dummy accesses dominate
    # small-Z configurations as the tree gets deeper and fuller.
    largest = WORKING_SETS[-1]
    assert by_key[(3, largest)].access_overhead < by_key[(1, largest)].access_overhead
    # For every size, the best Z is never 1 and never the largest bucket by a
    # landslide — moderate Z wins, as in the paper.
    for working_set in WORKING_SETS:
        best_z = min(Z_VALUES, key=lambda z: by_key[(z, working_set)].access_overhead)
        assert best_z in (2, 3, 4)
