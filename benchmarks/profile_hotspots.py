"""Profile the engine's trace-replay hot paths with cProfile.

Runs one flat and one hierarchical steady-state trace replay through the
fused ``access_many`` loops under :mod:`cProfile` and prints the top
cumulative hotspots of each, so future perf PRs start from data instead of
guesses.  The configurations match the perf benchmarks
(``test_perf_engine.py`` / ``test_perf_hierarchy.py``).

Usage::

    PYTHONPATH=src python benchmarks/profile_hotspots.py [--accesses N]
        [--top K] [--loop] [--stack {flat,numpy-flat,hierarchy,all}]

``--loop`` profiles the per-access ``access()`` loop instead of the fused
``access_many`` path — useful for measuring how much the trace-at-once
layer amortises.  ``--stack`` selects which replay to profile: the
list-backed flat engine, the column-native ``numpy-flat`` engine, the
recursive hierarchy, the hierarchy with the PosMap Lookaside Buffer
enabled (``plb``), or (default) all of them — so column-native and
PLB hotspots are profiled with the same harness as the list-engine ones.
"""

import argparse
import cProfile
import io
import pstats
import random
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for entry in (str(_HERE.parent / "src"), str(_HERE)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from conftest import prefill  # noqa: E402

from repro.backends import OramSpec, build_oram  # noqa: E402
from repro.core.config import HierarchyConfig, ORAMConfig  # noqa: E402

FLAT_WORKING_SET = 1 << 15
HIER_WORKING_SET = 1 << 13
TOP_DEFAULT = 20


def _flat_engine():
    config = ORAMConfig(
        working_set_blocks=FLAT_WORKING_SET, z=4, block_bytes=128, stash_capacity=200
    )
    return prefill(
        build_oram(OramSpec(protocol="flat", storage="flat"), config, seed=7),
        FLAT_WORKING_SET,
    )


def _numpy_flat_engine():
    config = ORAMConfig(
        working_set_blocks=FLAT_WORKING_SET, z=4, block_bytes=128, stash_capacity=200
    )
    oram = build_oram(
        OramSpec(protocol="flat", storage="numpy-flat"), config, seed=7
    )
    # Prefill through the column-native trace loop (much faster than the
    # per-access path on this stack).
    oram.access_many(range(1, FLAT_WORKING_SET + 1))
    return oram


def _hier_engine():
    data = ORAMConfig(
        working_set_blocks=HIER_WORKING_SET, z=4, block_bytes=128, stash_capacity=200
    )
    hierarchy = HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=8,
        position_map_z=3,
        onchip_position_map_limit_bytes=512,
        name="profile-hierarchy",
    )
    return prefill(
        build_oram(OramSpec(protocol="hierarchical", storage="flat"), hierarchy, seed=7),
        HIER_WORKING_SET,
    )


def _plb_engine():
    data = ORAMConfig(
        working_set_blocks=HIER_WORKING_SET, z=4, block_bytes=128, stash_capacity=200
    )
    hierarchy = HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=8,
        position_map_z=3,
        onchip_position_map_limit_bytes=512,
        name="profile-plb",
    )
    spec = OramSpec(
        protocol="hierarchical", storage="flat", plb_entries_per_level=8
    )
    return prefill(build_oram(spec, hierarchy, seed=7), HIER_WORKING_SET)


def profile_replay(name: str, engine, working_set: int, accesses: int,
                   top: int, loop: bool) -> str:
    """Profile one steady-state replay; return the formatted report."""
    rng = random.Random(11)
    addresses = [rng.randrange(1, working_set + 1) for _ in range(accesses)]
    profiler = cProfile.Profile()
    if loop:
        access = engine.access
        profiler.enable()
        for address in addresses:
            access(address)
        profiler.disable()
    else:
        profiler.enable()
        engine.access_many(addresses)
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=30_000,
                        help="trace length per replay (default 30000)")
    parser.add_argument("--top", type=int, default=TOP_DEFAULT,
                        help="hotspots to print per replay (default 20)")
    parser.add_argument("--loop", action="store_true",
                        help="profile the per-access loop instead of access_many")
    parser.add_argument("--stack", default="all",
                        choices=("flat", "numpy-flat", "hierarchy", "plb", "all"),
                        help="which replay to profile (default: all)")
    args = parser.parse_args(argv)

    replays = {
        "flat": ("flat", _flat_engine, FLAT_WORKING_SET),
        "numpy-flat": ("numpy-flat", _numpy_flat_engine, FLAT_WORKING_SET),
        "hierarchy": ("hierarchical", _hier_engine, HIER_WORKING_SET),
        "plb": ("plb", _plb_engine, HIER_WORKING_SET),
    }
    if args.stack == "all":
        selected = list(replays.values())
    else:
        selected = [replays[args.stack]]
    if args.stack in ("numpy-flat", "all"):
        try:
            import numpy  # noqa: F401
        except ImportError:
            selected = [entry for entry in selected if entry[0] != "numpy-flat"]
            print("(numpy not installed; skipping the numpy-flat replay)")

    mode = "access() loop" if args.loop else "access_many (trace-at-once)"
    for name, builder, working_set in selected:
        print("=" * 72)
        print(f"{name} replay — {args.accesses} accesses via {mode}")
        print("=" * 72)
        report = profile_replay(
            name, builder(), working_set, args.accesses, args.top, args.loop
        )
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
