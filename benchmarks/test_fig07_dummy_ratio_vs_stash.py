"""Figure 7: dummy-access / real-access ratio versus stash size for Z = 1, 2, 3.

Paper result (4 GB ORAM, 2 GB working set): for Z >= 2 the dummy ratio is
low and nearly flat from a 100-block to an 800-block stash; Z = 1 needs
many times more dummy accesses, which makes it a bad design point.  The
paper fixes C = 200 for the rest of the evaluation.
"""

from conftest import bench_executor, emit, scaled

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_stash_size

WORKING_SET_BLOCKS = 1024
Z_VALUES = [1, 2, 3]
# The paper sweeps 100-800 blocks on a 25-level tree; the scaled-down tree
# here has ~11 levels, so the stash sizes are scaled accordingly (the
# eviction threshold C - Z(L+1) is what matters).
STASH_SIZES = [40, 60, 100, 200]


def _run_experiment():
    return sweep_stash_size(
        Z_VALUES,
        STASH_SIZES,
        working_set_blocks=WORKING_SET_BLOCKS,
        num_accesses=scaled(2500, minimum=400),
        seed=3,
        executor=bench_executor(),
    )


def test_figure7_dummy_ratio_vs_stash_size(benchmark):
    points = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    by_key = {(p.z, p.stash_capacity): p for p in points}

    rows = []
    for stash in STASH_SIZES:
        rows.append([stash] + [f"{by_key[(z, stash)].dummy_ratio:.3f}" for z in Z_VALUES])
    emit(
        "Figure 7 — dummy accesses per real access vs. stash size "
        f"(working set {WORKING_SET_BLOCKS} blocks, 50% utilization)",
        format_table(["stash size"] + [f"Z={z}" for z in Z_VALUES], rows),
    )

    # Z=1 needs far more dummy accesses than Z=2 and Z=3 at every stash size.
    for stash in STASH_SIZES:
        assert by_key[(1, stash)].dummy_ratio >= by_key[(2, stash)].dummy_ratio
        assert by_key[(1, stash)].dummy_ratio >= by_key[(3, stash)].dummy_ratio
    assert by_key[(1, STASH_SIZES[0])].dummy_ratio > 0.5
    # Z>=2 keeps the ratio low, and growing the stash only helps slightly.
    for z in (2, 3):
        largest = by_key[(z, STASH_SIZES[-1])].dummy_ratio
        assert largest <= by_key[(z, STASH_SIZES[0])].dummy_ratio + 0.05
        assert by_key[(z, STASH_SIZES[1])].dummy_ratio < 1.0
