"""Faithful in-process replays of the seed repository's hot paths.

The perf benchmarks compare the current engine against the seed
implementation *as it was*, so every per-access cost the engine refactors
removed is reproduced here:

* ``path_indices`` recomputed (and range-revalidated) several times per
  access, and the tree-depth search re-run for every derived-property use
  (the seed's ``ORAMConfig`` cached nothing);
* ``PlainTreeStorage`` reads with a per-bucket list copy per bucket;
* path blocks individually inserted into (and popped from) an unindexed
  stash;
* the write-back rescanning that entire stash with a
  ``leaf_common_path_length`` call per block and freshly allocated
  per-level scratch lists;
* the position map driven through its method interface with ``randrange``
  leaf draws (the engine inlines a ``getrandbits`` draw);
* the background-eviction policy consulted on every access, deriving its
  threshold from the configuration each time (the engine gates the call on
  a cached threshold);
* the hierarchical chain walked through the generic ``access_path`` with a
  per-level ``mutate`` closure and per-round ``randrange`` draws.

Kept under ``benchmarks/`` because only the perf regression tests need it.
"""

import math

from repro.core.background_eviction import EvictionPolicy, NoEviction
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.path_oram import PathORAM, leaf_common_path_length
from repro.core.position_map import PositionMap
from repro.core.stats import AccessStats
from repro.core.tree import PlainTreeStorage, path_indices
from repro.core.types import AccessResult, Block, Operation
from repro.errors import ReproError, StashOverflowError


def seed_levels(config):
    """The seed's uncached ``ORAMConfig.levels``: recomputed on every use."""
    total = max(1, math.ceil(config.working_set_blocks / config.utilization))
    buckets_needed = math.ceil(total / config.z)
    level = 0
    while (1 << (level + 1)) - 1 < buckets_needed:
        level += 1
    return level


def seed_eviction_threshold(config):
    """The seed's uncached ``ORAMConfig.eviction_threshold``."""
    if config.stash_capacity is None:
        return None
    return config.stash_capacity - config.z * (seed_levels(config) + 1)


def seed_num_leaves(config):
    """The seed's uncached ``ORAMConfig.num_leaves``.

    The v0 configuration derived every property from scratch, so each
    ``num_leaves`` read re-ran the tree-depth search.  The replay must pay
    the same cost wherever v0 read the property per access (the PR-3
    recalibration: the PR-2 replay resolved ``cfg.num_leaves`` against the
    engine's cached config and ran ~9% faster than the real v0 commit on
    the recursive chain).
    """
    return 1 << seed_levels(config)


class SeedBackgroundEviction(EvictionPolicy):
    """The seed's eviction policy: threshold re-derived on every call."""

    def __init__(self, livelock_limit: int = 100_000) -> None:
        self._livelock_limit = livelock_limit

    def after_access(self, oram):
        threshold = seed_eviction_threshold(oram.config)
        if threshold is None:
            return 0
        issued = 0
        while oram.stash_occupancy > threshold:
            oram.dummy_access()
            issued += 1
            if issued > self._livelock_limit:
                raise ReproError("seed reference eviction livelock")
        return issued


class _SeedStash:
    """The seed's stash: a plain address-keyed dict with no leaf index."""

    def __init__(self):
        self._blocks = {}
        self._max_occupancy = 0

    def __len__(self):
        return len(self._blocks)

    def __contains__(self, address):
        return address in self._blocks

    def __iter__(self):
        return iter(self._blocks.values())

    @property
    def occupancy(self):
        return len(self._blocks)

    @property
    def max_occupancy(self):
        return self._max_occupancy

    def add(self, block):
        if block.is_dummy():
            return
        self._blocks[block.address] = block
        if len(self._blocks) > self._max_occupancy:
            self._max_occupancy = len(self._blocks)

    def get(self, address):
        return self._blocks.get(address)

    def pop(self, address):
        return self._blocks.pop(address, None)

    def retarget(self, address, new_leaf):
        block = self._blocks.get(address)
        if block is not None:
            block.leaf = new_leaf
        return block

    def addresses(self):
        return list(self._blocks.keys())


class SeedReferenceORAM(PathORAM):
    """PathORAM with the seed repository's storage/protocol hot path.

    Construct with ``storage=PlainTreeStorage(config)`` and
    ``eviction_policy=SeedBackgroundEviction()`` to replay the full seed
    stack.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._stash = _SeedStash()
        # Re-point the friend views the engine __init__ captured; the leaf
        # index stays empty because the seed stash has none.
        self._stash_blocks = self._stash._blocks
        self._stash_by_leaf = {}

    def _unsupported(self, name):
        # Entry points the replay does not reproduce would otherwise run
        # inherited code against the swapped-in seed stash (which lacks the
        # engine stash's leaf index and range operations) and fail obscurely.
        raise NotImplementedError(
            f"SeedReferenceORAM replays accessORAM/dummy access only; {name} "
            "is not part of the seed hot-path replay"
        )

    def extract(self, address):
        self._unsupported("extract")

    def extract_path(self, address, current_leaf, new_leaf):
        self._unsupported("extract_path")

    def insert(self, address, data=None):
        self._unsupported("insert")

    def remap_access(self, address):
        self._unsupported("remap_access")

    def contains(self, address):
        self._unsupported("contains")

    def access_position_block(self, *args, **kwargs):
        self._unsupported("access_position_block")

    def access(self, address, op=Operation.READ, data=None):
        # The seed's accessORAM: position-map traffic through the method
        # interface, a randrange leaf draw, and the eviction policy
        # consulted on every access.
        self._check_address(address)
        group = self._mapper.group_of(address)
        position_map = self.position_map
        old_leaf = position_map.lookup(group)
        new_leaf = self._rng.randrange(position_map.num_leaves)
        position_map.assign(group, new_leaf)
        result = self._access_path(address, group, old_leaf, new_leaf, op, data)
        self._stats.record_real_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)
        result.dummy_accesses = self.eviction_policy.after_access(self)
        self._check_stash_bound()
        return result

    def dummy_access(self):
        leaf = self._rng.randrange(self.position_map.num_leaves)
        self._read_path_into_stash(leaf)
        self._write_back_path(leaf)
        self._stats.record_dummy_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)

    def _access_path(self, address, group, current_leaf, new_leaf, op, data, mutate=None):
        # The seed's accessPath: no single-member fast path — the whole
        # group is retargeted through addresses_in_group every time.
        self._read_path_into_stash(current_leaf)
        block = self._stash.get(address)
        found = block is not None
        if block is None:
            if op is Operation.WRITE or mutate is not None or self._create_on_miss:
                block = Block(address=address, leaf=new_leaf, data=None)
                self._stash.add(block)
        if block is not None and op is Operation.WRITE:
            block.data = data
        if block is not None and mutate is not None:
            block.data = mutate(block.data)
        self._seed_retarget_group(group, new_leaf)
        result_data = block.data if block is not None else None
        self._write_back_path(current_leaf)
        return AccessResult(address=address, data=result_data, found=found)

    def _seed_retarget_group(self, group, new_leaf):
        for member in self._mapper.addresses_in_group(group):
            member_block = self._stash.get(member)
            if member_block is not None:
                member_block.leaf = new_leaf

    def _read_path_into_stash(self, leaf):
        if self._record_path_trace:
            self._path_trace.append(leaf)
        blocks = []
        for bucket_index in path_indices(leaf, seed_levels(self.config)):
            blocks.extend(self.storage.read_bucket(bucket_index))
        for block in blocks:
            self._stash.add(block)
        self._stats.record_path_read(len(blocks))

    def _write_back_path(self, leaf):
        levels = seed_levels(self.config)
        z = self.config.z
        path = path_indices(leaf, seed_levels(self.config))
        by_deepest = [[] for _ in range(levels + 1)]
        for block in self._stash:
            deepest = leaf_common_path_length(block.leaf, leaf, levels) - 1
            by_deepest[deepest].append(block)
        assignments = {}
        written = 0
        available = []
        for level in range(levels, -1, -1):
            available.extend(by_deepest[level])
            bucket = []
            while available and len(bucket) < z:
                bucket.append(available.pop())
            if bucket:
                assignments[path[level]] = bucket
                written += len(bucket)
                for block in bucket:
                    self._stash.pop(block.address)
        for bucket_index in path_indices(leaf, seed_levels(self.config)):
            self.storage.write_bucket(bucket_index, assignments.get(bucket_index, []))
        self._stats.record_path_write(written)

    def _check_stash_bound(self):
        capacity = self.config.stash_capacity
        if capacity is not None and self._stash.occupancy > capacity:
            raise StashOverflowError("seed reference stash overflow")


class SeedReferenceHierarchicalORAM:
    """The seed's recursive construction over seed-reference Path ORAMs.

    Replays the pre-refactor hierarchical hot path: the position-map chain
    walked through the generic ``access_path`` with a freshly allocated
    ``mutate`` closure (plus captured-state dict) per level, per-ORAM
    ``randrange`` draws for the new leaves, and per-round stash threshold
    checks against the uncached configuration — all over seed-reference
    ORAMs with ``PlainTreeStorage``.
    """

    def __init__(self, hierarchy: HierarchyConfig, rng) -> None:
        self._hierarchy = hierarchy
        self._rng = rng
        self._configs = hierarchy.oram_configs
        # As in the seed construction, per-ORAM policies are disabled: the
        # hierarchy issues its own dummy rounds across every ORAM.
        self._orams = [
            SeedReferenceORAM(
                config,
                storage=PlainTreeStorage(config),
                eviction_policy=NoEviction(),
                rng=self._rng,
                create_on_miss=True,
            )
            for config in self._configs
        ]
        self._labels_per_block = [
            hierarchy.labels_per_position_block(self._configs[i])
            for i in range(len(self._configs) - 1)
        ]
        outer = self._configs[-1]
        self._onchip_position_map = PositionMap(
            outer.position_map_entries, outer.num_leaves, rng=self._rng
        )
        self._stats = AccessStats()
        self._livelock_limit = 100_000

    @property
    def stats(self) -> AccessStats:
        return self._stats

    @property
    def orams(self):
        return tuple(self._orams)

    def access(self, address, op=Operation.READ, data=None):
        current_leaf = self._resolve_position_chain(address)
        result = self._orams[0].access_path(
            address, current_leaf, self._pending_data_leaf, op, data
        )
        self._stats.record_real_access()
        result.dummy_accesses = self._run_background_eviction()
        return result

    def read(self, address):
        return self.access(address, Operation.READ)

    def write(self, address, data):
        return self.access(address, Operation.WRITE, data)

    def total_blocks_stored(self):
        return sum(
            oram._stash.occupancy + oram.storage.occupancy() for oram in self._orams
        )

    def _identifier_chain(self, address):
        chain = []
        identifier = self._orams[0].super_block_mapper.group_of(address)
        for labels_per_block in self._labels_per_block:
            block_address = identifier // labels_per_block + 1
            slot = identifier % labels_per_block
            chain.append((block_address, slot))
            identifier = block_address - 1
        return chain

    def _resolve_position_chain(self, address):
        chain = self._identifier_chain(address)
        new_leaves = [self._rng.randrange(seed_num_leaves(cfg)) for cfg in self._configs]
        self._pending_data_leaf = new_leaves[0]

        if not chain:
            group = self._orams[0].super_block_mapper.group_of(address)
            current = self._onchip_position_map.lookup(group)
            self._onchip_position_map.assign(group, new_leaves[0])
            return current

        outer_index = len(self._configs) - 1
        outer_block_address, _ = chain[-1]
        outer_group = self._orams[outer_index].super_block_mapper.group_of(outer_block_address)
        current_leaf = self._onchip_position_map.lookup(outer_group)
        self._onchip_position_map.assign(outer_group, new_leaves[outer_index])

        for oram_index in range(outer_index, 0, -1):
            block_address, slot = chain[oram_index - 1]
            child_config = self._configs[oram_index - 1]
            child_new_leaf = new_leaves[oram_index - 1]
            labels_per_block = self._labels_per_block[oram_index - 1]
            captured = {}

            def mutate(labels, *,
                       _slot=slot,
                       _k=labels_per_block,
                       _child_leaves=seed_num_leaves(child_config),
                       _new=child_new_leaf,
                       _captured=captured):
                if labels is None:
                    labels = [self._rng.randrange(_child_leaves) for _ in range(_k)]
                else:
                    labels = list(labels)
                _captured["current"] = labels[_slot]
                labels[_slot] = _new
                return labels

            self._orams[oram_index].access_path(
                block_address,
                current_leaf,
                new_leaves[oram_index],
                Operation.READ,
                None,
                mutate=mutate,
            )
            if "current" not in captured:
                raise ReproError("position-map block mutation did not run")
            current_leaf = captured["current"]
        return current_leaf

    def _run_background_eviction(self):
        rounds = 0
        while self._any_stash_over_threshold():
            for oram in reversed(self._orams):
                oram.dummy_access()
            rounds += 1
            self._stats.record_dummy_access()
            if rounds > self._livelock_limit:
                raise ReproError("seed reference hierarchy eviction livelock")
        # v0 swept every stash bound unconditionally after each access.
        self._check_stash_bounds()
        return rounds

    def _check_stash_bounds(self):
        for oram in self._orams:
            capacity = oram.config.stash_capacity
            if capacity is not None and oram.stash_occupancy > capacity:
                raise StashOverflowError("seed reference hierarchy stash overflow")

    def _any_stash_over_threshold(self):
        for oram in self._orams:
            threshold = seed_eviction_threshold(oram.config)
            if threshold is not None and oram.stash_occupancy > threshold:
                return True
        return False
