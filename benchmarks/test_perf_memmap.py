"""Beyond-RAM capacity benchmark for the durable ``memmap-flat`` stack.

The Table-2-style capacity question: how much does crash-consistent
on-disk column storage cost at a tree size past 2^21 block slots, where
the volatile stacks are the RAM ceiling?  One paired-window run drives the
``memmap-flat`` stack and the in-RAM ``numpy-flat`` stack over identical
workload streams through the same column-native engine; the recorded
``speedup`` is ``memmap_rate / numpy_flat_rate``.

The paired windows run the documented capacity configuration — relaxed
journaling with commits at window boundaries, where a crash loses at most
the uncommitted window and recovery still lands on the last committed
generation (the relaxed crash-property tests pin that down).  Strict
mode, which fsyncs every path's fresh pre-images before mutating them,
is measured separately and recorded as ``strict_accesses_per_s``: at this
tree size nearly every random access touches never-yet-journaled pages,
so strict pays one fsync per access by design.

The committed floor of 0.2 in ``benchmarks/perf_floors.json`` bounds the
relaxed-mode durability tax (first-touch pre-image journaling without the
per-access fsync) at 5x against the purely volatile columns.  The point
costs of one :meth:`commit` and one verified reopen (full page-checksum
sweep) are recorded alongside, plus the on-disk footprint — the numbers
ROADMAP item 4 closes with.

Both storages must also end the paired run with bit-identical columns —
the durability layer is a transparent home for the same engine, not a
fork of it.
"""

import os
import random
import time

import pytest

np = pytest.importorskip("numpy")

from conftest import (  # noqa: E402
    measure_window_many,
    paired_throughput,
    perf_floor,
    record_perf,
    scaled,
)

from repro.backends import OramSpec, build_oram  # noqa: E402
from repro.core.config import ORAMConfig  # noqa: E402
from repro.core.memmap_tree import MemmapTreeStorage, column_digest  # noqa: E402

#: One notch past the 2^20-slot full-scale threshold: the acceptance
#: criterion's ">= 2^21 block slots" capacity point.
WORKING_SET = 1 << 20
Z = 4

WINDOWS = 3

SPEEDUP_FLOOR = perf_floor("memmap")


def test_memmap_capacity_vs_numpy_flat(benchmark, tmp_path):
    config = ORAMConfig(working_set_blocks=WORKING_SET, z=Z, block_bytes=128, stash_capacity=200)
    slots = config.num_buckets * config.z
    assert slots >= 1 << 21, f"capacity point too small: {slots} slots"
    prefill = scaled(16_384, minimum=2048)
    measured = scaled(3000, minimum=600)

    def _run():
        durable = build_oram(
            OramSpec(
                protocol="flat",
                storage="memmap-flat",
                storage_path=os.fspath(tmp_path / "relaxed"),
                memmap_sync="relaxed",
            ),
            config,
            seed=7,
        )
        assert durable._column_engine is not None  # noqa: SLF001
        volatile = build_oram(OramSpec(protocol="flat", storage="numpy-flat"), config, seed=7)
        durable.access_many(range(1, prefill + 1))
        volatile.access_many(range(1, prefill + 1))
        pair = paired_throughput(
            durable,
            volatile,
            WINDOWS,
            measured,
            WORKING_SET,
            trace_seed=11,
            engine_window=measure_window_many,
            reference_window=measure_window_many,
        )
        # Same seed, same streams, same engine: the durable home must hold
        # bit-identical columns.
        assert column_digest(durable.storage) == column_digest(volatile.storage)

        storage = durable.storage
        start = time.perf_counter()
        generation = storage.commit()
        commit_ms = (time.perf_counter() - start) * 1e3
        file_bytes = storage.storage_bytes()
        path = storage.file_path
        digest = storage.digest()
        storage.abandon()

        start = time.perf_counter()
        reopened = MemmapTreeStorage.open(path)
        reopen_ms = (time.perf_counter() - start) * 1e3
        assert reopened.generation == generation
        assert reopened.digest() == digest
        reopened.abandon()

        # One smaller strict-mode window: per-access durability, one fsync
        # per random access at this tree size.
        strict = build_oram(
            OramSpec(
                protocol="flat",
                storage="memmap-flat",
                storage_path=os.fspath(tmp_path / "strict"),
                memmap_sync="strict",
            ),
            config,
            seed=7,
        )
        strict_measured = max(100, measured // 4)
        strict_rate = measure_window_many(strict, random.Random(11), strict_measured, WORKING_SET)
        strict.storage.abandon()
        return pair, commit_ms, reopen_ms, file_bytes, strict_rate

    (
        (memmap_rate, numpy_rate),
        commit_ms,
        reopen_ms,
        file_bytes,
        strict_rate,
    ) = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = memmap_rate / numpy_rate

    record = {
        "config": (
            f"flat Path ORAM, working set 2^20 blocks ({slots} slots, "
            f"Z={Z}), memmap-flat relaxed journaling vs in-RAM numpy-flat"
        ),
        "workload": (
            f"{prefill} prefill + {WINDOWS}x{measured} paired uniform "
            "random accesses per stack, identical streams"
        ),
        "metric": "accesses per second, durable vs volatile columns",
        "cpus": os.cpu_count(),
        "slots": slots,
        "memmap_accesses_per_s": round(memmap_rate, 1),
        "numpy_flat_accesses_per_s": round(numpy_rate, 1),
        "strict_accesses_per_s": round(strict_rate, 1),
        "file_bytes": file_bytes,
        "commit_ms": round(commit_ms, 2),
        "reopen_verify_ms": round(reopen_ms, 2),
        "target": "durability tax bounded at 5x (floor 0.2x)",
        "speedup": round(speedup, 3),
    }
    record_perf(
        "memmap",
        record,
        "Durable memmap capacity — 2^21-slot tree, crash-consistent "
        "columns vs in-RAM columns",
    )

    floor_message = (
        f"memmap stack at {speedup:.3f}x the numpy-flat stack " f"(floor {SPEEDUP_FLOOR:.2f}x)"
    )
    assert speedup >= SPEEDUP_FLOOR, floor_message
