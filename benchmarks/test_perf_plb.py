"""PosMap Lookaside Buffer throughput and PM-ops-saved benchmark.

Replays SPEC-like ``mcf`` (pointer-chasing, the PLB's hard case) and
``libquantum`` (sequential streaming, its easy case) through the same
recursive hierarchy as the ``chain_coalescing`` benchmark at three chain
configurations:

* ``plb0`` — the uncoalesced baseline chain (every access walks every
  position-map level physically);
* ``plb1`` — a capacity-1 PLB, which reproduces the pre-PLB single-op
  suffix memo (``coalesce_position_ops``) bit for bit;
* ``plb8`` — an 8-entries-per-level PLB, the paper-scale on-chip budget.

All three replay identical derived-seed streams window for window
(lock-stepped harness RNGs), so the throughput ratio and the
position-map-ops-saved rates measure the cache alone.  The section lands
in ``BENCH_engine.json`` with ``speedup`` = plb8 over the uncoalesced
chain on the libquantum stream, gated by the committed ``plb`` floor;
the mcf-like stream must additionally save at least 0.5 of the chain's 3
position-map ops per access at the 8-entry budget (a multi-entry win the
single-op memo cannot reach), and libquantum must keep the >= 1.9 the
memo already delivered.
"""

import gc
import random
import time

import pytest

np = pytest.importorskip("numpy")

from conftest import perf_floor, record_perf, scaled  # noqa: E402

from repro.backends import OramSpec, build_oram  # noqa: E402
from repro.core.config import HierarchyConfig, ORAMConfig  # noqa: E402
from repro.workloads.spec_like import benchmark_trace  # noqa: E402

#: Same recursive geometry as the chain_coalescing benchmark: a
#: 2^16-block column-native data ORAM under 16-byte position-map blocks —
#: a 4-ORAM chain, so the uncached walk costs 3 PM path ops per access.
HIER_WORKING_SET = 1 << 16

#: Interleaved measurement windows per configuration.
WINDOWS = 3

#: The PLB capacities under test (0 = uncoalesced, 1 = the PR 4 memo).
CAPACITIES = (0, 1, 8)

SPEEDUP_FLOOR = perf_floor("plb")

#: ISSUE acceptance bars on position-map ops saved per access (of 3).
MCF_SAVED_FLOOR = 0.5
LIBQUANTUM_SAVED_FLOOR = 1.9


def _hierarchy() -> HierarchyConfig:
    data = ORAMConfig(
        working_set_blocks=HIER_WORKING_SET, z=4, block_bytes=128, stash_capacity=200
    )
    return HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=16,
        position_map_z=3,
        onchip_position_map_limit_bytes=512,
        name="plb-bench",
    )


def _build(capacity: int):
    spec = OramSpec(
        protocol="hierarchical",
        storage="numpy-flat",
        plb_entries_per_level=capacity,
        columnar_min_slots=1 << 16,
    )
    oram = build_oram(spec, _hierarchy(), seed=7)
    oram.access_many(range(1, HIER_WORKING_SET + 1))
    return oram


def _window(oram, rng, measured: int, bench: str) -> float:
    """One SPEC replay window through ``access_many``; returns accesses/s."""
    warmup = max(1, measured // 20)
    trace = benchmark_trace(bench, warmup + measured, seed=rng.getrandbits(32))
    addresses = [
        (record.address // 128) % HIER_WORKING_SET + 1 for record in trace
    ]
    oram.access_many(addresses[:warmup])
    gc.collect()
    start = time.perf_counter()
    oram.access_many(addresses[warmup:])
    return measured / (time.perf_counter() - start)


def _pm_counters(oram) -> tuple[int, int, int, int]:
    pm = [o.stats for o in oram.orams[1:]]
    return (
        oram.stats.real_accesses,
        sum(s.real_accesses for s in pm),
        sum(s.coalesced_ops for s in pm),
        sum(s.plb_hits for s in pm),
    )


def test_plb_spec_replay_vs_uncoalesced_chain(benchmark):
    measured = scaled(4000, minimum=800)

    def _run():
        engines = {capacity: _build(capacity) for capacity in CAPACITIES}
        for capacity, oram in engines.items():
            assert oram.plb_active == (capacity > 0)
        results = {}
        for bench in ("mcf", "libquantum"):
            before = {c: _pm_counters(oram) for c, oram in engines.items()}
            rngs = {c: random.Random(11) for c in CAPACITIES}
            rates = {c: [] for c in CAPACITIES}
            # Interleave windows across the capacities (lock-stepped RNGs:
            # every configuration replays the identical streams).
            for _ in range(WINDOWS):
                for capacity, oram in engines.items():
                    rates[capacity].append(
                        _window(oram, rngs[capacity], measured, bench)
                    )
            stats = {}
            for capacity, oram in engines.items():
                acc0, pm0, co0, hit0 = before[capacity]
                acc1, pm1, co1, hit1 = _pm_counters(oram)
                accesses = acc1 - acc0
                stats[capacity] = {
                    "rate": sum(rates[capacity]) / WINDOWS,
                    "pm_ops_per_access": (pm1 - pm0) / accesses,
                    "saved_per_access": (co1 - co0) / accesses,
                    "hits_per_access": (hit1 - hit0) / accesses,
                }
            results[bench] = stats
        num_orams = engines[0].num_orams
        return results, num_orams

    results, num_orams = benchmark.pedantic(_run, rounds=1, iterations=1)

    mcf8 = results["mcf"][8]
    libq8 = results["libquantum"][8]
    speedup = libq8["rate"] / results["libquantum"][0]["rate"]
    mcf_speedup = mcf8["rate"] / results["mcf"][0]["rate"]

    record = {
        "config": (
            f"{num_orams}-level recursive hierarchy, data working_set="
            f"{HIER_WORKING_SET} blocks (column-native), 16B position-map "
            "blocks, PLB capacities 0/1/8 entries per level"
        ),
        "baseline": "the same chain with the PLB off (plb_entries_per_level=0)",
        "engine_path": "access_many fused chain with the PosMap Lookaside Buffer",
        "workload": "spec-like mcf (pointer chasing) + libquantum (streaming)",
        "accesses_per_window": measured,
        "window_pairs": WINDOWS,
        "pm_ops_per_access_uncoalesced": num_orams - 1,
        "mcf_saved_per_access_plb8": round(mcf8["saved_per_access"], 2),
        "mcf_saved_per_access_memo": round(
            results["mcf"][1]["saved_per_access"], 2
        ),
        "mcf_hit_rate_proxy_hits_per_access": round(mcf8["hits_per_access"], 2),
        "mcf_speedup_plb8": round(mcf_speedup, 2),
        "libquantum_saved_per_access_plb8": round(libq8["saved_per_access"], 2),
        "libquantum_saved_per_access_memo": round(
            results["libquantum"][1]["saved_per_access"], 2
        ),
        "libquantum_accesses_per_sec_plb8": round(libq8["rate"], 1),
        "libquantum_accesses_per_sec_uncoalesced": round(
            results["libquantum"][0]["rate"], 1
        ),
        "speedup": round(speedup, 2),
    }
    record_perf(
        "plb",
        record,
        "PosMap Lookaside Buffer — SPEC replays at 0/1/8 entries per level "
        "on the adaptive numpy-flat chain",
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"PLB chain only {speedup:.2f}x over the uncoalesced chain"
    )
    assert mcf8["saved_per_access"] >= MCF_SAVED_FLOOR, (
        f"mcf-like stream saved only {mcf8['saved_per_access']:.2f} of "
        f"{num_orams - 1} PM ops per access at 8 entries/level"
    )
    assert libq8["saved_per_access"] >= LIBQUANTUM_SAVED_FLOOR, (
        f"libquantum stream saved only {libq8['saved_per_access']:.2f} of "
        f"{num_orams - 1} PM ops per access at 8 entries/level"
    )
    # The multi-entry PLB must beat the single-op memo on pointer chasing.
    assert mcf8["saved_per_access"] > results["mcf"][1]["saved_per_access"]
    # The baseline chain must not coalesce anything.
    assert results["mcf"][0]["saved_per_access"] == 0.0
