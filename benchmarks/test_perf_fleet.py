"""Fleet executor benchmark: one batched tensor run versus the pool.

Runs a fixed Figure-8-style sweep grid — one tree shape, so the whole
grid rides in a single :class:`~repro.core.numpy_fleet.FleetEngine`
batch — through ``executor="fleet"`` and through the process-pool
executor the sweep drivers used before, in alternating paired windows.
Both executors must return bit-identical grids (the differential suite
in ``tests/test_fleet.py`` pins the per-point states too); the recorded
``speedup`` is the fleet's wall-clock advantage over the pool.

Honesty note: the design target for fleet batching was >=5x over the
pool on multi-core sweep machines, where one process drives SIMD-width
tensor steps while the pool pays per-process simulation.  This CI
container has a single CPU, where the pool degenerates to serial
execution and the serial list engine's ~9 us/access at Figure-8
occupancies undercuts the tensor step's fixed dispatch cost
(~13 us/batched access at batch width ~50) — the fleet lands around
0.6x here, and the committed floor in ``benchmarks/perf_floors.json``
gates that ratio against regressions rather than certifying the target.
ROADMAP.md records the measured gap and the remaining levers.  The
section lands in ``BENCH_engine.json`` as ``fleet``.
"""

import os
import time

import pytest

np = pytest.importorskip("numpy")

from conftest import median_pair, perf_floor, record_perf, scaled  # noqa: E402

from repro.analysis.sweep import run_sweep, utilization_config  # noqa: E402
from repro.runner.fleet import FLEET_MIN_GROUP  # noqa: E402

Z = 4
#: Tree capacity of the Figure-8 grid; utilization points whose quantised
#: tree grows past the dominant shape are filtered out so the whole grid
#: shares one ``(levels, Z)`` batch.
CAPACITY = 2048
#: Interleaved fleet/pool windows over the same grid.
WINDOWS = 3

SPEEDUP_FLOOR = perf_floor("fleet")


def _grid_configs():
    """The benchmark grid: one shape's worth of Figure-8 utilization points."""
    configs = [utilization_config(Z, 0.35 + 0.005 * index, CAPACITY) for index in range(60)]
    levels = configs[0].levels
    return [config for config in configs if config.levels == levels]


def test_fleet_grid_vs_process_pool(benchmark):
    configs = _grid_configs()
    assert len(configs) >= FLEET_MIN_GROUP, "grid must engage the engine"
    num_accesses = scaled(250, minimum=50)

    def _window(executor):
        start = time.perf_counter()
        points = run_sweep(configs, num_accesses, seed=13, executor=executor)
        return points, time.perf_counter() - start

    def _run():
        pairs = []
        reference = None
        for _ in range(WINDOWS):
            fleet_points, fleet_seconds = _window("fleet")
            pool_points, pool_seconds = _window("process")
            # Batching must not change a single grid value.
            assert fleet_points == pool_points
            if reference is None:
                reference = fleet_points
            else:
                assert fleet_points == reference
            pairs.append((len(configs) / fleet_seconds, len(configs) / pool_seconds))
        return median_pair(pairs)

    fleet_rate, pool_rate = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = fleet_rate / pool_rate
    per_point = sum(
        config.working_set_blocks for config in _grid_configs()
    ) / len(_grid_configs()) + num_accesses

    record = {
        "config": (
            f"Z={Z}, capacity={CAPACITY} blocks, {len(configs)} utilization "
            f"points sharing one (levels={configs[0].levels}, Z) batch"
        ),
        "workload": (
            f"figure-8 sweep grid, prefill + {num_accesses} measured "
            f"accesses per point (~{per_point:.0f} accesses/point)"
        ),
        "metric": "grid points per second, fleet batch vs process pool",
        "cpus": os.cpu_count(),
        "fleet_points_per_s": round(fleet_rate, 2),
        "pool_points_per_s": round(pool_rate, 2),
        "fleet_us_per_access": round(1e6 / (fleet_rate * per_point), 2),
        "pool_us_per_access": round(1e6 / (pool_rate * per_point), 2),
        "target": "5x over a multi-core pool; see ROADMAP on the 1-CPU gap",
        "speedup": round(speedup, 2),
    }
    record_perf(
        "fleet",
        record,
        f"Fleet executor — {len(configs)}-point single-shape sweep grid, "
        "batched tensor run vs process pool",
    )

    floor_message = f"fleet ran the grid at {speedup:.2f}x the pool (floor {SPEEDUP_FLOOR:.2f}x)"
    assert speedup >= SPEEDUP_FLOOR, floor_message
