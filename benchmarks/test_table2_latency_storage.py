"""Table 2: ORAM latency and on-chip storage of the evaluated configurations.

Paper result (CPU cycles, assuming the CPU clock is 4x DDR3):

    config     return data   finish access   stash    position map
    baseORAM   4868          6280            77 KB    25 KB
    DZ3Pb32    1892          3132            47 KB    37 KB
    DZ4Pb32    2084          3512            47 KB    37 KB

Absolute cycle counts depend on the DRAM model; the reproduction checks the
relative shape: the optimised configurations are roughly 2x faster to
return data than baseORAM, finish-access exceeds return-data, DZ4 is a bit
slower than DZ3, and the on-chip storage magnitudes match.
"""

from conftest import emit, scaled

from repro.analysis.report import format_table
from repro.analysis.spec_eval import table2_rows


def _run_experiment():
    return table2_rows(channels=4, num_accesses=scaled(12, minimum=4), seed=0)


def test_table2_latency_and_storage(benchmark):
    rows = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    by_name = {row.name: row for row in rows}

    emit(
        "Table 2 — ORAM latency (CPU cycles) and on-chip storage",
        format_table(
            ["config", "#ORAMs", "return data", "finish access", "stash (KB)", "pos map (KB)"],
            [
                [
                    row.name,
                    row.num_orams,
                    f"{row.return_data_cycles:.0f}",
                    f"{row.finish_access_cycles:.0f}",
                    f"{row.stash_kilobytes:.0f}",
                    f"{row.position_map_kilobytes:.0f}",
                ]
                for row in rows
            ],
        ),
    )

    base = by_name["baseORAM"]
    dz3 = by_name["DZ3Pb32"]
    dz4 = by_name["DZ4Pb32"]

    # Latency shape (paper: 4868/6280 vs 1892/3132 vs 2084/3512).
    assert dz3.return_data_cycles < 0.75 * base.return_data_cycles
    assert dz3.finish_access_cycles < 0.75 * base.finish_access_cycles
    assert dz3.return_data_cycles < dz4.return_data_cycles < base.return_data_cycles
    for row in rows:
        assert row.finish_access_cycles > row.return_data_cycles
    # Absolute magnitudes are in the paper's range (thousands of CPU cycles).
    assert 1000 < dz3.finish_access_cycles < 6000
    assert 3000 < base.finish_access_cycles < 12000
    # Storage shape (paper: 77/25 KB vs 47/37 KB).
    assert 60 < base.stash_kilobytes < 95
    assert 35 < dz3.stash_kilobytes < 60
    assert dz3.position_map_kilobytes < 200
    assert dz4.stash_kilobytes == dz3.stash_kilobytes
