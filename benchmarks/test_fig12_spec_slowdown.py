"""Figure 12: SPEC-like benchmark slowdown over an insecure DRAM processor.

Paper result (SPEC06-int subset): the baseline ORAM configuration costs
around an order of magnitude on memory-bound benchmarks (the worst bars are
14.5x / 13.1x / 10.2x); DZ3Pb32 reduces average execution time by 43.9%
relative to baseORAM; adding static super blocks of size two on top of
DZ4Pb32 gives the best average result, 52.4% better than baseORAM and a
further ~6% better than plain DZ3Pb32, with the gains concentrated in
benchmarks with spatial locality (and small losses on some others).

The reproduction replays synthetic SPEC-like traces (see
``repro.workloads.spec_like``) and checks the ordering of configurations
and the improvement band, not absolute slowdowns.
"""

import statistics

from conftest import emit, scaled

from repro.analysis.report import format_table
from repro.analysis.spec_eval import figure12_slowdowns

BENCHMARKS = ["mcf", "libquantum", "bzip2", "omnetpp", "astar", "gcc", "sjeng", "hmmer"]
CONFIG_NAMES = ["baseORAM", "DZ3Pb32", "DZ3Pb32+SB", "DZ4Pb32+SB"]


def _run_experiment():
    return figure12_slowdowns(
        BENCHMARKS,
        num_memory_ops=scaled(9000, minimum=2000),
        functional_scale=1.0 / 2048,
        seed=13,
    )


def test_figure12_spec_slowdown(benchmark):
    results = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)

    rows = []
    for name in BENCHMARKS:
        rows.append([name] + [f"{results[name][config]:.2f}" for config in CONFIG_NAMES])
    averages = {
        config: statistics.mean(results[name][config] for name in BENCHMARKS)
        for config in CONFIG_NAMES
    }
    rows.append(["average"] + [f"{averages[config]:.2f}" for config in CONFIG_NAMES])
    emit(
        "Figure 12 — slowdown over the insecure DRAM baseline",
        format_table(["benchmark"] + CONFIG_NAMES, rows),
    )

    # Every ORAM configuration is slower than the insecure baseline.
    for name in BENCHMARKS:
        for config in CONFIG_NAMES:
            assert results[name][config] > 1.0

    # baseORAM costs roughly an order of magnitude on the memory-bound
    # benchmarks (mcf / libquantum / omnetpp) and much less on the
    # compute-bound ones (hmmer).
    assert results["mcf"]["baseORAM"] > 8.0
    assert results["hmmer"]["baseORAM"] < results["mcf"]["baseORAM"] / 2

    # DZ3Pb32 improves substantially on the baseline (paper: 43.9% average).
    improvement_dz3 = 1 - averages["DZ3Pb32"] / averages["baseORAM"]
    assert 0.25 < improvement_dz3 < 0.60

    # The best super-block configuration improves on the baseline by at
    # least as much (paper: 52.4%) and is competitive with plain DZ3Pb32.
    best_sb = min(averages["DZ3Pb32+SB"], averages["DZ4Pb32+SB"])
    improvement_sb = 1 - best_sb / averages["baseORAM"]
    assert improvement_sb >= improvement_dz3 - 0.05
    assert improvement_sb > 0.30

    # Super blocks help most where there is spatial locality (libquantum,
    # bzip2), as the paper observes.
    assert results["libquantum"]["DZ3Pb32+SB"] < results["libquantum"]["DZ3Pb32"]
    assert results["bzip2"]["DZ3Pb32+SB"] < results["bzip2"]["DZ3Pb32"]
