"""Column-native engine and chain-coalescing throughput benchmarks.

Two paired-window benchmarks for the ``numpy-flat`` execution layer:

* ``numpy_flat`` — the column-native ``access_many`` loop
  (:mod:`repro.core.numpy_engine`) on a 2^16-block flat ORAM against the
  seed reference replay, plus the same trace through the stack's
  pre-engine generic loop (the path ``numpy-flat`` took before the column
  engine existed) so the record shows what the engine buys the column
  stack itself.
* ``chain_coalescing`` — a SPEC-like ``libquantum`` trace (the paper's
  memory-bound streaming benchmark) replayed through a recursive
  hierarchy on the adaptive ``numpy-flat`` stack (column-native data
  ORAM, list-backed position maps) with position-map path-op coalescing
  enabled, against the seed chain replay consuming the same stream.  The
  record carries the measured coalesced-ops rate: sequential SPEC streams
  resolve through the same position-map blocks for long runs, so most
  position-map path operations collapse into the op that read the block.

Both sections land in ``BENCH_engine.json`` through the shared
paired-window harness and are gated by committed floors in
``benchmarks/perf_floors.json``.  The whole module skips cleanly when
NumPy is not installed (the ``tests-no-numpy`` CI job).
"""

import random

import pytest

np = pytest.importorskip("numpy")

from conftest import (  # noqa: E402
    measure_window_many,
    paired_throughput,
    perf_floor,
    record_perf,
    scaled,
)
from seed_reference import (  # noqa: E402
    SeedBackgroundEviction,
    SeedReferenceHierarchicalORAM,
    SeedReferenceORAM,
)

from repro.backends import OramSpec, build_oram  # noqa: E402
from repro.core.config import HierarchyConfig, ORAMConfig  # noqa: E402
from repro.core.tree import PlainTreeStorage  # noqa: E402
from repro.workloads.spec_like import benchmark_trace  # noqa: E402

#: The flat column-engine benchmark runs one notch above the list-engine
#: benchmark's 2^15 config: longer paths amortise NumPy's per-call
#: overhead, which is the regime the column stack exists for.
FLAT_WORKING_SET = 1 << 16
Z = 4

#: Recursive config for the coalescing replay: a 2^16-block data ORAM
#: (column-native) under 16-byte position-map blocks (4 labels each).
HIER_WORKING_SET = 1 << 16

#: Interleaved measurement windows per engine (the heavier prefills keep
#: this below the list-engine benchmarks' five).
WINDOWS = 3

SPEEDUP_FLOOR = perf_floor("numpy_flat")
COALESCING_FLOOR = perf_floor("chain_coalescing")


def test_numpy_flat_column_engine_vs_seed(benchmark):
    config = ORAMConfig(
        working_set_blocks=FLAT_WORKING_SET, z=Z, block_bytes=128, stash_capacity=200
    )
    measured = scaled(8000, minimum=1500)

    def _run():
        engine = build_oram(
            OramSpec(protocol="flat", storage="numpy-flat"), config, seed=7
        )
        assert engine._column_engine is not None  # noqa: SLF001
        engine.access_many(range(1, FLAT_WORKING_SET + 1))
        seed = SeedReferenceORAM(
            config,
            storage=PlainTreeStorage(config),
            eviction_policy=SeedBackgroundEviction(),
            rng=random.Random(7),
        )
        for address in range(1, FLAT_WORKING_SET + 1):
            seed.access(address)
        pair = paired_throughput(
            engine, seed, WINDOWS, measured, FLAT_WORKING_SET, trace_seed=11
        )
        assert engine.total_blocks_stored() == seed.total_blocks_stored()

        # The stack's own before/after: the same workload through the
        # pre-engine generic loop (what numpy-flat ran before this PR).
        generic = build_oram(
            OramSpec(protocol="flat", storage="numpy-flat"), config, seed=7
        )
        generic._column_engine = None  # noqa: SLF001 - benchmark-only knob
        generic.access_many(range(1, FLAT_WORKING_SET + 1))
        generic_rate = measure_window_many(
            generic, random.Random(13), max(1500, measured // 4), FLAT_WORKING_SET
        )
        return pair, generic_rate, engine.storage.column_nbytes()

    (engine_rate, seed_rate), generic_rate, nbytes = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    speedup = engine_rate / seed_rate

    record = {
        "config": f"Z={Z}, working_set={FLAT_WORKING_SET} blocks, 50% utilization",
        "baseline": "seed_reference replay (same calibration as the flat section)",
        "engine_path": "column-native access_many (numpy-flat stack)",
        "accesses_per_window": measured,
        "window_pairs": WINDOWS,
        "engine_accesses_per_sec": round(engine_rate, 1),
        "seed_reference_accesses_per_sec": round(seed_rate, 1),
        "generic_numpy_accesses_per_sec": round(generic_rate, 1),
        "column_engine_vs_generic": round(engine_rate / generic_rate, 2),
        "column_metadata_bytes": nbytes,
        "speedup": round(speedup, 2),
    }
    record_perf(
        "numpy_flat",
        record,
        "Column-native engine — numpy-flat access_many vs. seed reference "
        f"(Z={Z}, 2^16-block working set)",
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"column engine only {speedup:.2f}x over seed reference"
    )
    assert engine_rate > generic_rate, (
        "column-native loop must beat the stack's pre-engine generic path"
    )


def _spec_hierarchy() -> HierarchyConfig:
    data = ORAMConfig(
        working_set_blocks=HIER_WORKING_SET, z=4, block_bytes=128, stash_capacity=200
    )
    return HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=16,
        position_map_z=3,
        onchip_position_map_limit_bytes=512,
        name="numpy-coalescing",
    )


def _spec_window(oram, rng, measured: int, working_set: int) -> float:
    """One libquantum replay window through ``access_many``.

    The window's trace seed comes from the harness RNG, so the engine and
    seed sides (lock-stepped RNGs) replay identical streams.
    """
    import gc
    import time

    warmup = max(1, measured // 20)
    trace = benchmark_trace("libquantum", warmup + measured, seed=rng.getrandbits(32))
    addresses = [(record.address // 128) % working_set + 1 for record in trace]
    oram.access_many(addresses[:warmup])
    gc.collect()
    start = time.perf_counter()
    oram.access_many(addresses[warmup:])
    return measured / (time.perf_counter() - start)


def _spec_window_loop(oram, rng, measured: int, working_set: int) -> float:
    """The seed side of :func:`_spec_window` (per-access replay)."""
    import gc
    import time

    warmup = max(1, measured // 20)
    trace = benchmark_trace("libquantum", warmup + measured, seed=rng.getrandbits(32))
    addresses = [(record.address // 128) % working_set + 1 for record in trace]
    for address in addresses[:warmup]:
        oram.access(address)
    gc.collect()
    start = time.perf_counter()
    for address in addresses[warmup:]:
        oram.access(address)
    return measured / (time.perf_counter() - start)


def test_chain_coalescing_spec_replay_vs_seed(benchmark):
    hierarchy = _spec_hierarchy()
    measured = scaled(4000, minimum=800)

    def _run():
        spec = OramSpec(
            protocol="hierarchical",
            storage="numpy-flat",
            coalesce_position_ops=True,
            columnar_min_slots=1 << 16,
        )
        engine = build_oram(spec, hierarchy, seed=7)
        # Adaptive stack: the big data ORAM is column-native, the small
        # position-map ORAMs stay on the list engine.
        assert type(engine.data_oram.storage).__name__ == "NumpyFlatTreeStorage"
        engine.access_many(range(1, HIER_WORKING_SET + 1))
        seed = SeedReferenceHierarchicalORAM(hierarchy, rng=random.Random(7))
        for address in range(1, HIER_WORKING_SET + 1):
            seed.access(address)
        before_coalesced = sum(o.stats.coalesced_ops for o in engine.orams)
        before_real = engine.stats.real_accesses
        pair = paired_throughput(
            engine,
            seed,
            WINDOWS,
            measured,
            HIER_WORKING_SET,
            trace_seed=11,
            engine_window=_spec_window,
            reference_window=_spec_window_loop,
        )
        coalesced = sum(o.stats.coalesced_ops for o in engine.orams) - before_coalesced
        accesses = engine.stats.real_accesses - before_real
        engine_stored = sum(
            oram.stash_occupancy + oram.storage.occupancy() for oram in engine.orams
        )
        assert engine_stored == seed.total_blocks_stored()
        return pair, coalesced / accesses, hierarchy.num_orams

    (engine_rate, seed_rate), coalesced_per_access, num_orams = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    speedup = engine_rate / seed_rate

    record = {
        "config": (
            f"{num_orams}-level recursive hierarchy, data working_set="
            f"{HIER_WORKING_SET} blocks (column-native), 16B position-map "
            "blocks on the list engine"
        ),
        "baseline": "seed chain replay consuming the same libquantum stream",
        "engine_path": (
            "access_many fused chain with position-map path-op coalescing "
            "(coalesce_position_ops=True)"
        ),
        "workload": "spec-like libquantum (sequential streaming)",
        "accesses_per_window": measured,
        "window_pairs": WINDOWS,
        "engine_accesses_per_sec": round(engine_rate, 1),
        "seed_reference_accesses_per_sec": round(seed_rate, 1),
        "position_map_ops_coalesced_per_access": round(coalesced_per_access, 2),
        "position_map_ops_per_access_uncoalesced": num_orams - 1,
        "speedup": round(speedup, 2),
    }
    record_perf(
        "chain_coalescing",
        record,
        "Chain coalescing — recursive SPEC replay on the adaptive "
        "numpy-flat stack vs. seed chain",
    )

    assert speedup >= COALESCING_FLOOR, (
        f"coalescing chain only {speedup:.2f}x over seed chain replay"
    )
    assert coalesced_per_access > 0, "the replay must actually coalesce"
