"""Figure 10: hierarchical ORAM overhead breakdown per position-map block size.

Paper result (8 GB hierarchical ORAMs, 4 GB working set, final position map
< 200 KB): small position-map blocks shrink the position-map ORAMs'
contribution; 12-byte blocks minimise the theoretical overhead, followed by
32-byte blocks (16/32 bytes pad to the same 128-byte bucket); the DZ3Pb32
configuration cuts overhead by ~42% relative to baseORAM (DZ4Pb32 by ~35%).
"""

from conftest import emit, scaled

from repro.analysis.hierarchy import figure10_rows
from repro.analysis.report import format_table


def _run_experiment():
    # The breakdown is analytic at the paper's full scale; the dummy-access
    # factor is measured on a scaled-down functional hierarchy.
    analytic = figure10_rows(scale=1.0, measure_dummies=False)
    measured = figure10_rows(
        scale=1.0 / 4096, measure_dummies=True,
        num_accesses=scaled(400, minimum=100), seed=2,
    )
    return analytic, measured


def test_figure10_hierarchical_overhead_breakdown(benchmark):
    analytic, measured = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    by_name = {row.name: row for row in analytic}
    dummy_factor = {row.name: row.dummy_factor for row in measured}

    rows = []
    for row in analytic:
        rows.append([
            row.name,
            row.num_orams,
            f"{row.per_oram_overhead[0]:.0f}",
            f"{sum(row.per_oram_overhead[1:]):.0f}",
            f"{row.total_overhead:.0f}",
            f"{dummy_factor.get(row.name, 1.0):.2f}",
        ])
    emit(
        "Figure 10 — hierarchical ORAM access-overhead breakdown "
        "(paper-scale geometry; dummy factor from scaled functional run)",
        format_table(
            ["config", "#ORAMs", "data ORAM", "pmap ORAMs", "total", "dummy factor"], rows
        ),
    )

    base = by_name["baseORAM"].total_overhead
    dz3pb32 = by_name["DZ3Pb32"].total_overhead
    dz4pb32 = by_name["DZ4Pb32"].total_overhead

    # Headline claim: ~41.8% / ~35.0% reduction vs. the baseline (allow a
    # generous band since bucket padding differs slightly from the paper).
    assert 0.30 < 1 - dz3pb32 / base < 0.55
    assert 0.22 < 1 - dz4pb32 / base < 0.50
    # Small position-map blocks beat 128-byte ones; 12-byte blocks have the
    # lowest theoretical overhead, with 32-byte next (16/32 pad identically).
    assert by_name["DZ3Pb12"].total_overhead < by_name["DZ3Pb128"].total_overhead
    assert by_name["DZ3Pb12"].total_overhead <= by_name["DZ3Pb32"].total_overhead
    assert by_name["DZ3Pb16"].total_overhead >= by_name["DZ3Pb32"].total_overhead - 1e-6
    # Deeper hierarchies for smaller position-map blocks.
    assert by_name["DZ3Pb12"].num_orams >= by_name["DZ3Pb32"].num_orams
    # Every configuration's data ORAM dominates its own breakdown.
    for row in analytic:
        assert row.per_oram_overhead[0] >= max(row.per_oram_overhead[1:], default=0.0)
