"""Hierarchy throughput benchmark: recursive trace loop vs. the seed chain.

Measures accesses/sec of the hierarchical engine consuming whole workload
windows through ``HierarchicalPathORAM.access_many`` — the fused chain loop
over the fully-inlined classified path ops — against a faithful replay of
the pre-refactor hierarchical hot path (:mod:`seed_reference`): the generic
``access_path`` with a freshly allocated ``mutate`` closure per level,
uncached tree-depth recomputation at every ``num_leaves`` read (the PR-3
recalibration), and seed-style Path ORAMs underneath.

The configuration is a 3-level recursive hierarchy (data ORAM plus two
position-map ORAMs), the construction the paper's headline figures run on.
Rates land in the ``"hierarchical"`` section of ``BENCH_engine.json``
through the shared paired-window harness in :mod:`conftest`: windows
interleave engine and seed over the same workload stream and the recorded
speedup is the median paired-window ratio.
"""

import random

from conftest import paired_throughput, perf_floor, prefill, record_perf, scaled
from seed_reference import SeedReferenceHierarchicalORAM

from repro.backends import OramSpec, build_oram
from repro.core.config import HierarchyConfig, ORAMConfig

WORKING_SET_BLOCKS = 1 << 13

#: Interleaved measurement windows per engine; the speedup is the median
#: engine/seed ratio among time-adjacent window pairs.
WINDOWS = 5

#: Hard CI floor for the recorded speedup, read from the committed
#: benchmarks/perf_floors.json (the same floor the CI gate enforces).  The
#: PR-3 fused chain loop records ~4.5x on a quiet machine; the floor
#: leaves room for machine noise while still catching real regressions
#: (PR-2 recorded 3.1x).
SPEEDUP_FLOOR = perf_floor("hierarchical")


def _hierarchy() -> HierarchyConfig:
    data = ORAMConfig(
        working_set_blocks=WORKING_SET_BLOCKS, z=4, block_bytes=128, stash_capacity=200
    )
    return HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=8,
        position_map_z=3,
        onchip_position_map_limit_bytes=512,
        name="perf-hierarchy",
    )


def test_hierarchy_throughput_vs_seed_reference(benchmark):
    hierarchy = _hierarchy()
    assert hierarchy.num_orams == 3, hierarchy.describe()
    measured = scaled(4000, minimum=800)

    def _run():
        engine = prefill(
            build_oram(OramSpec(protocol="hierarchical", storage="flat"), hierarchy, seed=7),
            WORKING_SET_BLOCKS,
        )
        seed = prefill(
            SeedReferenceHierarchicalORAM(hierarchy, rng=random.Random(7)),
            WORKING_SET_BLOCKS,
        )
        pair = paired_throughput(
            engine, seed, WINDOWS, measured, WORKING_SET_BLOCKS, trace_seed=11
        )
        # Both constructions must agree on the functional outcome.
        engine_stored = sum(
            oram.stash_occupancy + oram.storage.occupancy() for oram in engine.orams
        )
        assert engine_stored == seed.total_blocks_stored()
        return pair

    engine_rate, seed_rate = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = engine_rate / seed_rate

    record = {
        "config": (
            f"3-level recursive hierarchy, data working_set={WORKING_SET_BLOCKS} "
            "blocks, Z=4/128B data, Z=3/8B position maps"
        ),
        "baseline": (
            "seed chain replay recalibrated against the v0 seed commit in PR 3 "
            "(uncached num_leaves reads, per-access stash-bound sweep)"
        ),
        "engine_path": "access_many (fused chain loop)",
        "accesses_per_window": measured,
        "window_pairs": WINDOWS,
        "engine_accesses_per_sec": round(engine_rate, 1),
        "seed_reference_accesses_per_sec": round(seed_rate, 1),
        "speedup": round(speedup, 2),
    }
    record_perf(
        "hierarchical",
        record,
        "Hierarchy throughput — access_many chain loop vs. seed chain replay "
        "(3-level config)",
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"hierarchy only {speedup:.2f}x over seed reference"
    )
