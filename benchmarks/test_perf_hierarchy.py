"""Hierarchy throughput benchmark: recursive fast path vs. the seed chain.

Measures accesses/sec of the hierarchical engine — the memoised chain walk,
single-draw leaf buffer and closure-free ``access_position_block`` over the
fused flat-storage Path ORAMs — against a faithful replay of the
pre-refactor hierarchical hot path (:mod:`seed_reference`): the generic
``access_path`` with a freshly allocated ``mutate`` closure per level,
``randrange`` draws, and seed-style Path ORAMs underneath.

The configuration is a 3-level recursive hierarchy (data ORAM plus two
position-map ORAMs), the construction the paper's headline figures run on.
Rates land in the ``"hierarchical"`` section of ``BENCH_engine.json``; the
windows interleave engine and seed and the recorded speedup is the median
paired-window ratio, so machine-load drift cannot skew the ratio and lucky
windows cannot inflate it.
"""

import json
import random

from conftest import emit, measure_window, median_pair, prefill, record_bench, scaled
from seed_reference import SeedReferenceHierarchicalORAM

from repro.backends import OramSpec, build_oram
from repro.core.config import HierarchyConfig, ORAMConfig

WORKING_SET_BLOCKS = 1 << 13

#: Interleaved measurement windows per engine; the speedup is the median
#: engine/seed ratio among time-adjacent window pairs.
WINDOWS = 3


def _hierarchy() -> HierarchyConfig:
    data = ORAMConfig(
        working_set_blocks=WORKING_SET_BLOCKS, z=4, block_bytes=128, stash_capacity=200
    )
    return HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=8,
        position_map_z=3,
        onchip_position_map_limit_bytes=512,
        name="perf-hierarchy",
    )


def test_hierarchy_throughput_vs_seed_reference(benchmark):
    hierarchy = _hierarchy()
    assert hierarchy.num_orams == 3, hierarchy.describe()
    measured = scaled(4000, minimum=800)

    def _run():
        engine = prefill(
            build_oram(OramSpec(protocol="hierarchical", storage="flat"), hierarchy, seed=7),
            WORKING_SET_BLOCKS,
        )
        seed = prefill(
            SeedReferenceHierarchicalORAM(hierarchy, rng=random.Random(7)),
            WORKING_SET_BLOCKS,
        )
        engine_rng, seed_rng = random.Random(11), random.Random(11)
        pairs = []
        for _ in range(WINDOWS):
            engine_window = measure_window(engine, engine_rng, measured, WORKING_SET_BLOCKS)
            seed_window = measure_window(seed, seed_rng, measured, WORKING_SET_BLOCKS)
            pairs.append((engine_window, seed_window))
        # Both constructions must agree on the functional outcome.
        engine_stored = sum(
            oram.stash_occupancy + oram.storage.occupancy() for oram in engine.orams
        )
        assert engine_stored == seed.total_blocks_stored()
        return median_pair(pairs)

    engine_rate, seed_rate = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = engine_rate / seed_rate

    record = {
        "config": (
            f"3-level recursive hierarchy, data working_set={WORKING_SET_BLOCKS} "
            "blocks, Z=4/128B data, Z=3/8B position maps"
        ),
        "accesses_per_window": measured,
        "window_pairs": WINDOWS,
        "engine_accesses_per_sec": round(engine_rate, 1),
        "seed_reference_accesses_per_sec": round(seed_rate, 1),
        "speedup": round(speedup, 2),
    }
    record_bench("hierarchical", record)
    emit(
        "Hierarchy throughput — recursive fast path vs. seed chain replay "
        "(3-level config)",
        json.dumps(record, indent=2),
    )

    # The issue targets 2x on the recursive path; the hard floor leaves
    # margin for machine noise while catching real regressions.
    assert speedup >= 1.5, f"hierarchy only {speedup:.2f}x over seed reference"
