"""Figure 8: access overhead versus ORAM utilization for Z in {1,2,3,4,8}.

Paper result (2 GB working set): the best point is Z = 3 at 50% utilization;
overhead rises slightly at very low utilization (longer paths) and sharply
at high utilization (dummy accesses); small-Z configurations blow up first —
the paper could not even finish Z = 1 at >= 67% or Z = 2 at >= 75%
utilization.  Z = 3 at 67% and Z = 4 at 75% remain reasonable, showing the
1/Z utilization suggested by prior work was pessimistic.
"""

import math

from conftest import bench_executor, emit, scaled

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_utilization

CAPACITY_BLOCKS = 2048
Z_VALUES = [1, 2, 3, 4, 8]
UTILIZATIONS = [0.02, 0.05, 0.125, 0.25, 0.5, 0.67, 0.75, 0.8]


def _run_experiment():
    # The stash is scaled with the (much shallower) tree so eviction
    # pressure shows up within a short run; see EXPERIMENTS.md.
    results = sweep_utilization(
        Z_VALUES,
        UTILIZATIONS,
        capacity_blocks=CAPACITY_BLOCKS,
        num_accesses=scaled(700, minimum=200),
        seed=5,
        stash_slack=25,
        abort_dummy_factor=15.0,
        executor=bench_executor(),
    )
    grid = [(z, utilization) for z in Z_VALUES for utilization in UTILIZATIONS]
    return dict(zip(grid, results))


def test_figure8_overhead_vs_utilization(benchmark):
    points = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)

    rows = []
    for utilization in UTILIZATIONS:
        row = [f"{utilization:.0%}"]
        for z in Z_VALUES:
            point = points[(z, utilization)]
            overhead = point.access_overhead
            row.append("n/a" if math.isinf(overhead) else f"{overhead:.0f}")
        rows.append(row)
    emit(
        "Figure 8 — access overhead vs. utilization "
        f"(tree capacity ~{CAPACITY_BLOCKS} blocks; 'n/a' = too many dummies to finish)",
        format_table(["utilization"] + [f"Z={z}" for z in Z_VALUES], rows),
    )

    def overhead(z, utilization):
        return points[(z, utilization)].access_overhead

    # Small Z degrades first as utilization grows: by 75-80% utilization,
    # Z=1 and Z=2 are far worse than Z=3/Z=4 (or failed to finish at all).
    assert overhead(1, 0.8) > 2 * overhead(3, 0.8)
    assert overhead(2, 0.8) > overhead(4, 0.8)
    assert overhead(1, 0.8) > overhead(1, 0.25) or math.isinf(overhead(1, 0.8))
    # Z=3 around 50-67% utilization beats the very large Z=8 everywhere.
    assert overhead(3, 0.5) < overhead(8, 0.5)
    assert overhead(3, 0.67) < overhead(8, 0.67)
    # Z=3 at 67% and Z=4 at 75% remain finite and reasonable.
    assert math.isfinite(overhead(3, 0.67))
    assert math.isfinite(overhead(4, 0.75))
    # At moderate-to-high utilization (the regime the paper recommends) the
    # best bucket size is a moderate Z, never Z=1 and never Z=8.  (The paper
    # finds Z=3 at 50% for a 4 GB ORAM; smaller ORAMs shift the optimum
    # towards smaller Z, per Figure 9, which is why Z=2 can win here.)
    for utilization in (0.5, 0.67, 0.75):
        best_z = min(Z_VALUES, key=lambda z: points[(z, utilization)].access_overhead)
        assert best_z in (2, 3, 4)
    # Z=8 is never the best choice at any utilization (its buckets are too big).
    for utilization in UTILIZATIONS:
        assert min(Z_VALUES, key=lambda z: points[(z, utilization)].access_overhead) != 8
