"""Checkpointing overhead benchmark: fault tolerance must stay near-free.

Two costs are measured and recorded to ``BENCH_engine.json``:

* the point cost of one :meth:`~repro.core.path_oram.PathORAM.snapshot` /
  ``restore`` round-trip (the window-granularity save a long run pays), and
* the end-to-end overhead of running a windowed experiment with a
  per-window :class:`~repro.runner.checkpoint.CheckpointManager` versus the
  same plan uncheckpointed, in alternating paired windows.

The recorded ``speedup`` is ``checkpointed_rate / uncheckpointed_rate``;
the committed floor of 0.9 in ``benchmarks/perf_floors.json`` is the
"<10% overhead" acceptance target — checkpointing every completed window
must never cost more than a tenth of the run it protects.  Both runs must
produce identical per-window values (the checkpoint tests pin resume
bit-exactness; this benchmark additionally asserts a resumed, fully
cached replay returns the same values).
"""

import os
import random
import time

from conftest import median_pair, perf_floor, record_perf, scaled  # noqa: E402

from repro.backends import OramSpec, build_oram
from repro.core.config import ORAMConfig
from repro.core.path_oram import PathORAM
from repro.core.types import Operation
from repro.runner import CheckpointManager, WindowPlan, run_windows

#: Interleaved checkpointed/plain windows over the same plan.
WINDOWS = 3
WORKING_SET = 512

SPEEDUP_FLOOR = perf_floor("checkpoint")


def _sim_window(num_accesses, seed, working_set):
    """One self-seeded simulation window (module-level: pool-picklable)."""
    oram = build_oram(
        OramSpec(protocol="flat", storage="flat"),
        ORAMConfig(working_set_blocks=working_set),
        seed=seed,
    )
    rng = random.Random(seed ^ 0x5BD1E995)
    for index in range(num_accesses):
        oram.access(1 + rng.randrange(working_set), Operation.WRITE, data=index)
    stats = oram.stats
    return (stats.real_accesses, stats.dummy_accesses, stats.path_reads)


def _snapshot_roundtrip_cost():
    """Milliseconds for one snapshot and one restore of a warm ORAM."""
    oram = build_oram(
        OramSpec(protocol="flat", storage="flat"),
        ORAMConfig(working_set_blocks=WORKING_SET),
        seed=5,
    )
    rng = random.Random(17)
    for index in range(scaled(2000, minimum=200)):
        oram.access(1 + rng.randrange(WORKING_SET), Operation.WRITE, data=index)
    reps = 5
    start = time.perf_counter()
    for _ in range(reps):
        snapshot = oram.snapshot()
    snapshot_ms = (time.perf_counter() - start) / reps * 1e3
    start = time.perf_counter()
    for _ in range(reps):
        restored = PathORAM.restore(snapshot)
    restore_ms = (time.perf_counter() - start) / reps * 1e3
    assert restored.stats.fingerprint() == oram.stats.fingerprint()
    return snapshot_ms, restore_ms, len(snapshot["state"])


def test_checkpointed_run_overhead(benchmark, tmp_path):
    plan = WindowPlan.split(
        key="ckpt-bench",
        base_seed=21,
        total_accesses=scaled(48_000, minimum=2400),
        windows=6,
    )
    kwargs = {"working_set": WORKING_SET}

    def _plain():
        start = time.perf_counter()
        values = run_windows(_sim_window, plan, kwargs=kwargs)
        return values, time.perf_counter() - start

    def _checkpointed(index):
        manager = CheckpointManager(tmp_path / f"bench-{index}.ckpt", every=1)
        start = time.perf_counter()
        values = run_windows(_sim_window, plan, kwargs=kwargs, checkpoint=manager)
        return values, time.perf_counter() - start, manager

    def _run():
        pairs = []
        reference = None
        manager = None
        for index in range(WINDOWS):
            ck_values, ck_seconds, manager = _checkpointed(index)
            plain_values, plain_seconds = _plain()
            assert ck_values == plain_values
            if reference is None:
                reference = plain_values
            else:
                assert plain_values == reference
            pairs.append(
                (
                    plan.total_accesses / ck_seconds,
                    plan.total_accesses / plain_seconds,
                )
            )
        # A fully cached resume replays the recorded values bit-identically.
        resumed = run_windows(
            _sim_window,
            plan,
            kwargs=kwargs,
            checkpoint=CheckpointManager(manager.path),
        )
        assert resumed == reference
        return median_pair(pairs)

    ck_rate, plain_rate = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = ck_rate / plain_rate
    snapshot_ms, restore_ms, snapshot_bytes = _snapshot_roundtrip_cost()

    record = {
        "config": (
            f"flat Path ORAM, working set {WORKING_SET} blocks, "
            f"{plan.num_windows}-window plan, checkpoint saved every window"
        ),
        "workload": (
            f"{plan.total_accesses} uniform random writes per run, "
            f"{WINDOWS} paired checkpointed/plain windows"
        ),
        "metric": "accesses per second, checkpointed vs uncheckpointed",
        "cpus": os.cpu_count(),
        "checkpointed_accesses_per_s": round(ck_rate, 1),
        "plain_accesses_per_s": round(plain_rate, 1),
        "overhead_percent": round((1 - speedup) * 100, 2),
        "snapshot_ms": round(snapshot_ms, 2),
        "restore_ms": round(restore_ms, 2),
        "snapshot_bytes": snapshot_bytes,
        "target": "<10% end-to-end overhead (floor 0.9x)",
        "speedup": round(speedup, 3),
    }
    record_perf(
        "checkpoint",
        record,
        f"Checkpoint/resume — {plan.num_windows}-window plan with per-window "
        "saves vs the same plan uncheckpointed",
    )

    floor_message = (
        f"checkpointed run at {speedup:.3f}x the plain run (floor {SPEEDUP_FLOOR:.2f}x)"
    )
    assert speedup >= SPEEDUP_FLOOR, floor_message
