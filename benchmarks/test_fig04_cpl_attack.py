"""Figure 4: the common-path-length attack on eviction schemes.

Paper result (L=5, Z=1, threshold 2, 100 experiments): the proposed
background eviction averages CPL 1.979 (expectation 1.969), while the
insecure block-remapping eviction averages 1.79 — clearly detectable.

The reproduction reports, per scheme, the average CPL between a real access
and the eviction access it triggers (see ``repro.attacks.cpl`` for why the
trigger-pair statistic is used at scaled-down sizes) plus the overall
consecutive-pair average the paper plots.
"""

import statistics

from conftest import emit, scaled

from repro.analysis.report import format_table
from repro.attacks.cpl import expected_common_path_length, run_cpl_attack_series

NUM_EXPERIMENTS = 10
ACCESSES_PER_EXPERIMENT = 1500


def _run_experiment():
    return {
        scheme: run_cpl_attack_series(
            scheme,
            num_experiments=scaled(NUM_EXPERIMENTS, minimum=3),
            num_accesses=scaled(ACCESSES_PER_EXPERIMENT, minimum=300),
            seed=7,
        )
        for scheme in ("background", "insecure")
    }


def test_figure4_cpl_attack(benchmark):
    results = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    expected = expected_common_path_length(5)

    rows = []
    for scheme, series in results.items():
        rows.append([
            scheme,
            f"{statistics.mean(r.trigger_pair_cpl for r in series):.3f}",
            f"{statistics.mean(r.average_cpl for r in series):.3f}",
            f"{expected:.3f}",
        ])
    emit(
        "Figure 4 — average common path length (L=5, Z=1, threshold 2)",
        format_table(["scheme", "trigger-pair CPL", "overall CPL", "expected"], rows),
    )

    background = statistics.mean(r.trigger_pair_cpl for r in results["background"])
    insecure = statistics.mean(r.trigger_pair_cpl for r in results["insecure"])
    # The secure scheme is statistically indistinguishable from uniform.
    assert abs(background - expected) < 0.06
    # The insecure scheme's eviction paths are visibly correlated with the
    # preceding access (the paper sees 1.79 vs 1.969).
    assert insecure < expected - 0.08
    assert insecure < background
