"""Engine throughput benchmark: trace-at-once fast path vs. the seed.

Measures accesses/sec of the current engine consuming whole workload
windows through ``PathORAM.access_many`` (the fused trace-at-once loop over
``FlatTreeStorage``'s slot array) against a faithful in-process replay of
the seed hot path (:mod:`seed_reference`) for the Z=4, 2^15-working-set
configuration named in the engine refactor issues.

The measured rates are recorded under the ``"flat"`` key of
``BENCH_engine.json`` at the repository root so future PRs have a perf
trajectory to beat.  Compare trajectory points on the absolute
``engine_accesses_per_sec`` as well as the ratio: the PR-2 baseline was
re-calibrated against the actual seed commit, and PR 3 re-verified the
flat replay against the real ``v0`` code (interleaved runs agreed within
noise).  Engine and seed windows alternate over the same workload stream
and the speedup is the *median* paired (adjacent-in-time) window ratio, so
machine-load drift between phases cannot skew the comparison and lucky
windows cannot inflate it; the hard assertion sits well below the recorded
ratio so residual noise cannot break CI.
"""

import random

from conftest import paired_throughput, perf_floor, prefill, record_perf, scaled
from seed_reference import SeedBackgroundEviction, SeedReferenceORAM

from repro.backends import OramSpec, build_oram
from repro.core.config import ORAMConfig
from repro.core.tree import PlainTreeStorage

WORKING_SET_BLOCKS = 1 << 15
Z = 4

#: Interleaved measurement windows per engine; the speedup is the median
#: engine/seed ratio among time-adjacent window pairs.
WINDOWS = 5

#: Hard CI floor for the recorded speedup, read from the committed
#: benchmarks/perf_floors.json (the same floor the CI gate enforces).  The
#: PR-3 trace-at-once loop records ~4.5-5x on a quiet machine; the floor
#: leaves room for machine noise while still catching real regressions
#: (PR-2 recorded 3.1x).
SPEEDUP_FLOOR = perf_floor("flat")


def test_engine_throughput_vs_seed_reference(benchmark):
    # Prefill the full working set so paths actually carry blocks; measure
    # steady-state random accesses.  The window is sized so each rate
    # integrates over a few hundred milliseconds — short windows made the
    # ratio swing by +/-15% run to run.
    config = ORAMConfig(
        working_set_blocks=WORKING_SET_BLOCKS, z=Z, block_bytes=128, stash_capacity=200
    )
    measured = scaled(12000, minimum=2000)

    def _run():
        engine = prefill(
            build_oram(OramSpec(protocol="flat", storage="flat"), config, seed=7),
            WORKING_SET_BLOCKS,
        )
        seed = prefill(
            SeedReferenceORAM(
                config,
                storage=PlainTreeStorage(config),
                eviction_policy=SeedBackgroundEviction(),
                rng=random.Random(7),
            ),
            WORKING_SET_BLOCKS,
        )
        pair = paired_throughput(
            engine, seed, WINDOWS, measured, WORKING_SET_BLOCKS, trace_seed=11
        )
        # Both engines must agree on the functional outcome of the run.
        assert engine.total_blocks_stored() == seed.total_blocks_stored()
        return pair

    engine_rate, seed_rate = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = engine_rate / seed_rate

    record = {
        "config": f"Z={Z}, working_set={WORKING_SET_BLOCKS} blocks, 50% utilization",
        "baseline": (
            "seed_reference replay calibrated against the v0 seed commit "
            "(PR 2, re-verified in PR 3)"
        ),
        "engine_path": "access_many (fused trace-at-once loop)",
        "accesses_per_window": measured,
        "window_pairs": WINDOWS,
        "engine_accesses_per_sec": round(engine_rate, 1),
        "seed_reference_accesses_per_sec": round(seed_rate, 1),
        "speedup": round(speedup, 2),
    }
    record_perf(
        "flat",
        record,
        "Engine throughput — access_many trace loop vs. seed reference "
        f"(Z={Z}, 2^15-block working set)",
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"engine only {speedup:.2f}x over seed reference"
    )
