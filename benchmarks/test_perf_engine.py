"""Engine throughput benchmark: fast path vs. the seed implementation.

Measures accesses/sec of the current engine (``FlatTreeStorage`` +
path-table caching + indexed stash eviction) against a faithful in-process
replay of the seed hot path (``PlainTreeStorage`` reads with per-bucket
list copies, path recomputation with range validation on every use, and a
full-stash rescan per write-back) for the Z=4, 2^15-working-set-block
configuration named in the engine refactor issue.

The measured rates are recorded to ``BENCH_engine.json`` at the repository
root so future PRs have a perf trajectory to beat.  The hard assertion is
set below the observed ~4x so machine noise cannot break CI.
"""

import json
import math
import random
import time
from pathlib import Path

from conftest import emit, scaled

from repro.core.background_eviction import BackgroundEviction
from repro.core.config import ORAMConfig
from repro.core.path_oram import PathORAM, leaf_common_path_length
from repro.core.tree import PlainTreeStorage, path_indices
from repro.errors import StashOverflowError

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

WORKING_SET_BLOCKS = 1 << 15
Z = 4


def _seed_levels(config):
    """The seed's uncached ``ORAMConfig.levels``: recomputed on every use."""
    total = max(1, math.ceil(config.working_set_blocks / config.utilization))
    buckets_needed = math.ceil(total / config.z)
    level = 0
    while (1 << (level + 1)) - 1 < buckets_needed:
        level += 1
    return level


class _SeedStash:
    """The seed's stash: a plain address-keyed dict with no leaf index."""

    def __init__(self):
        self._blocks = {}
        self._max_occupancy = 0

    def __len__(self):
        return len(self._blocks)

    def __contains__(self, address):
        return address in self._blocks

    def __iter__(self):
        return iter(self._blocks.values())

    @property
    def occupancy(self):
        return len(self._blocks)

    @property
    def max_occupancy(self):
        return self._max_occupancy

    def add(self, block):
        if block.is_dummy():
            return
        self._blocks[block.address] = block
        if len(self._blocks) > self._max_occupancy:
            self._max_occupancy = len(self._blocks)

    def get(self, address):
        return self._blocks.get(address)

    def pop(self, address):
        return self._blocks.pop(address, None)

    def retarget(self, address, new_leaf):
        block = self._blocks.get(address)
        if block is not None:
            block.leaf = new_leaf
        return block

    def addresses(self):
        return list(self._blocks.keys())


class SeedReferenceORAM(PathORAM):
    """PathORAM with the seed repository's storage/protocol hot path.

    Kept as the regression baseline: every per-access cost the engine
    refactor removed is reproduced here — ``path_indices`` recomputed (and
    revalidated) three times per access, the tree-depth search re-run for
    every derived-property use, per-bucket list copies on reads, path
    blocks individually inserted into (and popped from) an unindexed
    stash, and the write-back rescanning that entire stash with a
    ``leaf_common_path_length`` call per block.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._stash = _SeedStash()

    def _read_path_into_stash(self, leaf):
        if self._record_path_trace:
            self._path_trace.append(leaf)
        blocks = []
        for bucket_index in path_indices(leaf, _seed_levels(self.config)):
            blocks.extend(self.storage.read_bucket(bucket_index))
        for block in blocks:
            self._stash.add(block)
        self._stats.record_path_read(len(blocks))

    def _write_back_path(self, leaf):
        levels = _seed_levels(self.config)
        z = self.config.z
        path = path_indices(leaf, _seed_levels(self.config))
        by_deepest = [[] for _ in range(levels + 1)]
        for block in self._stash:
            deepest = leaf_common_path_length(block.leaf, leaf, levels) - 1
            by_deepest[deepest].append(block)
        assignments = {}
        written = 0
        available = []
        for level in range(levels, -1, -1):
            available.extend(by_deepest[level])
            bucket = []
            while available and len(bucket) < z:
                bucket.append(available.pop())
            if bucket:
                assignments[path[level]] = bucket
                written += len(bucket)
                for block in bucket:
                    self._stash.pop(block.address)
        for bucket_index in path_indices(leaf, _seed_levels(self.config)):
            self.storage.write_bucket(bucket_index, assignments.get(bucket_index, []))
        self._stats.record_path_write(written)

    def _check_stash_bound(self):
        capacity = self.config.stash_capacity
        if capacity is not None and self._stash.occupancy > capacity:
            raise StashOverflowError("seed reference stash overflow")


def _throughput(oram_factory, prefill, measured):
    config = ORAMConfig(
        working_set_blocks=WORKING_SET_BLOCKS, z=Z, block_bytes=128, stash_capacity=200
    )
    oram = oram_factory(config)
    rng = random.Random(11)
    for address in range(1, prefill + 1):
        oram.access(address)
    start = time.perf_counter()
    for _ in range(measured):
        oram.access(rng.randrange(1, WORKING_SET_BLOCKS + 1))
    elapsed = time.perf_counter() - start
    return measured / elapsed, oram


def test_engine_throughput_vs_seed_reference(benchmark):
    # Prefill a large part of the working set so paths actually carry
    # blocks; measure steady-state random accesses.  The window is sized
    # so each rate integrates over a few hundred milliseconds — short
    # windows made the ratio swing by +/-15% run to run.
    prefill = WORKING_SET_BLOCKS
    measured = scaled(12000, minimum=2000)

    def _run():
        engine_rate, engine = _throughput(
            lambda config: PathORAM(
                config, eviction_policy=BackgroundEviction(), rng=random.Random(7)
            ),
            prefill,
            measured,
        )
        seed_rate, seed = _throughput(
            lambda config: SeedReferenceORAM(
                config,
                storage=PlainTreeStorage(config),
                eviction_policy=BackgroundEviction(),
                rng=random.Random(7),
            ),
            prefill,
            measured,
        )
        # Both engines must agree on the functional outcome of the run.
        assert engine.total_blocks_stored() == seed.total_blocks_stored()
        return engine_rate, seed_rate

    engine_rate, seed_rate = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = engine_rate / seed_rate

    record = {
        "config": f"Z={Z}, working_set={WORKING_SET_BLOCKS} blocks, 50% utilization",
        "measured_accesses": measured,
        "engine_accesses_per_sec": round(engine_rate, 1),
        "seed_reference_accesses_per_sec": round(seed_rate, 1),
        "speedup": round(speedup, 2),
    }
    BENCH_FILE.write_text(json.dumps(record, indent=2) + "\n")
    emit(
        "Engine throughput — fast path vs. seed reference "
        f"(Z={Z}, 2^15-block working set)",
        json.dumps(record, indent=2),
    )

    # The refactor targets 3x; the hard floor is set with margin so machine
    # noise cannot break CI while still catching real regressions.
    assert speedup >= 1.8, f"engine only {speedup:.2f}x over seed reference"
