"""Engine throughput benchmark: fast path vs. the seed implementation.

Measures accesses/sec of the current engine (``FlatTreeStorage`` with the
fused read/write-back slot fast path, path-table caching and indexed stash
eviction) against a faithful in-process replay of the seed hot path
(:mod:`seed_reference`) for the Z=4, 2^15-working-set-block configuration
named in the engine refactor issue.

The measured rates are recorded under the ``"flat"`` key of
``BENCH_engine.json`` at the repository root so future PRs have a perf
trajectory to beat.  Compare trajectory points on the absolute
``engine_accesses_per_sec`` as well as the ratio: the PR-2 baseline was
re-calibrated against the actual seed commit (the PR-1 replay inherited
engine-side position-map and eviction-threshold caching the seed never
had; the recalibrated replay was measured to match the real ``v0`` code's
throughput within a few percent), so ratios before and after PR 2 are not
directly comparable.  Engine and seed windows alternate and the speedup is
the *median* paired (adjacent-in-time) window ratio, so machine-load drift
between phases cannot skew the comparison and lucky windows cannot inflate
it; the hard assertion still sits well below the recorded ratio so
residual noise cannot break CI.
"""

import json
import random

from conftest import emit, measure_window, median_pair, prefill, record_bench, scaled
from seed_reference import SeedBackgroundEviction, SeedReferenceORAM

from repro.backends import OramSpec, build_oram
from repro.core.config import ORAMConfig
from repro.core.tree import PlainTreeStorage

WORKING_SET_BLOCKS = 1 << 15
Z = 4

#: Interleaved measurement windows per engine; the speedup is the median
#: engine/seed ratio among time-adjacent window pairs.
WINDOWS = 5


def test_engine_throughput_vs_seed_reference(benchmark):
    # Prefill the full working set so paths actually carry blocks; measure
    # steady-state random accesses.  The window is sized so each rate
    # integrates over a few hundred milliseconds — short windows made the
    # ratio swing by +/-15% run to run.
    config = ORAMConfig(
        working_set_blocks=WORKING_SET_BLOCKS, z=Z, block_bytes=128, stash_capacity=200
    )
    measured = scaled(12000, minimum=2000)

    def _run():
        engine = prefill(
            build_oram(OramSpec(protocol="flat", storage="flat"), config, seed=7),
            WORKING_SET_BLOCKS,
        )
        seed = prefill(
            SeedReferenceORAM(
                config,
                storage=PlainTreeStorage(config),
                eviction_policy=SeedBackgroundEviction(),
                rng=random.Random(7),
            ),
            WORKING_SET_BLOCKS,
        )
        # Same workload stream for both; each window pair runs engine then
        # seed back to back, so a machine-load swing hits both comparably
        # and the per-pair ratio stays meaningful.
        engine_rng, seed_rng = random.Random(11), random.Random(11)
        pairs = []
        for _ in range(WINDOWS):
            engine_window = measure_window(engine, engine_rng, measured, WORKING_SET_BLOCKS)
            seed_window = measure_window(seed, seed_rng, measured, WORKING_SET_BLOCKS)
            pairs.append((engine_window, seed_window))
        # Both engines must agree on the functional outcome of the run.
        assert engine.total_blocks_stored() == seed.total_blocks_stored()
        return median_pair(pairs)

    engine_rate, seed_rate = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = engine_rate / seed_rate

    record = {
        "config": f"Z={Z}, working_set={WORKING_SET_BLOCKS} blocks, 50% utilization",
        "baseline": "seed_reference replay recalibrated against the v0 seed commit in PR 2",
        "accesses_per_window": measured,
        "window_pairs": WINDOWS,
        "engine_accesses_per_sec": round(engine_rate, 1),
        "seed_reference_accesses_per_sec": round(seed_rate, 1),
        "speedup": round(speedup, 2),
    }
    record_bench("flat", record)
    emit(
        "Engine throughput — fast path vs. seed reference "
        f"(Z={Z}, 2^15-block working set)",
        json.dumps(record, indent=2),
    )

    # The refactor targets 3x; the hard floor is set with margin so machine
    # noise cannot break CI while still catching real regressions.
    assert speedup >= 2.2, f"engine only {speedup:.2f}x over seed reference"
