"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section, prints the corresponding rows/series, and asserts that the
qualitative shape (who wins, roughly by how much, where crossovers fall)
matches the paper.  Experiment sizes are scaled down from the paper's
multi-gigabyte ORAMs; set ``REPRO_BENCH_SCALE`` (a float, default 1.0) to
grow or shrink the workloads.
"""

import json
import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Engine-throughput trajectory file at the repository root; one section per
#: perf benchmark ("flat", "hierarchical").
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def record_bench(section: str, record: dict) -> None:
    """Merge one perf benchmark's record into ``BENCH_engine.json``.

    The file holds one object per benchmark section so the flat-engine and
    hierarchy benchmarks can each update their own entry without clobbering
    the other (pre-sectioned flat-format files are replaced wholesale).
    """
    data = {}
    if BENCH_FILE.exists():
        try:
            loaded = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            loaded = None
        if isinstance(loaded, dict) and all(
            isinstance(value, dict) for value in loaded.values()
        ):
            data = loaded
    data[section] = record
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")


def bench_scale() -> float:
    """Global multiplier applied to access counts / trace lengths."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def bench_executor() -> str:
    """Executor for runner-driven sweeps (``REPRO_BENCH_EXECUTOR``).

    Defaults to the multiprocessing executor when the machine has more
    than one CPU — results are bit-identical to serial mode, per-point
    simulations are seeded independently — and to serial on single-core
    boxes where pool overhead cannot pay for itself.
    """
    executor = os.environ.get("REPRO_BENCH_EXECUTOR", "")
    if executor in ("serial", "process"):
        return executor
    if executor:
        raise ValueError(
            f"REPRO_BENCH_EXECUTOR must be 'serial' or 'process', got {executor!r}"
        )
    return "process" if (os.cpu_count() or 1) > 1 else "serial"


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an access count by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(value * bench_scale()))


def prefill(oram, count: int):
    """Access every address once so the ORAM holds its working set."""
    for address in range(1, count + 1):
        oram.access(address)
    return oram


def measure_window(oram, rng, measured: int, working_set: int) -> float:
    """One throughput window: ``measured`` random accesses, accesses/sec.

    The perf benchmarks alternate engine/seed windows and compare paired
    ratios, so both must draw their workload from this one helper.  A short
    untimed warm-up precedes the timed stretch: alternating two engines
    evicts each other's code and data from the CPU caches, and without the
    warm-up every window starts by paying the other engine's cache misses.
    """
    import time

    warmup = max(1, measured // 20)
    addresses = [rng.randrange(1, working_set + 1) for _ in range(warmup + measured)]
    for address in addresses[:warmup]:
        oram.access(address)
    start = time.perf_counter()
    for address in addresses[warmup:]:
        oram.access(address)
    return measured / (time.perf_counter() - start)


def median_pair(pairs):
    """The (engine, seed) window pair with the median rate ratio.

    Paired adjacent windows cancel machine-load drift; taking the median
    pair (lower-middle for even counts, the conservative side) avoids the
    upward bias a best-pair estimator would bake into the recorded
    trajectory.
    """
    ordered = sorted(pairs, key=lambda pair: pair[0] / pair[1])
    return ordered[(len(ordered) - 1) // 2]


def emit(title: str, text: str) -> None:
    """Print a figure/table reproduction in a recognisable block."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(text)
