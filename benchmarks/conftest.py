"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section, prints the corresponding rows/series, and asserts that the
qualitative shape (who wins, roughly by how much, where crossovers fall)
matches the paper.  Experiment sizes are scaled down from the paper's
multi-gigabyte ORAMs; set ``REPRO_BENCH_SCALE`` (a float, default 1.0) to
grow or shrink the workloads.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def bench_scale() -> float:
    """Global multiplier applied to access counts / trace lengths."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def bench_executor() -> str:
    """Executor for runner-driven sweeps (``REPRO_BENCH_EXECUTOR``).

    Defaults to the multiprocessing executor when the machine has more
    than one CPU — results are bit-identical to serial mode, per-point
    simulations are seeded independently — and to serial on single-core
    boxes where pool overhead cannot pay for itself.
    """
    executor = os.environ.get("REPRO_BENCH_EXECUTOR", "")
    if executor in ("serial", "process"):
        return executor
    if executor:
        raise ValueError(
            f"REPRO_BENCH_EXECUTOR must be 'serial' or 'process', got {executor!r}"
        )
    return "process" if (os.cpu_count() or 1) > 1 else "serial"


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an access count by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(value * bench_scale()))


def emit(title: str, text: str) -> None:
    """Print a figure/table reproduction in a recognisable block."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(text)
