"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section, prints the corresponding rows/series, and asserts that the
qualitative shape (who wins, roughly by how much, where crossovers fall)
matches the paper.  Experiment sizes are scaled down from the paper's
multi-gigabyte ORAMs; set ``REPRO_BENCH_SCALE`` (a float, default 1.0) to
grow or shrink the workloads.
"""

import json
import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Engine-throughput trajectory file at the repository root; one section per
#: perf benchmark ("flat", "hierarchical").
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def record_bench(section: str, record: dict) -> None:
    """Merge one perf benchmark's record into ``BENCH_engine.json``.

    The file holds one object per benchmark section so the flat-engine and
    hierarchy benchmarks can each update their own entry without clobbering
    the other (pre-sectioned flat-format files are replaced wholesale).
    """
    data = {}
    if BENCH_FILE.exists():
        try:
            loaded = json.loads(BENCH_FILE.read_text())
        except json.JSONDecodeError:
            loaded = None
        if isinstance(loaded, dict) and all(isinstance(value, dict) for value in loaded.values()):
            data = loaded
    data[section] = record
    BENCH_FILE.write_text(json.dumps(data, indent=2) + "\n")


#: Committed speedup floors, shared by the perf tests' hard assertions and
#: the CI gate (benchmarks/check_perf_floors.py) — one source of truth.
FLOORS_FILE = Path(__file__).resolve().parent / "perf_floors.json"


def perf_floor(section: str) -> float:
    """The committed regression floor for one BENCH section."""
    return float(json.loads(FLOORS_FILE.read_text())[section])


def bench_scale() -> float:
    """Global multiplier applied to access counts / trace lengths."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def bench_executor() -> str:
    """Executor for runner-driven sweeps (``REPRO_BENCH_EXECUTOR``).

    Defaults to the multiprocessing executor when the machine has more
    than one CPU — results are bit-identical to serial mode, per-point
    simulations are seeded independently — and to serial on single-core
    boxes where pool overhead cannot pay for itself.
    """
    executor = os.environ.get("REPRO_BENCH_EXECUTOR", "")
    if executor in ("serial", "process", "fleet"):
        return executor
    if executor:
        raise ValueError(
            "REPRO_BENCH_EXECUTOR must be 'serial', 'process', or 'fleet', "
            f"got {executor!r}"
        )
    return "process" if (os.cpu_count() or 1) > 1 else "serial"


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an access count by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(value * bench_scale()))


def prefill(oram, count: int):
    """Access every address once so the ORAM holds its working set."""
    for address in range(1, count + 1):
        oram.access(address)
    return oram


def _window_addresses(oram, rng, measured: int, working_set: int):
    """Draw one window's workload and run the untimed warm-up stretch.

    A short warm-up precedes every timed stretch: alternating two engines
    evicts each other's code and data from the CPU caches, and without the
    warm-up every window starts by paying the other engine's cache misses.
    A ``gc.collect()`` right before the timed stretch keeps collector debt
    from one engine's window from being billed to the other's.
    """
    import gc

    warmup = max(1, measured // 20)
    addresses = [rng.randrange(1, working_set + 1) for _ in range(warmup + measured)]
    for address in addresses[:warmup]:
        oram.access(address)
    gc.collect()
    return addresses[warmup:]


def measure_window(oram, rng, measured: int, working_set: int) -> float:
    """One throughput window of per-access ``access`` calls, accesses/sec.

    The seed-reference side of every perf benchmark runs through this
    helper (the seed had no batched entry point); the engine side runs the
    same drawn workload through :func:`measure_window_many`.
    """
    import time

    addresses = _window_addresses(oram, rng, measured, working_set)
    start = time.perf_counter()
    for address in addresses:
        oram.access(address)
    return measured / (time.perf_counter() - start)


def measure_window_many(oram, rng, measured: int, working_set: int) -> float:
    """One throughput window driven by one fused ``access_many`` call.

    Identical workload stream and warm-up to :func:`measure_window`; the
    timed stretch consumes the whole window trace-at-once.
    """
    import time

    addresses = _window_addresses(oram, rng, measured, working_set)
    start = time.perf_counter()
    oram.access_many(addresses)
    return measured / (time.perf_counter() - start)


def paired_throughput(
    engine,
    reference,
    windows: int,
    measured: int,
    working_set: int,
    trace_seed: int = 11,
    engine_window=measure_window_many,
    reference_window=measure_window,
):
    """Alternate engine/reference windows; return the median-ratio pair.

    The shared paired-window harness of both perf benchmarks: each of the
    ``windows`` rounds runs one engine window then one reference window
    back to back over the same workload stream (two RNGs from one
    ``trace_seed``), so a machine-load swing hits both comparably and the
    per-pair ratio stays meaningful.  Returns the
    ``(engine_rate, reference_rate)`` pair with the median ratio.
    """
    import random

    engine_rng, reference_rng = random.Random(trace_seed), random.Random(trace_seed)
    pairs = []
    for _ in range(windows):
        engine_rate = engine_window(engine, engine_rng, measured, working_set)
        reference_rate = reference_window(reference, reference_rng, measured, working_set)
        pairs.append((engine_rate, reference_rate))
    return median_pair(pairs)


def median_pair(pairs):
    """The (engine, seed) window pair with the median rate ratio.

    Paired adjacent windows cancel machine-load drift; taking the median
    pair (lower-middle for even counts, the conservative side) avoids the
    upward bias a best-pair estimator would bake into the recorded
    trajectory.
    """
    ordered = sorted(pairs, key=lambda pair: pair[0] / pair[1])
    return ordered[(len(ordered) - 1) // 2]


def record_perf(section: str, record: dict, title: str) -> None:
    """The perf benchmarks' one writer: record a section and print it.

    Merges the record into the sectioned ``BENCH_engine.json`` through
    :func:`record_bench` and emits the human-readable block, so both perf
    benchmarks report identically.
    """
    import json

    record_bench(section, record)
    emit(title, json.dumps(record, indent=2))


def emit(title: str, text: str) -> None:
    """Print a figure/table reproduction in a recognisable block."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(text)
