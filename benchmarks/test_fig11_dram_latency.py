"""Figure 11: hierarchical ORAM latency on DRAM — naive vs. subtree vs. theoretical.

Paper result (DDR3, 1/2/4 channels, four best Figure-10 configurations):
ORAM benefits from multiple channels; the naive heap-order layout falls
~20% (2 channels) to ~60% (4 channels) behind the peak-bandwidth bound,
while the subtree layout stays within ~6-13%; the 12-byte position-map
block designs, despite lower theoretical overhead, end up slower than the
32-byte designs once actually placed in DRAM.
"""

from conftest import bench_executor, emit, scaled

from repro.analysis.dram_latency import figure11_rows
from repro.analysis.report import format_table

CHANNELS = (1, 2, 4)


def _run_experiment():
    return figure11_rows(
        scale=1.0, channel_counts=CHANNELS,
        num_accesses=scaled(12, minimum=4), seed=4,
        executor=bench_executor(),
    )


def test_figure11_oram_latency_on_dram(benchmark):
    rows = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    table = [
        [
            row.name,
            row.channels,
            f"{row.naive_cycles:.0f}",
            f"{row.subtree_cycles:.0f}",
            f"{row.theoretical_cycles:.0f}",
            f"{row.naive_overhead - 1:.0%}",
            f"{row.subtree_overhead - 1:.0%}",
        ]
        for row in rows
    ]
    emit(
        "Figure 11 — ORAM access latency in DRAM cycles (paper-scale geometry)",
        format_table(
            ["config", "channels", "naive", "subtree", "theoretical",
             "naive vs theo", "subtree vs theo"],
            table,
        ),
    )

    by_key = {(row.name, row.channels): row for row in rows}

    for row in rows:
        # Nothing beats the peak-bandwidth bound.
        assert row.subtree_cycles >= row.theoretical_cycles
        assert row.naive_cycles >= row.theoretical_cycles
    # Multiple channels help dramatically (near-linear scaling).
    for name in ("DZ3Pb32", "DZ4Pb32"):
        assert by_key[(name, 4)].subtree_cycles < by_key[(name, 1)].subtree_cycles / 2.5
    # With 2+ channels the subtree layout beats the naive layout and stays
    # much closer to theoretical, while naive drifts far from it
    # (paper: naive 20-60% over, subtree 6-13% over; our simpler DRAM model
    # lands a little higher but preserves the gap).
    for name in ("DZ3Pb32", "DZ4Pb32", "DZ3Pb12", "DZ4Pb12"):
        for channels in (2, 4):
            row = by_key[(name, channels)]
            assert row.subtree_cycles <= row.naive_cycles
            assert row.subtree_overhead - 1 < 0.6
            assert row.naive_overhead - row.subtree_overhead > 0.1
        assert by_key[(name, 4)].naive_overhead - 1 > 0.40
    # The 12-byte position-map design loses its theoretical advantage once
    # implemented on DRAM: DZ3Pb32 is at least as fast as DZ3Pb12.
    assert (
        by_key[("DZ3Pb32", 4)].subtree_cycles
        <= by_key[("DZ3Pb12", 4)].subtree_cycles * 1.05
    )
