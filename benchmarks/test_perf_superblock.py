"""Dynamic super-block merging benchmark (Section 3.2's future work).

Replays a locality-heavy SPEC trace (``libquantum``, the paper's
memory-bound streaming benchmark) through the exclusive-ORAM interface
behind a small LRU line cache — the processor-side arrangement super
blocks exist for — and counts the ORAM path operations needed to serve
the stream with merging off, with the paper's static grouping, and with
the dynamic runtime-merging policy.  Dynamic merging discovers the
stream's adjacency at runtime and prefetches each discovered group on a
miss, so the miss stream shrinks toward the static scheme's without any
a-priori grouping; the pointer-chasing ``mcf`` replay rides along to show
the adaptive policy does no harm where there is no spatial locality.

Unlike the throughput benchmarks, the recorded ``speedup`` (path
operations saved on the libquantum replay) is a *deterministic* function
of the committed seeds — machine noise cannot move it — so its floor in
``benchmarks/perf_floors.json`` gates CI tightly.  The section lands in
``BENCH_engine.json`` as ``dynamic_super_block``.
"""

from collections import OrderedDict

from conftest import perf_floor, record_perf, scaled

from repro.backends import OramSpec, build_oram
from repro.core.config import ORAMConfig
from repro.core.interface import ORAMMemoryInterface
from repro.workloads.spec_like import benchmark_trace

#: The functional ORAM: small enough that the folded SPEC stream re-visits
#: its regions (merging pays on reuse), large vs. the cache below.
WORKING_SET = 1 << 10
#: LRU line-cache capacity — well under the benchmarks' hot sets, so the
#: ORAM keeps seeing misses and prefetched lines earn their keep.
CACHE_LINES = 192
LINE_BYTES = 128
MAX_GROUP = 8

SPEEDUP_FLOOR = perf_floor("dynamic_super_block")

DYNAMIC_SPEC = OramSpec(
    protocol="flat",
    eviction="none",
    dynamic_super_blocks=True,
    super_block_window=4096,
    super_block_merge_threshold=1,
    super_block_split_threshold=64,
    super_block_max_size=MAX_GROUP,
)
OFF_SPEC = OramSpec(protocol="flat", eviction="none")


def _cache_replay(spec: OramSpec, addresses, super_block_size: int = 1):
    """Serve a line-address stream through an LRU cache over the ORAM.

    A miss extracts the line (plus whatever super-block siblings ride the
    same path); an eviction writes the line back into the stash.  Returns
    the interface, whose ORAM counters hold the physical-op tally.
    """
    config = ORAMConfig(
        working_set_blocks=WORKING_SET,
        utilization=0.5,
        z=4,
        stash_capacity=None,
        super_block_size=super_block_size,
        name="superblock-bench",
    )
    interface = ORAMMemoryInterface(build_oram(spec, config, seed=17))
    cache: OrderedDict = OrderedDict()
    fetch = interface.fetch
    writeback = interface.writeback
    for address in addresses:
        if address in cache:
            cache.move_to_end(address)
            continue
        for member, payload in fetch(address).items():
            cache[member] = payload
            cache.move_to_end(member)
        while len(cache) > CACHE_LINES:
            victim, payload = cache.popitem(last=False)
            writeback(victim, payload)
    return interface


def _line_addresses(benchmark_name: str, num_memory_ops: int):
    trace = benchmark_trace(benchmark_name, num_memory_ops, seed=3)
    return [(record.address // LINE_BYTES) % WORKING_SET + 1 for record in trace]


def test_dynamic_super_block_prefetch_vs_off(benchmark):
    num_memory_ops = scaled(40_000, minimum=10_000)

    def _run():
        streaming = _line_addresses("libquantum", num_memory_ops)
        off = _cache_replay(OFF_SPEC, streaming)
        static = _cache_replay(OFF_SPEC, streaming, super_block_size=MAX_GROUP)
        dynamic = _cache_replay(DYNAMIC_SPEC, streaming)
        chasing = _line_addresses("mcf", num_memory_ops)
        chase_off = _cache_replay(OFF_SPEC, chasing)
        chase_dynamic = _cache_replay(DYNAMIC_SPEC, chasing)
        return off, static, dynamic, chase_off, chase_dynamic

    off, static, dynamic, chase_off, chase_dynamic = benchmark.pedantic(
        _run,
        rounds=1,
        iterations=1,
    )
    off_ops = off.oram.stats.path_reads
    static_ops = static.oram.stats.path_reads
    dynamic_ops = dynamic.oram.stats.path_reads
    dynamic_stats = dynamic.oram.stats
    speedup = off_ops / dynamic_ops
    chase_ratio = chase_off.oram.stats.path_reads / chase_dynamic.oram.stats.path_reads

    record = {
        "config": (
            f"Z=4, working_set={WORKING_SET} lines, {CACHE_LINES}-line LRU, "
            f"max_group={MAX_GROUP}"
        ),
        "workload": f"libquantum SPEC replay, {num_memory_ops} memory ops",
        "metric": "ORAM path ops to serve the stream (deterministic)",
        "off_path_ops": off_ops,
        "static_path_ops": static_ops,
        "dynamic_path_ops": dynamic_ops,
        "static_speedup": round(off_ops / static_ops, 2),
        "merges": dynamic_stats.super_block_merges,
        "splits": dynamic_stats.super_block_splits,
        "hits": dynamic_stats.super_block_hits,
        "prefetched_lines": dynamic.stats.prefetched_lines,
        "mcf_adaptive_ratio": round(chase_ratio, 2),
        "speedup": round(speedup, 2),
    }
    record_perf(
        "dynamic_super_block",
        record,
        "Dynamic super-block merging — path ops saved on a libquantum "
        f"replay behind a {CACHE_LINES}-line cache",
    )

    floor_message = f"dynamic merging saved {speedup:.2f}x path ops (floor {SPEEDUP_FLOOR:.2f}x)"
    assert speedup >= SPEEDUP_FLOOR, floor_message
    # Adaptivity: runtime merging must not hurt a workload with no spatial
    # locality (the static scheme's weakness the paper calls out).
    chase_message = f"dynamic merging cost path ops on pointer chasing ({chase_ratio:.2f}x)"
    assert chase_ratio >= 0.97, chase_message
    # Merging must actually engage on the streaming replay.
    assert dynamic_stats.super_block_merges > 0
    assert dynamic.stats.prefetched_lines > 0
