"""Serving-layer benchmark: what does batch coalescing buy at the front door?

A seeded closed-loop load (multiple tenants, multiple concurrent clients
each) runs twice per paired window against identically-seeded instances:
once through the batching scheduler (micro-batches of fused
``access_many`` runs) and once degraded to ``max_batch=1`` (every request
admitted and executed individually — the no-coalescing reference, still
paying the same asyncio machinery).  The recorded ``speedup`` is
``batched_rps / unbatched_rps``; p50/p99 submit-to-completion latency and
aggregate throughput of the batched configuration are recorded alongside
into the ``serving`` section of ``BENCH_engine.json`` behind a committed
floor.
"""

import os

from conftest import median_pair, perf_floor, record_perf, scaled  # noqa: E402

from repro.backends import OramSpec
from repro.core.config import ORAMConfig
from repro.serve import LoadGenConfig, ServiceConfig, run_load

WORKING_SET = 512
WINDOWS = 3

SPEEDUP_FLOOR = perf_floor("serving")

SPEC = OramSpec(protocol="flat", storage="flat")
CONFIG = ORAMConfig(working_set_blocks=WORKING_SET, stash_capacity=200)

LOAD = LoadGenConfig(
    tenants=4,
    clients_per_tenant=4,
    requests_per_client=scaled(400, minimum=40),
    working_set=WORKING_SET,
    write_fraction=0.1,
    seed=29,
)

BATCHED = ServiceConfig(max_batch=256)
UNBATCHED = ServiceConfig(max_batch=1)


def _window(config: ServiceConfig, index: int):
    # Fresh instance per run: both sides replay the identical seeded
    # request streams against an identically-seeded ORAM.
    report = run_load({"main": (SPEC, CONFIG, 100 + index)}, load=LOAD, config=config)
    assert report.requests == LOAD.total_requests
    return report


def test_serving_batched_vs_unbatched(benchmark):
    def _run():
        pairs = []
        reports = []
        for index in range(WINDOWS):
            batched = _window(BATCHED, index)
            unbatched = _window(UNBATCHED, index)
            assert batched.fused_runs > 0
            assert unbatched.fused_runs == 0
            assert unbatched.rounds >= batched.rounds
            pairs.append((batched.throughput_rps, unbatched.throughput_rps))
            reports.append(batched)
        batched_rps, unbatched_rps = median_pair(pairs)
        median_report = reports[[pair[0] for pair in pairs].index(batched_rps)]
        return batched_rps, unbatched_rps, median_report

    batched_rps, unbatched_rps, report = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = batched_rps / unbatched_rps

    record = {
        "config": (
            f"flat Path ORAM, working set {WORKING_SET} blocks, served via "
            f"OramService; batched (max_batch={BATCHED.max_batch}, fused "
            "reads) vs unbatched (max_batch=1) scheduler"
        ),
        "workload": (
            f"closed loop: {LOAD.tenants} tenants x {LOAD.clients_per_tenant} "
            f"clients x {LOAD.requests_per_client} requests, "
            f"{int(LOAD.write_fraction * 100)}% writes, seeded streams"
        ),
        "metric": "aggregate requests per second, batched vs unbatched",
        "cpus": os.cpu_count(),
        "batched_rps": round(batched_rps, 1),
        "unbatched_rps": round(unbatched_rps, 1),
        "throughput_rps": round(batched_rps, 1),
        "p50_ms": round(report.p50_ms, 4),
        "p99_ms": round(report.p99_ms, 4),
        "mean_ms": round(report.mean_ms, 4),
        "rounds": report.rounds,
        "batches": report.batches,
        "fused_runs": report.fused_runs,
        "speedup": round(speedup, 3),
    }
    record_perf(
        "serving",
        record,
        "Serving layer — closed-loop load through the batching scheduler "
        "vs per-request admission",
    )

    floor_message = (
        f"batched serving at {speedup:.3f}x the unbatched reference "
        f"(floor {SPEEDUP_FLOOR:.2f}x)"
    )
    assert speedup >= SPEEDUP_FLOOR, floor_message
