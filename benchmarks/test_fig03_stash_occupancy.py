"""Figure 3: stash-occupancy tail probability for Z = 1..4, unbounded stash.

Paper result (4 GB ORAM, 2 GB working set, 10N accesses): with a stash of
up to 1000 blocks, Z <= 2 always fails, Z = 3 fails with ~1e-5 probability,
and Z = 4 essentially never fails.  The reproduced, scaled-down experiment
must preserve the ordering: smaller Z has a much heavier occupancy tail.
"""

from conftest import bench_executor, emit, scaled

from repro.analysis.report import format_table
from repro.analysis.stash_occupancy import run_stash_occupancy_sweep

WORKING_SET_BLOCKS = 2048
Z_VALUES = [1, 2, 3, 4]
THRESHOLDS = [1, 2, 5, 10, 20, 50, 100, 200]


def _run_experiment():
    return run_stash_occupancy_sweep(
        Z_VALUES,
        working_set_blocks=WORKING_SET_BLOCKS,
        num_accesses=scaled(10 * WORKING_SET_BLOCKS),
        seed=1,
        executor=bench_executor(),
    )


def test_figure3_stash_occupancy_tail(benchmark):
    results = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)

    rows = []
    for threshold in THRESHOLDS:
        tail = [f"{results[z].tail_probability(threshold):.2e}" for z in Z_VALUES]
        rows.append([threshold] + tail)
    emit(
        "Figure 3 — P(blocks in stash >= m), infinite stash "
        f"(working set {WORKING_SET_BLOCKS} blocks, 50% utilization)",
        format_table(["m"] + [f"Z={z}" for z in Z_VALUES], rows),
    )

    # Shape checks: the tail gets lighter as Z grows; Z=1 diverges (its
    # occupancy keeps climbing), Z=4 stays tiny.
    tail_at_20 = {z: results[z].tail_probability(20) for z in Z_VALUES}
    assert tail_at_20[1] > tail_at_20[2] >= tail_at_20[3] >= tail_at_20[4]
    assert tail_at_20[1] > 0.5
    assert tail_at_20[4] < 0.05
    assert results[1].max_occupancy > results[4].max_occupancy
