"""CI perf-floor gate: recorded speedups must not drop below the floors.

Reads the sectioned ``BENCH_engine.json`` the perf benchmarks just wrote
and compares each section's ``speedup`` against the committed floors in
``benchmarks/perf_floors.json``.  The floors are the regression contract:
they sit below the typical recorded ratios (so machine noise cannot break
CI) but above the previous PR's recorded trajectory point, so a change
that genuinely loses the trace-at-once gains fails the gate.

Exit status: 0 when every recorded section clears its floor, 1 otherwise
(also when a section with a committed floor is missing from the bench
file).

Usage::

    python benchmarks/check_perf_floors.py [BENCH_FILE] [FLOORS_FILE]
"""

import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
DEFAULT_BENCH = _HERE.parent / "BENCH_engine.json"
DEFAULT_FLOORS = _HERE / "perf_floors.json"


def check(bench_path: Path, floors_path: Path) -> int:
    try:
        bench = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read bench file {bench_path}: {exc}")
        return 1
    floors = json.loads(floors_path.read_text())

    status = 0
    for section, floor in sorted(floors.items()):
        record = bench.get(section)
        if not isinstance(record, dict) or "speedup" not in record:
            print(f"FAIL: section {section!r} missing from {bench_path.name}")
            status = 1
            continue
        speedup = record["speedup"]
        verdict = "ok" if speedup >= floor else "FAIL"
        print(f"{verdict}: {section} speedup {speedup:.2f}x (floor {floor:.2f}x)")
        if speedup < floor:
            status = 1
    return status


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    bench = Path(argv[0]) if len(argv) > 0 else DEFAULT_BENCH
    floors = Path(argv[1]) if len(argv) > 1 else DEFAULT_FLOORS
    return check(bench, floors)


if __name__ == "__main__":
    raise SystemExit(main())
