"""CI perf-floor gate: recorded speedups must not drop below the floors.

Reads the sectioned ``BENCH_engine.json`` the perf benchmarks just wrote
and compares each section's ``speedup`` against the committed floors in
``benchmarks/perf_floors.json``.  The floors are the regression contract:
they sit below the typical recorded ratios (so machine noise cannot break
CI) but above the previous PR's recorded trajectory point, so a change
that genuinely loses the trace-at-once gains fails the gate.

``--diff`` additionally renders the recorded-vs-floor margins as a
markdown table; when ``$GITHUB_STEP_SUMMARY`` is set (every GitHub
Actions step) the table is appended there, so floor headroom is visible
on every CI run instead of only on failure.

Exit status: 0 when every recorded section clears its floor, 1 otherwise
(also when a section with a committed floor is missing from the bench
file).

Usage::

    python benchmarks/check_perf_floors.py [--diff] [BENCH_FILE] [FLOORS_FILE]
"""

import json
import os
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
DEFAULT_BENCH = _HERE.parent / "BENCH_engine.json"
DEFAULT_FLOORS = _HERE / "perf_floors.json"


def load(bench_path: Path, floors_path: Path):
    """Read both files; returns ``(bench, floors)`` or raises OSError/ValueError."""
    bench = json.loads(bench_path.read_text())
    floors = json.loads(floors_path.read_text())
    return bench, floors


def section_rows(bench: dict, floors: dict) -> list[dict]:
    """One row per committed floor: recorded speedup, floor, margin, verdict."""
    rows = []
    for section, floor in sorted(floors.items()):
        record = bench.get(section)
        speedup = record.get("speedup") if isinstance(record, dict) else None
        if isinstance(speedup, (int, float)):
            rows.append({
                "section": section,
                "speedup": float(speedup),
                "floor": float(floor),
                "margin": float(speedup) - float(floor),
                "ok": speedup >= floor,
            })
        else:
            rows.append({
                "section": section,
                "speedup": None,
                "floor": float(floor),
                "margin": None,
                "ok": False,
            })
    return rows


def markdown_table(rows: list[dict]) -> str:
    """The ``--diff`` view: recorded-vs-floor margins as a markdown table."""
    lines = [
        "### Perf-floor headroom",
        "",
        "| Section | Recorded | Floor | Margin | Status |",
        "| --- | ---: | ---: | ---: | :---: |",
    ]
    for row in rows:
        if row["speedup"] is None:
            lines.append(f"| `{row['section']}` | *missing* | {row['floor']:.2f}x | — | ❌ |")
        else:
            status = "✅" if row["ok"] else "❌"
            lines.append(
                f"| `{row['section']}` | {row['speedup']:.2f}x "
                f"| {row['floor']:.2f}x | {row['margin']:+.2f}x | {status} |"
            )
    return "\n".join(lines) + "\n"


def check(bench_path: Path, floors_path: Path, diff: bool = False) -> int:
    try:
        bench, floors = load(bench_path, floors_path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read bench/floors file: {exc}")
        return 1

    rows = section_rows(bench, floors)
    status = 0
    for row in rows:
        if row["speedup"] is None:
            print(f"FAIL: section {row['section']!r} missing from {bench_path.name}")
            status = 1
        else:
            verdict = "ok" if row["ok"] else "FAIL"
            print(
                f"{verdict}: {row['section']} speedup {row['speedup']:.2f}x "
                f"(floor {row['floor']:.2f}x, margin {row['margin']:+.2f}x)"
            )
            if not row["ok"]:
                status = 1

    if diff:
        table = markdown_table(rows)
        print()
        print(table, end="")
        summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            with open(summary_path, "a", encoding="utf-8") as summary:
                summary.write(table)
    return status


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    diff = "--diff" in argv
    positional = [arg for arg in argv if arg != "--diff"]
    bench = Path(positional[0]) if len(positional) > 0 else DEFAULT_BENCH
    floors = Path(positional[1]) if len(positional) > 1 else DEFAULT_FLOORS
    return check(bench, floors, diff=diff)


if __name__ == "__main__":
    raise SystemExit(main())
