"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` keeps working in fully offline environments that lack
the ``wheel`` package (legacy ``setup.py develop`` editable installs do not
need to build a wheel).
"""

from setuptools import setup

setup()
