"""Pytest configuration for the repository root.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. fully offline environments where ``pip install -e .`` cannot build an
editable wheel because the ``wheel`` package is unavailable).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
