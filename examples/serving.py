"""ORAM-as-a-service: multi-tenant serving with deterministic batching.

Three demonstrations of the async serving layer:

1. Two tenants share one hierarchical ORAM instance through the service;
   reads and writes round-trip and every request is accounted to its tenant.
2. Determinism — replaying a recorded request script through the batching
   scheduler leaves the ORAM bit-identical to applying the same requests
   serially.
3. A closed-loop load generation run reporting p50/p99 latency and
   aggregate throughput.

Run with:  python examples/serving.py
"""

import asyncio

from repro import (
    LoadGenConfig,
    OramService,
    ORAMConfig,
    OramSpec,
    ServiceConfig,
    run_load,
    run_script,
    serial_script,
    synthetic_script,
)

# The functional storage stack keeps the demo fast; any registered stack
# (encrypted, integrity, memmap-flat) serves identically.
SPEC = OramSpec(protocol="flat", storage="flat")
CONFIG = ORAMConfig(working_set_blocks=256, z=4, block_bytes=64, stash_capacity=150)


async def demo_service() -> None:
    print("--- Two tenants sharing one served instance ---")
    service = OramService(ServiceConfig(max_batch=32))
    service.open_instance("shared", SPEC, CONFIG, seed=1)
    async with service:
        await service.submit("alice", "shared", 5, op="write", data=b"alice owns block 5")
        await service.submit("bob", "shared", 6, op="write", data=b"bob owns block 6")
        alice = await service.submit("alice", "shared", 5, collect=True)
        bob = await service.submit("bob", "shared", 6, collect=True)
    print(f"alice read back: {alice.data!r}  (latency {alice.latency * 1e3:.3f} ms)")
    print(f"bob   read back: {bob.data!r}  (latency {bob.latency * 1e3:.3f} ms)")
    for name, tenant in sorted(service.stats.tenants.items()):
        print(
            f"  tenant {name}: {tenant.requests} requests "
            f"({tenant.reads} reads, {tenant.writes} writes)"
        )
    print()


def demo_determinism() -> None:
    print("--- Determinism: batched replay == serial application ---")
    script = synthetic_script(
        seed=42,
        tenants=["alice", "bob", "carol"],
        instances=["shared"],
        length=300,
        working_set=256,
        write_fraction=0.25,
    )
    instances = {"shared": (SPEC, CONFIG, 7)}
    config = ServiceConfig(max_batch=64)
    batched = run_script(script, instances, config=config)
    serial = serial_script(script, instances, config=config)
    print(f"requests replayed: {len(script)}")
    print(f"batched rounds: {batched.stats.rounds}, batches: {batched.stats.batches}")
    print(f"ORAM state fingerprints identical: {batched.fingerprint == serial.fingerprint}")
    print(
        f"service accounting identical:      "
        f"{batched.stats.fingerprint() == serial.stats.fingerprint()}"
    )
    print()


def demo_loadgen() -> None:
    print("--- Closed-loop load generation ---")
    load = LoadGenConfig(
        tenants=3,
        clients_per_tenant=2,
        requests_per_client=50,
        working_set=256,
        seed=9,
    )
    report = run_load({"main": (SPEC, CONFIG, 3)}, load=load)
    print(
        f"{report.requests} requests in {report.duration:.3f} s "
        f"-> {report.throughput_rps:,.0f} req/s"
    )
    print(f"latency p50 {report.p50_ms:.3f} ms, p99 {report.p99_ms:.3f} ms")
    print(
        f"scheduler: {report.rounds} rounds, {report.batches} batches, "
        f"{report.fused_runs} fused access_many runs"
    )


def main() -> None:
    asyncio.run(demo_service())
    demo_determinism()
    demo_loadgen()


if __name__ == "__main__":
    main()
