"""Quickstart: a hierarchical Path ORAM with encryption and integrity.

Builds a small secure-processor-style memory stack — counter-based bucket
encryption, the mirrored authentication tree, a recursive position map and
background eviction — stores some data through the oblivious interface, and
shows what an adversary watching external memory would observe.

Run with:  python examples/quickstart.py
"""

import random

from repro import HierarchyConfig, ORAMConfig, OramSpec, open_oram


def main() -> None:
    # 1. Configure the data ORAM: 4096 blocks of 128 bytes at 50% utilization.
    data_oram = ORAMConfig(
        working_set_blocks=4096,
        utilization=0.5,
        z=3,
        block_bytes=128,
        stash_capacity=200,
        name="quickstart-data",
    )
    hierarchy = HierarchyConfig(
        data_oram=data_oram,
        position_map_block_bytes=32,
        position_map_z=3,
        onchip_position_map_limit_bytes=512,
        name="quickstart",
    )
    print(hierarchy.describe())
    print()

    # 2. Build the ORAM through the public facade: the "integrity"
    #    storage stack is counter-mode encryption plus the mirrored
    #    authentication tree, and the "hierarchical" protocol walks the
    #    recursive position-map chain.
    oram = open_oram(
        OramSpec(
            protocol="hierarchical",
            storage="integrity",
            key_seed=2024,
            record_path_trace=True,
        ),
        hierarchy,
        rng=random.Random(1),
    )

    # 3. Use it like ordinary memory.
    print("Writing 64 blocks ...")
    for address in range(1, 65):
        oram.write(address, f"payload-{address}".encode())
    print("Reading them back ...")
    for address in range(1, 65):
        value = oram.read(address).data
        assert value == f"payload-{address}".encode()
    print("All reads returned the data that was written.")
    print()

    # 4. What did the adversary see?  Only uniformly random paths and
    #    fresh-looking ciphertext.
    data_trace = oram.data_oram.path_trace
    print(f"Adversary-visible data-ORAM path trace: {len(data_trace)} path accesses")
    print(f"  first ten accessed leaves: {data_trace[:10]}")
    distinct = len(set(data_trace))
    print(f"  distinct leaves touched: {distinct} of {data_oram.num_leaves}")
    print(f"Background-eviction dummy rounds issued: {oram.total_dummy_rounds()}")
    auth = oram.data_oram.storage.authenticator
    print(f"Integrity checks performed on the data ORAM: {auth.counters.verifications}")
    print()
    print("Root ciphertext changes on every access (randomized encryption):")
    before = oram.data_oram.storage.inner.raw_bucket(0)
    oram.read(1)
    after = oram.data_oram.storage.inner.raw_bucket(0)
    print(f"  root bucket ciphertext changed: {before != after}")


if __name__ == "__main__":
    main()
