"""Design-space exploration: pick Z, utilization and position-map block size.

A miniature version of the paper's Section 4.1 exploration: background
eviction removes the failure-probability dimension, so every configuration
can be compared on a single metric — access overhead (Equation 1 / 2).

The Z/utilization grid runs through the unified experiment runner on a
process pool (results are bit-identical to serial mode); pass
``--serial`` to force in-process execution.

Run with:  python examples/design_space_exploration.py
"""

import os
import sys

from repro.analysis.hierarchy import figure10_rows
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_utilization


def explore_z_and_utilization(executor: str) -> None:
    print("Access overhead (data moved per useful byte) for a ~2048-block tree")
    print(f"('inf' marks configurations drowning in dummy accesses; {executor} executor):")
    z_values = [1, 2, 3, 4]
    utilizations = [0.25, 0.5, 0.67, 0.8]

    def progress(done, total, result):
        sys.stdout.write(f"\r  {done}/{total} grid points measured")
        sys.stdout.flush()
        if done == total:
            print()

    points = sweep_utilization(
        z_values,
        utilizations,
        capacity_blocks=2048,
        num_accesses=400,
        seed=1,
        abort_dummy_factor=12.0,
        executor=executor,
        progress=progress,
    )
    by_key = dict(zip(((z, u) for z in z_values for u in utilizations), points))
    rows = []
    for utilization in utilizations:
        row = [f"{utilization:.0%}"]
        for z in z_values:
            point = by_key[(z, utilization)]
            row.append("inf" if point.aborted else f"{point.access_overhead:.0f}")
        rows.append(row)
    print(format_table(["utilization"] + [f"Z={z}" for z in z_values], rows))
    print()


def explore_position_map_block_size() -> None:
    print("Hierarchical overhead breakdown at the paper's full scale")
    print("(8 GB-class data ORAM, final position map under 200 KB):")
    rows = []
    for row in figure10_rows(scale=1.0, measure_dummies=False):
        rows.append([
            row.name, row.num_orams,
            f"{row.per_oram_overhead[0]:.0f}",
            f"{sum(row.per_oram_overhead[1:]):.0f}",
            f"{row.total_overhead:.0f}",
        ])
    print(format_table(["config", "#ORAMs", "data ORAM", "pmap ORAMs", "total"], rows))
    print()
    best = min(
        (row for row in figure10_rows(scale=1.0, measure_dummies=False)),
        key=lambda row: row.total_overhead,
    )
    print(f"Lowest theoretical overhead: {best.name} ({best.total_overhead:.0f}x)")
    print("(Section 4.2 shows 32-byte position-map blocks win once DRAM row-buffer")
    print(" behaviour is taken into account, which is why the paper ships DZ3Pb32.)")


def main() -> None:
    if "--serial" in sys.argv or (os.cpu_count() or 1) == 1:
        executor = "serial"
    else:
        executor = "process"
    explore_z_and_utilization(executor)
    explore_position_map_block_size()


if __name__ == "__main__":
    main()
