"""Integrity verification and the common-path-length attack.

Two security-focused demonstrations:

1. The authentication tree of Section 5 detects tampering and replay of
   external memory (and costs only ~L hashes per access, versus the
   strawman Merkle tree's Z(L+1)^2).
2. The CPL attack of Section 3.1.3 distinguishes an insecure eviction
   scheme from the paper's background eviction by looking only at the
   adversary-visible sequence of accessed paths.

Run with:  python examples/integrity_and_attacks.py
"""

import random

from repro import IntegrityError, ORAMConfig, OramSpec, open_oram
from repro.attacks.cpl import expected_common_path_length, run_cpl_experiment
from repro.integrity.merkle import MerkleTree


def demo_integrity() -> None:
    print("--- Integrity verification (Section 5) ---")
    config = ORAMConfig(working_set_blocks=128, z=2, block_bytes=32, stash_capacity=80)
    oram = open_oram(
        OramSpec(protocol="flat", storage="integrity", key_seed=7),
        config,
        rng=random.Random(1),
    )
    storage = oram.storage

    for address in range(1, 65):
        oram.write(address, f"value-{address}".encode())
    print("Wrote 64 blocks through the integrity-verified ORAM.")

    # A physical attacker rewrites one bucket of external memory.
    storage.tamper_with_bucket(0, b"malicious ciphertext written by the adversary")
    try:
        for address in range(1, 65):
            oram.read(address)
        print("ERROR: tampering went undetected!")
    except IntegrityError as error:
        print(f"Tampering detected as expected: {error}")

    merkle = MerkleTree(config.total_blocks)
    print(
        "Hash cost per ORAM access — strawman Merkle tree: "
        f"{merkle.hashes_per_oram_access(config.z, config.levels)} hashes, "
        f"paper's authentication tree: <= {config.levels} sibling hashes"
    )
    print()


def demo_cpl_attack() -> None:
    print("--- Common-path-length attack (Section 3.1.3, Figure 4) ---")
    expected = expected_common_path_length(5)
    for scheme in ("background", "insecure"):
        result = run_cpl_experiment(scheme, num_accesses=2000, rng=random.Random(3))
        print(
            f"{scheme:11s}: CPL between a real access and the eviction it triggers = "
            f"{result.trigger_pair_cpl:.3f}  (uniform expectation {expected:.3f})"
        )
    print("The insecure block-remapping eviction is visibly correlated with the")
    print("preceding access; the paper's background eviction is indistinguishable")
    print("from uniformly random paths.")


def main() -> None:
    demo_integrity()
    demo_cpl_attack()


if __name__ == "__main__":
    main()
