"""Secure-processor simulation: how much does Path ORAM cost at run time?

Replays a few SPEC-like memory traces through the Table 1 processor model
with (a) plain DRAM, (b) the baseline ORAM configuration and (c) the
paper's optimised DZ3Pb32 configuration with super blocks, and prints the
slowdowns — a miniature Figure 12.

Run with:  python examples/secure_processor_simulation.py
"""

from repro.analysis.report import format_table
from repro.analysis.spec_eval import (
    figure12_configurations,
    run_dram_baseline,
    run_oram_configuration,
)

BENCHMARKS = ["mcf", "libquantum", "hmmer"]
MEMORY_OPS = 4000


def main() -> None:
    configurations = [
        config for config in figure12_configurations(functional_scale=1 / 4096)
        if config.name in ("baseORAM", "DZ3Pb32", "DZ4Pb32+SB")
    ]

    print("ORAM access latencies used (from the DRAM timing model, CPU cycles):")
    for config in configurations:
        print(f"  {config.name:11s} return data {config.latency.return_data_cycles:6.0f}   "
              f"finish access {config.latency.finish_access_cycles:6.0f}")
    print()

    rows = []
    for benchmark in BENCHMARKS:
        baseline = run_dram_baseline(benchmark, MEMORY_OPS, seed=1)
        row = [benchmark, f"{baseline.total_cycles:.0f}"]
        for config in configurations:
            result = run_oram_configuration(benchmark, config, MEMORY_OPS, seed=1)
            row.append(f"{result.slowdown_over(baseline):.2f}x")
        rows.append(row)

    print(format_table(
        ["benchmark", "DRAM cycles"] + [c.name for c in configurations],
        rows,
        title="Slowdown over an insecure DRAM-based processor",
    ))
    print()
    print("Memory-bound benchmarks (mcf, libquantum) pay the most; the optimised")
    print("configuration recovers a large fraction of the baseline ORAM's cost,")
    print("and super blocks help most where misses have spatial locality.")


if __name__ == "__main__":
    main()
