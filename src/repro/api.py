"""The stable public API facade.

Everything an application needs to build, drive, serve and persist ORAMs
is re-exported here under one flat namespace, so user code (and the
examples, and the README snippets) never has to reach into ``repro.core``
or other implementation packages — those remain free to refactor.  The
facade is also what ``import repro`` exposes: ``repro.open_oram`` is
``repro.api.open_oram``.

The surface, by concern:

* **Configuration** — :class:`ORAMConfig`, :class:`HierarchyConfig`,
  :class:`OramSpec` (the picklable scenario descriptor every driver
  builds through), :data:`Operation`.
* **Construction** — :func:`open_oram` (spec + config → ORAM),
  :func:`open_interface` (the exclusive-ORAM processor front-end),
  :func:`restore_oram` (snapshot envelope → ORAM),
  :func:`storage_backends` (registered storage-stack names).
* **Protocols** — :class:`PathORAM`, :class:`HierarchicalPathORAM` (the
  concrete types :func:`open_oram` returns; useful for isinstance checks
  and type hints).
* **Experiments** — :class:`ExperimentRunner`, :class:`ExperimentSpec`,
  :class:`WindowPlan`, :func:`run_windows`, :class:`CheckpointManager`,
  :class:`RetryPolicy`, :func:`derive_seed`.
* **Serving** — :class:`OramService`, :class:`ServiceConfig`,
  :class:`Request`, :class:`ServeResult`, :func:`run_script`,
  :func:`serial_script`, :func:`synthetic_script`, :func:`run_load`,
  :class:`LoadGenConfig`, :class:`LoadReport`.
* **Errors** — :class:`ReproError` and its typed subclasses; every
  exception the package raises derives from :class:`ReproError`.
"""

from __future__ import annotations

import random
from typing import Any

from repro.backends import (
    Backend,
    OramSpec,
    build_interface,
    build_oram,
    restore_oram,
    storage_backends,
)
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.interface import ORAMMemoryInterface
from repro.core.path_oram import PathORAM
from repro.core.types import AccessResult, Operation, TraceResult
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    DurabilityError,
    EncryptionError,
    IntegrityError,
    ReproError,
    StashOverflowError,
    TraceFormatError,
)
from repro.runner import (
    CheckpointManager,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    RetryPolicy,
    WindowPlan,
    derive_seed,
    run_windows,
)
from repro.serve import (
    LoadGenConfig,
    LoadReport,
    OramService,
    Request,
    ScriptOutcome,
    ServeResult,
    ServiceConfig,
    run_load,
    run_script,
    serial_script,
    synthetic_script,
)


def open_oram(
    spec: OramSpec,
    config: ORAMConfig | HierarchyConfig,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> Backend:
    """Build the ORAM a spec describes over ``config``.

    The stable entry point in front of the backend registry: pass an
    :class:`OramSpec` naming the protocol/storage/eviction scenario and an
    :class:`ORAMConfig` (flat protocol) or :class:`HierarchyConfig`
    (hierarchical), plus either a ``seed`` (the common reproducible case)
    or an explicit ``rng``.  Returns a :class:`PathORAM` or
    :class:`HierarchicalPathORAM`.
    """
    return build_oram(spec, config, seed=seed, rng=rng)


def open_interface(
    spec: OramSpec,
    config: ORAMConfig | HierarchyConfig,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> ORAMMemoryInterface:
    """Build the exclusive-ORAM front-end a secure processor talks to."""
    return build_interface(spec, config, seed=seed, rng=rng)


def open_service(
    config: ServiceConfig | None = None,
    instances: dict[str, tuple[OramSpec, Any, int]] | None = None,
) -> OramService:
    """Create an :class:`OramService`, optionally pre-registering instances.

    ``instances`` maps names to ``(spec, oram_config, seed)`` triples, the
    same shape :func:`run_script` and :func:`run_load` take.  The returned
    service still needs to be started (``async with service:``) before
    requests are submitted.
    """
    service = OramService(config)
    for name, (spec, oram_config, seed) in (instances or {}).items():
        service.open_instance(name, spec, oram_config, seed=seed)
    return service


__all__ = [
    # Configuration
    "ORAMConfig",
    "HierarchyConfig",
    "OramSpec",
    "Operation",
    # Construction
    "open_oram",
    "open_interface",
    "open_service",
    "restore_oram",
    "storage_backends",
    # Protocols and results
    "PathORAM",
    "HierarchicalPathORAM",
    "ORAMMemoryInterface",
    "AccessResult",
    "TraceResult",
    # Experiments
    "CheckpointManager",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "RetryPolicy",
    "WindowPlan",
    "derive_seed",
    "run_windows",
    # Serving
    "LoadGenConfig",
    "LoadReport",
    "OramService",
    "Request",
    "ScriptOutcome",
    "ServeResult",
    "ServiceConfig",
    "run_load",
    "run_script",
    "serial_script",
    "synthetic_script",
    # Errors
    "ReproError",
    "ConfigurationError",
    "StashOverflowError",
    "IntegrityError",
    "CheckpointError",
    "DurabilityError",
    "EncryptionError",
    "TraceFormatError",
]
