"""Request envelopes and recorded request scripts for the serving layer.

A logical client talks to the service in units of :class:`Request` — one
read or write against a *named* ORAM instance, tagged with the tenant it
belongs to.  A recorded **request script** is simply a list of requests in
arrival order; because every scheduling decision downstream is a pure
function of that order (see :mod:`repro.serve.scheduler`), a script is the
unit of reproducibility: replaying it through the async service leaves the
ORAM bit-identical to applying the same schedule synchronously.

:func:`synthetic_script` generates deterministic multi-tenant scripts from
a seed, mirroring how the workload generators in :mod:`repro.workloads`
produce address traces — same seed, same script, in any process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.types import Operation
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Request:
    """One logical client request against a named ORAM instance.

    Attributes
    ----------
    tenant:
        The tenant (logical client group) the request is accounted to.
    instance:
        Name of the target ORAM instance registered with the service.
    address:
        Program address (1-based, like :meth:`PathORAM.access`).
    op:
        :data:`Operation.READ` or :data:`Operation.WRITE`; the strings
        ``"read"`` / ``"write"`` are accepted and normalised (anything
        else raises :class:`~repro.errors.ConfigurationError` — a typo'd
        op must not silently execute as a read).
    data:
        Payload for writes; ignored for reads.
    collect:
        When True the request is executed individually (never fused into an
        ``access_many`` micro-batch) so its :class:`ServeResult` carries the
        block payload and found flag.  Fused reads trade per-request results
        for throughput — their results report ``found=None, data=None``.
    """

    tenant: str
    instance: str
    address: int
    op: Operation = Operation.READ
    data: Any = None
    collect: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.op, Operation):
            try:
                normalized = Operation(self.op)
            except ValueError:
                raise ConfigurationError(
                    f"unknown operation {self.op!r}; expected Operation.READ, "
                    "Operation.WRITE, 'read' or 'write'"
                ) from None
            object.__setattr__(self, "op", normalized)


@dataclass(slots=True)
class ServeResult:
    """What the service hands back for one completed request.

    ``found``/``data`` are populated for individually executed requests
    (writes and ``collect=True`` reads); requests served inside a fused
    ``access_many`` run report ``None`` for both — the fused engine does
    not materialise per-access results.  ``latency`` is the wall-clock
    submit-to-completion time in seconds (0.0 in synchronous replays,
    which have no notion of waiting).
    """

    address: int
    found: bool | None = None
    data: Any = None
    latency: float = 0.0


def synthetic_script(
    seed: int,
    tenants: Sequence[str],
    instances: Sequence[str],
    length: int,
    working_set: int,
    write_fraction: float = 0.0,
    collect_fraction: float = 0.0,
    tenant_weights: Mapping[str, float] | None = None,
) -> list[Request]:
    """A deterministic multi-tenant request script.

    Each entry draws a tenant (optionally weighted), an instance, a uniform
    address in ``[1, working_set]`` and an operation; ``write_fraction`` of
    the requests are writes carrying a small deterministic payload, and
    ``collect_fraction`` of the reads ask for per-request results.  The
    same seed always produces the same script, so a script can serve as a
    pinned reproducibility artifact the way seeded traces already do.
    """
    if not tenants:
        raise ConfigurationError("synthetic_script needs at least one tenant")
    if not instances:
        raise ConfigurationError("synthetic_script needs at least one instance")
    if working_set < 1:
        raise ConfigurationError("working_set must be >= 1")
    rng = random.Random(seed)
    weights = [float(tenant_weights.get(t, 1.0)) if tenant_weights else 1.0 for t in tenants]
    total = sum(weights)
    if total <= 0:
        raise ConfigurationError("tenant_weights must sum to a positive value")
    script: list[Request] = []
    for index in range(length):
        draw = rng.random() * total
        cursor = 0.0
        tenant = tenants[-1]
        for name, weight in zip(tenants, weights):
            cursor += weight
            if draw < cursor:
                tenant = name
                break
        instance = instances[rng.randrange(len(instances))]
        address = rng.randrange(1, working_set + 1)
        if rng.random() < write_fraction:
            script.append(Request(tenant, instance, address, Operation.WRITE, f"payload-{index}"))
        else:
            collect = rng.random() < collect_fraction
            script.append(Request(tenant, instance, address, Operation.READ, None, collect))
    return script
