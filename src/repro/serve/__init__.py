"""ORAM-as-a-service: the async multi-tenant serving layer.

Turns the simulation engine into a serving system: logical clients submit
reads/writes against *named* ORAM instances, a deterministic batch
scheduler coalesces pending requests into fused ``access_many``
micro-batches, and per-tenant accounting tracks request counts, latency
and fair-share (quota) throttling.  See :mod:`repro.serve.service` for
the determinism guarantee — replaying a recorded request script through
the async service is bit-identical to applying the same schedule
serially — and :mod:`repro.serve.loadgen` for the closed-loop load
generator behind the p50/p99 serving benchmark.
"""

from repro.serve.loadgen import (
    LoadGenConfig,
    LoadReport,
    generate_load,
    percentile,
    run_load,
)
from repro.serve.request import Request, ServeResult, synthetic_script
from repro.serve.scheduler import BatchScheduler, PendingRequest, execute_batch
from repro.serve.service import (
    OramService,
    ScriptOutcome,
    ServiceConfig,
    oram_fingerprint,
    run_script,
    serial_script,
)
from repro.serve.stats import ServiceStats, TenantStats

__all__ = [
    "BatchScheduler",
    "LoadGenConfig",
    "LoadReport",
    "OramService",
    "PendingRequest",
    "Request",
    "ScriptOutcome",
    "ServeResult",
    "ServiceConfig",
    "ServiceStats",
    "TenantStats",
    "execute_batch",
    "generate_load",
    "oram_fingerprint",
    "percentile",
    "run_load",
    "run_script",
    "serial_script",
    "synthetic_script",
]
