"""Deterministic fair-share admission and micro-batch execution.

The scheduler is the determinism anchor of the serving layer, so it is a
plain synchronous object with no notion of time or concurrency: admission
is a pure function of the *arrival order* of the pending requests (their
submission sequence numbers) and the configured per-tenant quotas.  The
asyncio service drives it from an event loop; the synchronous replay
reference drives the very same object from a plain loop — which is what
makes "async replay == serial application" a testable bit-identity rather
than a hope.

Admission policy (one *round* admits one micro-batch per instance):

* Requests are admitted in global arrival order — the pending request with
  the smallest sequence number goes first — so with unbounded quotas the
  schedule degenerates to exactly the order the requests were submitted
  in, and replaying a script reproduces a plain serial ``access`` loop.
* A per-tenant **quota** bounds how many of one tenant's requests a single
  round may admit.  A tenant at its quota is skipped for the rest of the
  round (its queue order is preserved; the deferred requests lead the next
  round), while other tenants' later arrivals are still admitted — that is
  the fair-share guarantee: a flooding tenant cannot starve the batch.
* ``max_batch`` bounds the whole micro-batch.

Execution coalesces maximal runs of consecutive fusable reads (op READ,
``collect=False``) into one :meth:`access_many` call — the trace-at-once
engine the protocol layer already pins bit-identical to looped ``access``
— and executes writes and ``collect`` reads individually so their results
carry per-request payloads.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.types import Operation
from repro.errors import ConfigurationError, ReproError
from repro.serve.request import Request, ServeResult


class PendingRequest:
    """A submitted request waiting in the scheduler.

    ``seq`` is the global arrival sequence number (the admission order
    key); ``future`` is the asyncio future to resolve (None in synchronous
    replays); ``submitted_at`` is the wall-clock submit time for latency
    accounting (None when latency is not being measured).
    """

    __slots__ = ("request", "seq", "future", "submitted_at")

    def __init__(
        self,
        request: Request,
        seq: int,
        future: Any = None,
        submitted_at: float | None = None,
    ) -> None:
        self.request = request
        self.seq = seq
        self.future = future
        self.submitted_at = submitted_at


class BatchScheduler:
    """Deterministic admission over per-(instance, tenant) FIFO queues."""

    def __init__(
        self,
        max_batch: int = 256,
        default_quota: int = 0,
        quotas: dict[str, int] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if default_quota < 0:
            raise ConfigurationError("default_quota must be >= 0 (0 = unbounded)")
        self._max_batch = max_batch
        self._default_quota = default_quota
        self._quotas: dict[str, int] = dict(quotas or {})
        for tenant, quota in self._quotas.items():
            if quota < 0:
                raise ConfigurationError(
                    f"quota for tenant {tenant!r} must be >= 0 (0 = unbounded)"
                )
        # instance -> tenant -> FIFO of PendingRequest (arrival order).
        self._queues: dict[str, dict[str, deque[PendingRequest]]] = {}
        self._pending = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def max_batch(self) -> int:
        return self._max_batch

    def quota(self, tenant: str) -> int:
        """The per-round admission cap for ``tenant`` (0 = unbounded)."""
        return self._quotas.get(tenant, self._default_quota)

    def set_quota(self, tenant: str, quota: int) -> None:
        if quota < 0:
            raise ConfigurationError("quota must be >= 0 (0 = unbounded)")
        self._quotas[tenant] = quota

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests enqueued but not yet admitted."""
        return self._pending

    def enqueue(self, pending: PendingRequest) -> None:
        instance = self._queues.setdefault(pending.request.instance, {})
        queue = instance.get(pending.request.tenant)
        if queue is None:
            queue = instance[pending.request.tenant] = deque()
        queue.append(pending)
        self._pending += 1

    def pending_instances(self) -> list[str]:
        """Instances with pending work, in deterministic (name) order."""
        return sorted(name for name, tenants in self._queues.items() if any(tenants.values()))

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, instance: str) -> tuple[list[PendingRequest], list[str]]:
        """One admission round for ``instance``.

        Returns the admitted micro-batch (global arrival order, per-tenant
        quota applied) and the sorted names of tenants the quota capped
        this round (pending work deferred, not dropped).
        """
        tenants = self._queues.get(instance)
        if not tenants:
            return [], []
        taken: dict[str, int] = {}
        batch: list[PendingRequest] = []
        max_batch = self._max_batch
        while len(batch) < max_batch:
            best_queue = None
            best_seq = None
            for tenant, queue in tenants.items():
                if not queue:
                    continue
                cap = self.quota(tenant)
                if cap and taken.get(tenant, 0) >= cap:
                    continue
                seq = queue[0].seq
                if best_seq is None or seq < best_seq:
                    best_seq = seq
                    best_queue = queue
            if best_queue is None:
                break
            pending = best_queue.popleft()
            taken[pending.request.tenant] = taken.get(pending.request.tenant, 0) + 1
            batch.append(pending)
        self._pending -= len(batch)
        capped = sorted(
            tenant
            for tenant, queue in tenants.items()
            if queue and (cap := self.quota(tenant)) and taken.get(tenant, 0) >= cap
        )
        return batch, capped


def execute_batch(
    oram: Any,
    batch: list[PendingRequest],
    fuse: bool = True,
    fuse_min_run: int = 2,
) -> tuple[list[tuple[PendingRequest, Any, bool]], int]:
    """Execute one admitted micro-batch against one ORAM.

    Maximal runs of at least ``fuse_min_run`` consecutive fusable reads
    (op READ, ``collect=False``) go through one fused ``access_many``
    call; everything else executes as an individual ``access``.  Both
    paths are bit-identical state-wise (the ``access_many`` differential
    suite pins that), so fusing is purely a throughput lever.

    Returns ``(outcomes, fused_runs)`` where each outcome is
    ``(pending, ServeResult-or-ReproError, was_fused)`` in batch order.
    A :class:`~repro.errors.ReproError` from the engine (e.g. an
    out-of-range address) becomes that request's outcome — for a fused
    run, of every request in the run, since the fused loop validates the
    whole trace before executing any of it.
    """
    outcomes: list[tuple[PendingRequest, Any, bool]] = []
    fused_runs = 0
    index = 0
    count = len(batch)
    while index < count:
        pending = batch[index]
        request = pending.request
        if fuse and request.op is Operation.READ and not request.collect:
            end = index + 1
            while (
                end < count
                and batch[end].request.op is Operation.READ
                and not batch[end].request.collect
            ):
                end += 1
            if end - index >= fuse_min_run:
                run = batch[index:end]
                try:
                    oram.access_many([p.request.address for p in run])
                except ReproError as exc:
                    for p in run:
                        outcomes.append((p, exc, True))
                else:
                    fused_runs += 1
                    for p in run:
                        outcomes.append((p, ServeResult(p.request.address), True))
                index = end
                continue
        try:
            result = oram.access(request.address, request.op, request.data)
        except ReproError as exc:
            outcomes.append((pending, exc, False))
        else:
            outcomes.append(
                (
                    pending,
                    ServeResult(request.address, result.found, result.data),
                    False,
                )
            )
        index += 1
    return outcomes, fused_runs
