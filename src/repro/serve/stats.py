"""Per-tenant and service-level accounting for the serving layer.

The engine's own counters stay where they always were — every ORAM keeps
an :class:`~repro.core.stats.AccessStats` reachable through the uniform
``stats`` property, and the service exposes those unchanged per instance.
This module adds the *request-plane* view on top: how many requests each
tenant submitted, how they were executed (individually or inside a fused
``access_many`` run), how often the fair-share quota throttled a tenant,
and the user-facing latency samples the load generator summarises into
p50/p99.

Determinism note: every integer counter here is a pure function of the
admission schedule, so replaying a recorded script yields bit-identical
counter fingerprints (:meth:`TenantStats.fingerprint`) in the async
service and the synchronous reference.  Latency fields are wall-clock
measurements and deliberately excluded from fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class TenantStats:
    """Request-plane counters for one tenant.

    Attributes
    ----------
    requests / reads / writes:
        Completed requests, split by operation.
    fused:
        Requests served inside a fused ``access_many`` micro-batch run
        (the remainder executed as individual ``access`` calls).
    found:
        Hits among the *individually* executed requests (fused runs do not
        materialise per-request results; their hits are visible in the
        instance's own ``stats.blocks_read`` counters).
    batches:
        Admission batches this tenant had at least one request in.
    throttled:
        Admission rounds in which the fair-share quota deferred at least
        one pending request of this tenant to a later round.
    latency_total / latency_samples:
        Wall-clock submit-to-completion seconds (live serving only; the
        synchronous reference records none).  Excluded from fingerprints.
    """

    requests: int = 0
    reads: int = 0
    writes: int = 0
    fused: int = 0
    found: int = 0
    batches: int = 0
    throttled: int = 0
    latency_total: float = 0.0
    latency_samples: list = field(default_factory=list)

    def record_latency(self, seconds: float) -> None:
        self.latency_total += seconds
        self.latency_samples.append(seconds)

    @property
    def mean_latency(self) -> float:
        if not self.latency_samples:
            return 0.0
        return self.latency_total / len(self.latency_samples)

    def fingerprint(self) -> tuple:
        """Deterministic tuple of the schedule-derived counters.

        Covers exactly the fields that are invariant to the *execution
        strategy*: latency fields are wall-clock measurements, and
        ``fused``/``found`` depend on whether reads were coalesced (the
        serial reference executes everything individually) — all three are
        excluded.  What remains must replay bit-identically from a
        recorded script whether the batches were fused or not.
        """
        return (
            self.requests,
            self.reads,
            self.writes,
            self.batches,
            self.throttled,
        )


class ServiceStats:
    """Service-wide accounting: per-tenant stats plus scheduler counters."""

    def __init__(self) -> None:
        self.tenants: dict[str, TenantStats] = {}
        #: Scheduling rounds executed (one round admits at most one batch
        #: per instance).
        self.rounds: int = 0
        #: Micro-batches executed (one per instance with pending work per
        #: round).
        self.batches: int = 0
        #: Fused ``access_many`` runs across all batches.
        self.fused_runs: int = 0

    def tenant(self, name: str) -> TenantStats:
        """The (created-on-first-use) stats of one tenant."""
        stats = self.tenants.get(name)
        if stats is None:
            stats = self.tenants[name] = TenantStats()
        return stats

    @property
    def total_requests(self) -> int:
        return sum(stats.requests for stats in self.tenants.values())

    def latencies(self) -> list[float]:
        """All recorded latency samples, unsorted."""
        samples: list[float] = []
        for stats in self.tenants.values():
            samples.extend(stats.latency_samples)
        return samples

    def fingerprint(self) -> tuple:
        """Deterministic tuple over scheduler counters and every tenant.

        ``fused_runs`` is an execution-strategy detail (zero in the serial
        reference) and excluded, like :meth:`TenantStats.fingerprint`'s
        fused/found fields.
        """
        return (
            self.rounds,
            self.batches,
            tuple(
                (name, self.tenants[name].fingerprint())
                for name in sorted(self.tenants)
            ),
        )
