"""Seeded closed-loop load generator with user-facing latency metrics.

Every client is a coroutine in a **closed loop**: it submits one request,
awaits the result, then submits the next — the standard way to measure a
batch-coalescing server, because an open-loop generator with a fixed
arrival rate either starves the batcher or overwhelms it, and its latency
numbers measure the queue, not the system.  With ``K`` concurrent clients
the scheduler naturally forms micro-batches of up to ``K`` requests per
round, so aggregate throughput directly exercises the fused
``access_many`` path while each request's submit-to-completion latency is
measured at the service boundary (what a user would see).

Request *content* (addresses, ops) is derived per client from the load
seed via :func:`~repro.runner.spec.derive_seed`, so two runs against
identically-seeded instances replay identical request streams; wall-clock
metrics of course vary with the machine.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.backends import OramSpec
from repro.core.types import Operation
from repro.errors import ConfigurationError
from repro.runner.spec import derive_seed
from repro.serve.service import OramService, ServiceConfig, _build_service


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one load-generation run.

    ``tenants`` tenants run ``clients_per_tenant`` concurrent closed-loop
    clients each; every client issues ``requests_per_client`` requests
    against ``instance`` with uniform addresses in ``[1, working_set]``
    and ``write_fraction`` writes.
    """

    tenants: int = 4
    clients_per_tenant: int = 2
    requests_per_client: int = 100
    working_set: int = 1024
    write_fraction: float = 0.0
    instance: str = "main"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.clients_per_tenant < 1:
            raise ConfigurationError("need at least one tenant and one client")
        if self.requests_per_client < 1:
            raise ConfigurationError("requests_per_client must be >= 1")
        if self.working_set < 1:
            raise ConfigurationError("working_set must be >= 1")

    @property
    def total_requests(self) -> int:
        return self.tenants * self.clients_per_tenant * self.requests_per_client

    def tenant_names(self) -> list[str]:
        return [f"tenant-{index:02d}" for index in range(self.tenants)]


@dataclass(slots=True)
class LoadReport:
    """Aggregate user-facing metrics of one load-generation run."""

    requests: int
    duration: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    rounds: int
    batches: int
    fused_runs: int
    per_tenant: dict[str, dict[str, float]]

    def as_record(self) -> dict:
        """JSON-ready summary (the benchmark's ``serving`` section rows)."""
        return {
            "requests": self.requests,
            "duration_s": round(self.duration, 4),
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
            "max_ms": round(self.max_ms, 4),
            "rounds": self.rounds,
            "batches": self.batches,
            "fused_runs": self.fused_runs,
        }


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (0 when empty).

    The classic definition: the smallest sample such that at least
    ``fraction`` of the samples are <= it — rank ``ceil(fraction * n)``,
    1-based — so p50 of 1..100 is exactly 50 and p99 is 99.
    """
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("percentile fraction must be in [0, 1]")
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


async def _client(
    service: OramService,
    tenant: str,
    client_index: int,
    load: LoadGenConfig,
    latencies: list[float],
) -> None:
    rng = random.Random(derive_seed(load.seed, (tenant, "client", client_index)))
    instance = load.instance
    for _ in range(load.requests_per_client):
        address = rng.randrange(1, load.working_set + 1)
        if load.write_fraction and rng.random() < load.write_fraction:
            result = await service.submit(tenant, instance, address, Operation.WRITE, address)
        else:
            result = await service.submit(tenant, instance, address)
        latencies.append(result.latency)


async def generate_load(service: OramService, load: LoadGenConfig) -> LoadReport:
    """Run one closed-loop load against an already-started service."""
    latencies: list[float] = []
    clients = [
        _client(service, tenant, client_index, load, latencies)
        for tenant in load.tenant_names()
        for client_index in range(load.clients_per_tenant)
    ]
    start = time.perf_counter()
    await asyncio.gather(*clients)
    await service.drain()
    duration = time.perf_counter() - start
    stats = service.stats
    per_tenant = {
        name: {
            "requests": float(tenant.requests),
            "mean_ms": tenant.mean_latency * 1e3,
            "p50_ms": percentile(tenant.latency_samples, 0.50) * 1e3,
            "p99_ms": percentile(tenant.latency_samples, 0.99) * 1e3,
            "throttled": float(tenant.throttled),
        }
        for name, tenant in sorted(stats.tenants.items())
    }
    return LoadReport(
        requests=len(latencies),
        duration=duration,
        throughput_rps=len(latencies) / duration if duration > 0 else 0.0,
        p50_ms=percentile(latencies, 0.50) * 1e3,
        p99_ms=percentile(latencies, 0.99) * 1e3,
        mean_ms=(sum(latencies) / len(latencies) * 1e3) if latencies else 0.0,
        max_ms=max(latencies, default=0.0) * 1e3,
        rounds=stats.rounds,
        batches=stats.batches,
        fused_runs=stats.fused_runs,
        per_tenant=per_tenant,
    )


def run_load(
    instances: Mapping[str, tuple[OramSpec, Any, int]],
    load: LoadGenConfig | None = None,
    config: ServiceConfig | None = None,
    quotas: Mapping[str, int] | None = None,
) -> LoadReport:
    """Build a service, run one closed-loop load, return the report.

    ``instances`` maps names to ``(spec, oram_config, seed)`` triples as in
    :func:`~repro.serve.service.run_script`; the load generator's target
    instance (``load.instance``) must be among them.
    """
    load = load if load is not None else LoadGenConfig()
    if load.instance not in instances:
        raise ConfigurationError(
            f"load targets unknown instance {load.instance!r}; "
            f"defined: {tuple(sorted(instances))}"
        )

    async def _go() -> LoadReport:
        service = _build_service(instances, config, quotas)
        async with service:
            return await generate_load(service, load)

    return asyncio.run(_go())
