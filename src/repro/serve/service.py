"""The asyncio ORAM service: named instances, deterministic batching, QoS.

:class:`OramService` turns the simulation engine into a serving system:
many logical clients submit reads/writes against *named* ORAM instances
(each built from an :class:`~repro.backends.OramSpec` through the backend
registry), a background scheduler task coalesces everything pending into
fused ``access_many`` micro-batches per instance, and per-tenant
accounting tracks request counts, latency and fair-share throttling.

Determinism guarantee
---------------------
All scheduling state lives in the synchronous
:class:`~repro.serve.scheduler.BatchScheduler`, whose admission order is a
pure function of request *arrival order* and the quota configuration —
never of wall-clock time or event-loop interleaving.  Replaying a recorded
request script (:func:`run_script`) therefore leaves every ORAM — tree,
stash, position map, RNG stream, statistics — bit-identical to
:func:`serial_script`, the plain synchronous application of the same
admission schedule via individual ``access`` calls.  With unbounded
quotas the admission schedule *is* the script order, so the replay is
bit-identical to a bare ``for r in script: oram.access(...)`` loop.  The
suite pins both identities (``tests/test_serve.py``).

The micro-batches themselves lean on the trace-at-once engine:
``access_many`` is already pinned bit-identical to looped ``access`` on
every protocol and storage stack, so fusing is purely a throughput lever.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.backends import Backend, OramSpec, build_oram
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.path_oram import PathORAM
from repro.core.types import Operation
from repro.errors import ConfigurationError
from repro.serve.request import Request, ServeResult
from repro.serve.scheduler import BatchScheduler, PendingRequest, execute_batch
from repro.serve.stats import ServiceStats, TenantStats


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`OramService`.

    Parameters
    ----------
    max_batch:
        Upper bound on one admitted micro-batch (per instance per round).
    default_quota:
        Fair-share cap: how many requests of one tenant a single round may
        admit (0 = unbounded).  Per-tenant overrides via
        :meth:`OramService.set_tenant_quota`.
    fuse_reads:
        Coalesce runs of consecutive fusable reads into one
        ``access_many`` call.  State-identical either way; off it serves
        every request individually (useful as a reference).
    fuse_min_run:
        Minimum run length worth a fused call (shorter runs execute as
        individual accesses).
    """

    max_batch: int = 256
    default_quota: int = 0
    fuse_reads: bool = True
    fuse_min_run: int = 2

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.default_quota < 0:
            raise ConfigurationError("default_quota must be >= 0 (0 = unbounded)")
        if self.fuse_min_run < 1:
            raise ConfigurationError("fuse_min_run must be >= 1")


def _path_oram_fingerprint(oram: PathORAM) -> tuple:
    """Full observable state of one flat ORAM (tree, stash, map, stats)."""
    storage = oram.storage
    tree = tuple(
        tuple(
            (block.address, block.leaf, repr(block.data))
            for block in storage.read_bucket(index)
        )
        for index in range(storage.num_buckets)
    )
    stash = tuple(
        sorted(
            (block.address, block.leaf, repr(block.data))
            for block in oram._stash.blocks()  # noqa: SLF001 - state pin
        )
    )
    return (
        tree,
        stash,
        tuple(oram.position_map.leaves),
        oram.stats.fingerprint(),
    )


def oram_fingerprint(oram: Backend) -> tuple:
    """Deterministic full-state fingerprint of one ORAM (either protocol).

    Covers tree contents, stash, position map(s), statistics and the RNG
    stream — the serving layer's bit-identity pin.  Stash contents are
    order-normalised, matching the ``access_many`` differential contract
    (internal stash order is not part of the observable state).
    """
    if isinstance(oram, HierarchicalPathORAM):
        return (
            tuple(_path_oram_fingerprint(sub) for sub in oram.orams),
            tuple(oram.onchip_position_map.leaves),
            oram.stats.fingerprint(),
            oram._rng.getstate(),  # noqa: SLF001 - state pin
        )
    return _path_oram_fingerprint(oram) + (oram._rng.getstate(),)  # noqa: SLF001


class OramService:
    """Async multi-tenant front end over named ORAM instances.

    Typical use::

        service = OramService(ServiceConfig(max_batch=128, default_quota=8))
        service.open_instance("main", OramSpec(), config, seed=7)

        async with service:
            result = await service.submit("tenant-a", "main", address=17)

    The service must be *started* (``async with`` or :meth:`start`) before
    requests are submitted; instances and quotas may be registered at any
    time.  Submission is cheap (one queue put); execution happens in the
    background scheduler task, which resolves each request's future with a
    :class:`~repro.serve.request.ServeResult` carrying its measured
    latency.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self._config = config if config is not None else ServiceConfig()
        self._instances: dict[str, Backend] = {}
        self._scheduler = BatchScheduler(
            max_batch=self._config.max_batch,
            default_quota=self._config.default_quota,
        )
        self._stats = ServiceStats()
        self._seq = itertools.count()
        self._queue: asyncio.Queue[PendingRequest] | None = None
        self._task: asyncio.Task | None = None
        self._idle: asyncio.Event | None = None
        self._outstanding = 0
        # Synchronous replays collect outcomes here instead of futures.
        self._sink: dict[int, Any] | None = None
        self._clock = time.perf_counter

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def open_instance(
        self,
        name: str,
        spec: OramSpec,
        config: Any,
        seed: int | None = None,
        rng: Any = None,
    ) -> Backend:
        """Build and register a named ORAM instance from a spec."""
        return self.attach_instance(name, build_oram(spec, config, seed=seed, rng=rng))

    def attach_instance(self, name: str, oram: Backend) -> Backend:
        """Register an already-built ORAM under ``name``."""
        if name in self._instances:
            raise ConfigurationError(f"instance {name!r} is already registered")
        self._instances[name] = oram
        return oram

    def instance(self, name: str) -> Backend:
        """The registered ORAM behind ``name``."""
        try:
            return self._instances[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown instance {name!r}; registered: {self.instances}"
            ) from None

    @property
    def instances(self) -> tuple[str, ...]:
        """Registered instance names, sorted."""
        return tuple(sorted(self._instances))

    def set_tenant_quota(self, tenant: str, quota: int) -> None:
        """Override the fair-share per-round quota of one tenant."""
        self._scheduler.set_quota(tenant, quota)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """Request-plane accounting (per-tenant and scheduler counters)."""
        return self._stats

    def tenant_stats(self, tenant: str) -> TenantStats:
        """One tenant's request-plane counters (created on first use)."""
        return self._stats.tenant(tenant)

    def instance_stats(self, name: str):
        """The named instance's engine-level ``AccessStats`` — the same
        uniform ``stats`` object every ORAM exposes."""
        return self.instance(name).stats

    def fingerprint(self) -> tuple:
        """Deterministic full-state fingerprint of the whole service.

        Covers every instance's complete ORAM state (including RNG
        streams) plus the schedule-derived accounting counters; the
        bit-identity pin for script replays.
        """
        return (
            tuple(
                (name, oram_fingerprint(self._instances[name]))
                for name in sorted(self._instances)
            ),
            self._stats.fingerprint(),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the background scheduler task (idempotent)."""
        if self._task is not None:
            return
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def drain(self) -> None:
        """Wait until every submitted request has completed."""
        if self._idle is not None:
            await self._idle.wait()

    async def aclose(self) -> None:
        """Drain outstanding work and stop the scheduler task."""
        if self._task is None:
            return
        await self.drain()
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        self._queue = None
        self._idle = None

    async def __aenter__(self) -> "OramService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(self, request: Request) -> asyncio.Future:
        """Enqueue a request; returns the future its result will resolve."""
        if self._queue is None or self._idle is None:
            raise ConfigurationError(
                "service is not started; use 'async with service:' or await "
                "service.start() before submitting"
            )
        if request.instance not in self._instances:
            raise ConfigurationError(
                f"unknown instance {request.instance!r}; "
                f"registered: {self.instances}"
            )
        future = asyncio.get_running_loop().create_future()
        pending = PendingRequest(request, next(self._seq), future, self._clock())
        self._outstanding += 1
        self._idle.clear()
        self._queue.put_nowait(pending)
        return future

    async def submit(
        self,
        tenant: str,
        instance: str,
        address: int,
        op: Operation = Operation.READ,
        data: Any = None,
        collect: bool = False,
    ) -> ServeResult:
        """Submit one request and wait for its result."""
        return await self.submit_nowait(
            Request(tenant, instance, address, op, data, collect)
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        queue = self._queue
        scheduler = self._scheduler
        assert queue is not None and self._idle is not None
        while True:
            scheduler.enqueue(await queue.get())
            while True:
                # Everything that arrived while the last round executed
                # joins this round's backlog (arrival order preserved).
                while not queue.empty():
                    scheduler.enqueue(queue.get_nowait())
                if not scheduler.pending:
                    break
                self._run_round()
                # Yield once so resolved clients run — a closed-loop
                # client's next submit lands before the next round forms.
                await asyncio.sleep(0)
            if self._outstanding == 0:
                self._idle.set()

    def _run_round(self) -> None:
        """One admission round: at most one micro-batch per instance."""
        scheduler = self._scheduler
        self._stats.rounds += 1
        for name in scheduler.pending_instances():
            batch, capped = scheduler.admit(name)
            if batch:
                self._execute(name, batch, capped)

    def _execute(self, name: str, batch: list[PendingRequest], capped: list[str]) -> None:
        config = self._config
        outcomes, fused_runs = execute_batch(
            self._instances[name],
            batch,
            fuse=config.fuse_reads,
            fuse_min_run=config.fuse_min_run,
        )
        stats = self._stats
        stats.batches += 1
        stats.fused_runs += fused_runs
        now = self._clock()
        tenants_in_batch: set[str] = set()
        for pending, outcome, fused in outcomes:
            request = pending.request
            tenant = stats.tenant(request.tenant)
            tenants_in_batch.add(request.tenant)
            tenant.requests += 1
            if request.op is Operation.WRITE:
                tenant.writes += 1
            else:
                tenant.reads += 1
            if fused:
                tenant.fused += 1
            self._outstanding -= 1
            if isinstance(outcome, ServeResult):
                if outcome.found:
                    tenant.found += 1
                if pending.submitted_at is not None:
                    outcome.latency = now - pending.submitted_at
                    tenant.record_latency(outcome.latency)
                if pending.future is not None:
                    pending.future.set_result(outcome)
            elif pending.future is not None:
                pending.future.set_exception(outcome)
            if self._sink is not None:
                self._sink[pending.seq] = outcome
        for name_ in tenants_in_batch:
            stats.tenant(name_).batches += 1
        for name_ in capped:
            stats.tenant(name_).throttled += 1


# ----------------------------------------------------------------------
# Recorded-script replay
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ScriptOutcome:
    """What a script replay produced: per-request results (script order),
    the service's deterministic full-state fingerprint, and the
    request-plane accounting."""

    results: list[Any]
    fingerprint: tuple
    stats: ServiceStats


def _build_service(
    instances: Mapping[str, tuple[OramSpec, Any, int]],
    config: ServiceConfig | None,
    quotas: Mapping[str, int] | None,
) -> OramService:
    service = OramService(config)
    for name, (spec, oram_config, seed) in instances.items():
        service.open_instance(name, spec, oram_config, seed=seed)
    for tenant, quota in (quotas or {}).items():
        service.set_tenant_quota(tenant, quota)
    return service


def run_script(
    script: list[Request],
    instances: Mapping[str, tuple[OramSpec, Any, int]],
    config: ServiceConfig | None = None,
    quotas: Mapping[str, int] | None = None,
) -> ScriptOutcome:
    """Replay a recorded request script through the async service.

    ``instances`` maps each instance name to ``(spec, oram_config, seed)``
    — the picklable triple the backend registry builds from, so a script
    plus this mapping is a complete, reproducible serving workload.  All
    requests are submitted up front (a recorded script *is* its arrival
    order) and the scheduler drains them in deterministic rounds; the
    outcome's fingerprint is bit-identical to :func:`serial_script` on the
    same arguments.
    """

    async def _replay() -> ScriptOutcome:
        service = _build_service(instances, config, quotas)
        async with service:
            futures = [service.submit_nowait(request) for request in script]
            await service.drain()
            results = [future.exception() or future.result() for future in futures]
        return ScriptOutcome(results, service.fingerprint(), service.stats)

    return asyncio.run(_replay())


def serial_script(
    script: list[Request],
    instances: Mapping[str, tuple[OramSpec, Any, int]],
    config: ServiceConfig | None = None,
    quotas: Mapping[str, int] | None = None,
) -> ScriptOutcome:
    """Apply a recorded script serially — the determinism reference.

    Drives the very same admission schedule as :func:`run_script` (same
    scheduler object, same quota semantics) but synchronously, with no
    event loop and every request executed as an individual ``access``
    call (read fusing forced off).  With unbounded quotas the schedule is
    exactly the script order, i.e. the plain serial loop
    ``for r in script: oram.access(r.address, r.op, r.data)``.
    """
    effective = replace(config if config is not None else ServiceConfig(), fuse_reads=False)
    service = _build_service(instances, effective, quotas)
    sink: dict[int, Any] = {}
    service._sink = sink
    scheduler = service._scheduler
    for request in script:
        if request.instance not in service._instances:
            raise ConfigurationError(
                f"unknown instance {request.instance!r}; "
                f"registered: {service.instances}"
            )
        scheduler.enqueue(PendingRequest(request, next(service._seq)))
        service._outstanding += 1
    while scheduler.pending:
        service._run_round()
    results = [sink[index] for index in range(len(script))]
    return ScriptOutcome(results, service.fingerprint(), service.stats)
