"""Deterministic fault injection for the storage and runner layers.

Two kinds of fault live here:

* **Storage faults** — :class:`FaultInjector` wraps an
  :class:`~repro.core.tree.EncryptedTreeStorage` and plays the malicious /
  unreliable memory device of the paper's Section 5 threat model: it flips
  ciphertext bits, replays stale bucket contents and loses write-backs, on
  a schedule fixed entirely by a seed.  Plugged in as the ``inner`` storage
  of :class:`~repro.integrity.storage.IntegrityVerifiedStorage`, every
  injected fault must surface as an
  :class:`~repro.errors.IntegrityError` on the next verified path read —
  the fault-injection tests prove the integrity stack has no blind spots.

* **Process faults** — :func:`chaos_kill_point` hard-kills the current
  process (``os._exit``) exactly once per marker file, which lets the
  runner tests and the chaos-smoke CI job kill pool workers or whole runs
  at chosen points and assert that retry and checkpoint/resume recover
  bit-identically.

* **Commit-protocol faults** — :class:`CrashInjector` hooks the durable
  memory-mapped storage's commit protocol
  (:mod:`repro.core.memmap_tree`) and simulates a crash at one named
  protocol point: everything the protocol has *fsynced* survives,
  everything still in flight is seeded-randomly kept, lost, or torn at a
  page/byte granularity, and :class:`SimulatedCrash` is raised in place
  of ``os._exit`` so a test can reopen the file in-process and assert
  recovery-or-typed-error.

Determinism: the injector draws every victim choice from its own
``random.Random`` and schedules faults by *operation index* (counted path
reads / path write-backs), so a given ``(seed, schedule)`` corrupts the
same bucket at the same access in every run.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from repro.core.tree import EncryptedTreeStorage, TreeStorage

__all__ = [
    "FAULT_KINDS",
    "InjectedFault",
    "FaultInjector",
    "SimulatedCrash",
    "CrashInjector",
    "chaos_kill_point",
]

#: Storage fault kinds the injector knows how to produce.
FAULT_KINDS = ("bit_flip", "stale_replay", "drop_write")


@dataclass(frozen=True)
class InjectedFault:
    """Log record for one fault the injector actually applied.

    ``op`` is the read-operation index at which the corruption became
    visible to the verifier (for ``drop_write`` that is the read *after*
    the lost write-back, which is when a real lost write would be
    observed).
    """

    op: int
    kind: str
    bucket: int


class FaultInjector(TreeStorage):
    """A seeded, fault-injecting proxy around an encrypted tree storage.

    Faults are scheduled by operation index:

    * ``read_faults`` maps *verified path-read* indices to ``"bit_flip"``
      or ``"stale_replay"``; the corruption is applied to a bucket on the
      very path being read, immediately before the bytes are returned, so
      the wrapping integrity layer must detect it in that same read.
    * ``write_faults`` is a set of *path write-back* indices whose root
      bucket write is lost: the write completes (the authenticator hashes
      the new contents), then the pre-write ciphertext is silently put
      back at the next path read — the moment a real dropped DRAM write
      would surface.

    The read-back the integrity layer performs inside ``write_path`` (to
    refresh the authentication tree) is recognised and never counted or
    corrupted — the injector models a device that corrupts *stored* data,
    not the verifier's own view of what it just wrote.
    """

    def __init__(
        self,
        storage: EncryptedTreeStorage,
        *,
        read_faults: dict[int, str] | None = None,
        write_faults: set[int] | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(storage.config)
        for kind in (read_faults or {}).values():
            if kind not in ("bit_flip", "stale_replay"):
                raise ValueError(f"unknown read fault kind: {kind!r}")
        self._storage = storage
        self._read_faults = dict(read_faults or {})
        self._write_faults = set(write_faults or ())
        self._rng = random.Random(seed)
        #: Operation counters (verified path reads / path write-backs).
        self.read_ops = 0
        self.write_ops = 0
        #: Faults actually applied, in application order.
        self.injected: list[InjectedFault] = []
        # First-ever ciphertext seen per bucket before an overwrite — the
        # stale snapshot a replay attack reinstates.
        self._stale: dict[int, bytes | None] = {}
        # Leaf of a write-back whose follow-up read-back (auth refresh)
        # must pass through untouched.
        self._pending_readback: int | None = None
        # (bucket, old ciphertext) reverted at the next path read to model
        # a lost write becoming visible.
        self._pending_revert: tuple[int, bytes | None] | None = None

    @classmethod
    def seeded(
        cls,
        storage: EncryptedTreeStorage,
        seed: int,
        *,
        num_faults: int,
        horizon: int,
        kinds: tuple[str, ...] = FAULT_KINDS,
    ) -> "FaultInjector":
        """Build an injector with ``num_faults`` faults drawn from ``kinds``
        at operation indices in ``[1, horizon)``, fully determined by
        ``seed``."""
        rng = random.Random(seed)
        read_faults: dict[int, str] = {}
        write_faults: set[int] = set()
        # Start at 1 so the tree has at least one written path to corrupt.
        ops = rng.sample(range(1, max(horizon, num_faults + 1)), num_faults)
        for op in ops:
            kind = rng.choice(kinds)
            if kind == "drop_write":
                write_faults.add(op)
            else:
                read_faults[op] = kind
        return cls(storage, read_faults=read_faults, write_faults=write_faults, seed=seed)

    @property
    def storage(self) -> EncryptedTreeStorage:
        """The wrapped (real) encrypted storage."""
        return self._storage

    @property
    def pending(self) -> int:
        """Scheduled faults that have not yet surfaced to the verifier."""
        reverts = 1 if self._pending_revert is not None else 0
        return len(self._read_faults) + len(self._write_faults) + reverts

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def _flip_bit(self, bucket: int) -> None:
        buckets = self._storage._buckets
        corrupted = bytearray(buckets[bucket])
        bit = self._rng.randrange(len(corrupted) * 8)
        corrupted[bit >> 3] ^= 1 << (bit & 7)
        buckets[bucket] = bytes(corrupted)

    def _inject_on_read(self, op: int, kind: str, path: tuple[int, ...]) -> bool:
        buckets = self._storage._buckets
        if kind == "bit_flip":
            victims = [index for index in path if buckets[index]]
            if not victims:
                return False
            victim = self._rng.choice(victims)
            self._flip_bit(victim)
        else:  # stale_replay
            victims = [
                index
                for index in path
                if index in self._stale and self._stale[index] != buckets[index]
            ]
            if not victims:
                return False
            victim = self._rng.choice(victims)
            buckets[victim] = self._stale[victim]
        self.injected.append(InjectedFault(op=op, kind=kind, bucket=victim))
        return True

    # ------------------------------------------------------------------
    # TreeStorage interface (device-facing)
    # ------------------------------------------------------------------
    def raw_path(self, leaf: int) -> list[bytes]:
        if self._pending_readback == leaf:
            # The integrity layer re-reading the path it just wrote, to
            # refresh the authentication tree: not a device read.
            self._pending_readback = None
            return self._storage.raw_path(leaf)
        op = self.read_ops
        self.read_ops += 1
        path = self.path(leaf)
        if self._pending_revert is not None:
            bucket, old = self._pending_revert
            self._pending_revert = None
            self._storage._buckets[bucket] = old
            self.injected.append(InjectedFault(op=op, kind="drop_write", bucket=bucket))
        kind = self._read_faults.pop(op, None)
        if kind is not None and not self._inject_on_read(op, kind, path):
            # No eligible victim yet (cold tree): retry on the next read.
            self._read_faults[op + 1] = kind
        return self._storage.raw_path(leaf)

    def write_path(self, leaf: int, assignments) -> None:
        op = self.write_ops
        self.write_ops += 1
        path = self.path(leaf)
        buckets = self._storage._buckets
        for index in path:
            if index not in self._stale and buckets[index] is not None:
                self._stale[index] = buckets[index]
        drop = op in self._write_faults and self._pending_revert is None
        old_root = buckets[path[0]] if drop else None
        self._storage.write_path(leaf, assignments)
        if drop:
            self._write_faults.discard(op)
            # Lost write-back: remember the pre-write root ciphertext and
            # reinstate it when the device is next read.
            self._pending_revert = (path[0], old_root)
        self._pending_readback = leaf

    # Plain delegation below: bucket-level ops are used by invariant checks
    # and decoding only, never as the verified device read.
    def read_bucket(self, bucket_index: int):
        return self._storage.read_bucket(bucket_index)

    def write_bucket(self, bucket_index: int, blocks) -> None:
        self._storage.write_bucket(bucket_index, blocks)

    def raw_bucket(self, bucket_index: int) -> bytes | None:
        return self._storage.raw_bucket(bucket_index)

    @property
    def _buckets(self) -> list[bytes | None]:
        # Adversarial test hooks poke the raw ciphertext list directly.
        return self._storage._buckets


class SimulatedCrash(Exception):
    """Raised by :class:`CrashInjector` in place of actually dying.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a crash is not
    an error the protocol reports, it is the absence of the process.  After
    catching it the in-memory ORAM must be treated as gone (abandon the
    storage and reopen the file) — its Python-side state is mid-operation.
    """


class CrashInjector:
    """Simulate a crash at one named commit-protocol point, with scars.

    Installed on a :class:`~repro.core.memmap_tree.MemmapTreeStorage` via
    its crash hook; when ``crash_point`` fires (for the ``occurrence``-th
    time), the injector first *scars* the file the way a real crash at
    that instant could — then raises :class:`SimulatedCrash`:

    * every data page dirtied since the last commit whose content has not
      been fsynced is seeded-randomly kept (the kernel's write-back had
      already flushed it), reverted to its pre-image (the write never left
      the page cache) or **torn** at an arbitrary byte;
    * the journal's unsynced tail is truncated at a seeded byte offset —
      possibly mid-record, exactly the torn tail the recovery parser must
      stop at;
    * a header-slot write that has not reached its fsync is kept, reverted
      or torn the same way.

    Everything the protocol already fsynced is left untouched — that is
    the durability contract under test.  The same ``(crash_point, seed)``
    always produces the same scars.
    """

    def __init__(
        self,
        storage,
        crash_point: str,
        seed: int,
        *,
        occurrence: int = 1,
    ) -> None:
        from repro.core.memmap_tree import CRASH_POINTS

        if crash_point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {crash_point!r}; one of {CRASH_POINTS}")
        if occurrence < 1:
            raise ValueError("occurrence must be >= 1")
        self._storage = storage
        self._crash_point = crash_point
        self._rng = random.Random(seed)
        self._occurrence = occurrence
        self._seen = 0
        #: Whether the crash point was reached and the crash simulated.
        self.fired = False
        storage.set_crash_hook(self._hook)

    def _hook(self, tag: str) -> None:
        if self.fired or tag != self._crash_point:
            return
        self._seen += 1
        if self._seen < self._occurrence:
            return
        self.fired = True
        self._scar()
        raise SimulatedCrash(self._crash_point)

    def _scar(self) -> None:
        storage = self._storage
        rng = self._rng
        fd = storage._fd
        page_size = storage._page_size
        if not storage._data_synced:
            for page, pre_image in sorted(storage._epoch_pages.items()):
                fate = rng.randrange(3)
                if fate == 0:
                    continue  # the kernel's write-back already flushed it
                offset = page * page_size
                if fate == 1:
                    # The write never left the page cache.
                    os.pwrite(fd, pre_image, offset)
                else:
                    current = os.pread(fd, page_size, offset)
                    cut = rng.randrange(1, page_size)
                    os.pwrite(fd, current[:cut] + pre_image[cut:], offset)
        tail = storage._journal_len - storage._journal_synced_len
        if tail > 0:
            cut = storage._journal_synced_len + rng.randrange(tail + 1)
            journal_fd = os.open(storage._journal_path, os.O_RDWR)
            try:
                os.ftruncate(journal_fd, cut)
            finally:
                os.close(journal_fd)
        pending = storage._header_pending
        if pending is not None:
            slot_off, old_slot = pending
            fate = rng.randrange(3)
            if fate == 1:
                os.pwrite(fd, old_slot, slot_off)
            elif fate == 2:
                current = os.pread(fd, len(old_slot), slot_off)
                cut = rng.randrange(1, len(old_slot))
                os.pwrite(fd, current[:cut] + old_slot[cut:], slot_off)
        os.fsync(fd)


def chaos_kill_point(marker_dir: str, name: str = "kill") -> bool:
    """Hard-kill the current process exactly once per marker file.

    Atomically creates ``<marker_dir>/<name>.marker``; on the first call
    the marker is created and the process dies with ``os._exit(1)`` —
    no cleanup, no atexit, exactly like a SIGKILLed pool worker.  Every
    later call (same marker) returns ``False`` and does nothing, so a
    retried worker sails past the kill point.  Returns ``False`` if the
    marker already existed (the return annotation exists for callers and
    type checkers; the killing branch never returns).
    """
    marker = os.path.join(marker_dir, f"{name}.marker")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    os._exit(1)
