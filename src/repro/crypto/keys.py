"""Processor key material.

The paper picks a fresh random processor key ``K`` at every program start so
that one-time pads differ across runs (defending against replay of old
ciphertexts).  :class:`ProcessorKey` models that key; a seed can be supplied
for reproducible simulations.
"""

from __future__ import annotations

import random


class ProcessorKey:
    """A 128-bit secret key held inside the trusted processor.

    Parameters
    ----------
    seed:
        Optional integer seed.  When given, the key bytes are derived
        deterministically (useful for reproducible experiments); otherwise a
        fresh random key is drawn, mirroring the paper's per-run key.
    """

    KEY_BYTES = 16

    def __init__(self, seed: int | None = None) -> None:
        rng = random.Random(seed)
        self._key = bytes(rng.getrandbits(8) for _ in range(self.KEY_BYTES))
        self._seed = seed

    @property
    def key_bytes(self) -> bytes:
        """The raw 16-byte key."""
        return self._key

    @property
    def seed(self) -> int | None:
        """The seed used to derive the key, if any."""
        return self._seed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessorKey(seed={self._seed!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessorKey):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)
