"""Randomized bucket encryption schemes from Section 2.2 of the paper.

Two schemes are implemented, both turning the plaintext of a bucket (the
``Z`` per-block ``(leaf, address, data)`` triplets) into a randomized
ciphertext so that an observer cannot tell whether a bucket changed on a
path write-back:

* :class:`StrawmanBucketCipher` (Section 2.2.1, used by the baseline
  configuration of [Fletcher et al. 2012]): every block gets a fresh random
  128-bit key ``K'``, stored encrypted under the processor key ``K``, plus a
  one-time pad generated from ``K'``.  Bucket size
  ``M = Z * (128 + L + U + B)`` bits.
* :class:`CounterBucketCipher` (Section 2.2.2): a single 64-bit per-bucket
  counter, stored in the clear, seeds the pad
  ``PRF_K(BucketID || BucketCounter || i)``.  Bucket size
  ``M = Z * (L + U + B) + 64`` bits — the scheme the rest of the paper (and
  this reproduction) assumes.

Both classes operate on the per-block plaintext byte strings; bucket
serialisation itself lives in :mod:`repro.core.bucket_codec`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from repro.crypto.keys import ProcessorKey
from repro.crypto.prf import Keystream, Prf
from repro.errors import EncryptionError

#: Bits of overhead per block in the strawman scheme (the encrypted K').
STRAWMAN_PER_BLOCK_OVERHEAD_BITS = 128

#: Bits of overhead per bucket in the counter-based scheme (BucketCounter).
COUNTER_PER_BUCKET_OVERHEAD_BITS = 64


def strawman_bucket_bits(z: int, l_bits: int, u_bits: int, b_bits: int) -> int:
    """Bucket size in bits under the strawman scheme: ``Z(128 + L + U + B)``."""
    return z * (STRAWMAN_PER_BLOCK_OVERHEAD_BITS + l_bits + u_bits + b_bits)


def counter_bucket_bits(z: int, l_bits: int, u_bits: int, b_bits: int) -> int:
    """Bucket size in bits under the counter scheme: ``Z(L + U + B) + 64``."""
    return z * (l_bits + u_bits + b_bits) + COUNTER_PER_BUCKET_OVERHEAD_BITS


class BucketCipher(ABC):
    """Interface shared by both bucket encryption schemes."""

    def __init__(self, processor_key: ProcessorKey, backend: str = "sha256") -> None:
        self._key = processor_key
        self._prf = Prf(processor_key.key_bytes, backend=backend)
        self._keystream = Keystream(self._prf)

    @abstractmethod
    def encrypt(self, bucket_id: int, block_plaintexts: Sequence[bytes]) -> bytes:
        """Encrypt the blocks of one bucket into a single ciphertext."""

    @abstractmethod
    def decrypt(self, bucket_id: int, ciphertext: bytes) -> list[bytes]:
        """Recover the per-block plaintexts of one bucket."""

    @staticmethod
    @abstractmethod
    def bucket_bits(z: int, l_bits: int, u_bits: int, b_bits: int) -> int:
        """Size of an encrypted bucket in bits for the given parameters."""


class StrawmanBucketCipher(BucketCipher):
    """Per-block random-key scheme (Section 2.2.1).

    Each block ciphertext is ``Enc_K(K') || (pad_{K'} XOR plaintext)`` where
    ``K'`` is a fresh random 128-bit key.  ``Enc_K(K')`` is realised as a
    16-byte pad keyed by the processor key and a per-call nonce, which is
    ciphertext-size-equivalent to the paper's ``AES_K(K')``.
    """

    KEY_FIELD_BYTES = 16

    def __init__(
        self,
        processor_key: ProcessorKey,
        backend: str = "sha256",
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(processor_key, backend=backend)
        self._rng = rng if rng is not None else random.Random()
        self._nonce = 0

    def encrypt(self, bucket_id: int, block_plaintexts: Sequence[bytes]) -> bytes:
        pieces: list[bytes] = []
        for plaintext in block_plaintexts:
            block_key = bytes(self._rng.getrandbits(8) for _ in range(self.KEY_FIELD_BYTES))
            self._nonce += 1
            wrapped_key = self._keystream.apply(block_key, bucket_id, self._nonce, 0)
            # Store the nonce so decryption can unwrap K'; in hardware the
            # wrap would be AES_K(K') and need no nonce, but the ciphertext
            # size we account for is identical (the nonce rides in the same
            # 128-bit field conceptually; we serialise it separately here).
            block_prf = Prf(block_key, backend=self._prf.backend)
            pad = block_prf.keystream(len(plaintext), 0)
            body = bytes(a ^ b for a, b in zip(plaintext, pad))
            pieces.append(
                self._nonce.to_bytes(8, "little")
                + wrapped_key
                + len(plaintext).to_bytes(4, "little")
                + body
            )
        return b"".join(pieces)

    def decrypt(self, bucket_id: int, ciphertext: bytes) -> list[bytes]:
        plaintexts: list[bytes] = []
        offset = 0
        while offset < len(ciphertext):
            if offset + 8 + self.KEY_FIELD_BYTES + 4 > len(ciphertext):
                raise EncryptionError("truncated strawman bucket ciphertext")
            nonce = int.from_bytes(ciphertext[offset : offset + 8], "little")
            offset += 8
            wrapped_key = ciphertext[offset : offset + self.KEY_FIELD_BYTES]
            offset += self.KEY_FIELD_BYTES
            body_len = int.from_bytes(ciphertext[offset : offset + 4], "little")
            offset += 4
            if offset + body_len > len(ciphertext):
                raise EncryptionError("truncated strawman block body")
            body = ciphertext[offset : offset + body_len]
            offset += body_len
            block_key = self._keystream.apply(wrapped_key, bucket_id, nonce, 0)
            block_prf = Prf(block_key, backend=self._prf.backend)
            pad = block_prf.keystream(body_len, 0)
            plaintexts.append(bytes(a ^ b for a, b in zip(body, pad)))
        return plaintexts

    @staticmethod
    def bucket_bits(z: int, l_bits: int, u_bits: int, b_bits: int) -> int:
        return strawman_bucket_bits(z, l_bits, u_bits, b_bits)


class CounterBucketCipher(BucketCipher):
    """Counter-based scheme (Section 2.2.2).

    The whole bucket plaintext is XORed with
    ``PRF_K(BucketID || BucketCounter || chunk_index)`` and the 64-bit
    counter is stored in the clear ahead of the ciphertext.  Buckets are
    always read and written atomically, so one counter per bucket suffices;
    seeding with BucketID guarantees two buckets never share a pad.
    """

    COUNTER_BYTES = 8

    def __init__(self, processor_key: ProcessorKey, backend: str = "sha256") -> None:
        super().__init__(processor_key, backend=backend)
        self._counters: dict[int, int] = {}

    def current_counter(self, bucket_id: int) -> int:
        """The last counter value used for ``bucket_id`` (0 if never written)."""
        return self._counters.get(bucket_id, 0)

    def encrypt(self, bucket_id: int, block_plaintexts: Sequence[bytes]) -> bytes:
        counter = self._counters.get(bucket_id, 0) + 1
        self._counters[bucket_id] = counter
        lengths = b"".join(len(p).to_bytes(4, "little") for p in block_plaintexts)
        plaintext = (
            len(block_plaintexts).to_bytes(4, "little") + lengths + b"".join(block_plaintexts)
        )
        body = self._keystream.apply(plaintext, bucket_id, counter)
        return counter.to_bytes(self.COUNTER_BYTES, "little") + body

    def decrypt(self, bucket_id: int, ciphertext: bytes) -> list[bytes]:
        if len(ciphertext) < self.COUNTER_BYTES:
            raise EncryptionError("counter bucket ciphertext shorter than its counter")
        counter = int.from_bytes(ciphertext[: self.COUNTER_BYTES], "little")
        body = ciphertext[self.COUNTER_BYTES :]
        plaintext = self._keystream.apply(body, bucket_id, counter)
        if len(plaintext) < 4:
            raise EncryptionError("counter bucket plaintext missing block count")
        count = int.from_bytes(plaintext[:4], "little")
        offset = 4
        lengths: list[int] = []
        for _ in range(count):
            if offset + 4 > len(plaintext):
                raise EncryptionError("counter bucket plaintext missing block length")
            lengths.append(int.from_bytes(plaintext[offset : offset + 4], "little"))
            offset += 4
        blocks: list[bytes] = []
        for length in lengths:
            if offset + length > len(plaintext):
                raise EncryptionError("counter bucket plaintext truncated block body")
            blocks.append(plaintext[offset : offset + length])
            offset += length
        return blocks

    @staticmethod
    def bucket_bits(z: int, l_bits: int, u_bits: int, b_bits: int) -> int:
        return counter_bucket_bits(z, l_bits, u_bits, b_bits)
