"""Cryptographic substrate for Path ORAM's randomized encryption.

The paper assumes a hardware AES-128 engine generating one-time pads.  This
package provides:

* :mod:`repro.crypto.aes` — a self-contained AES-128 block cipher, validated
  against the FIPS-197 test vectors, used where bit-exact AES behaviour is
  wanted.
* :mod:`repro.crypto.prf` — keyed pseudo-random functions and keystream
  generators.  The default keystream is SHA-256 based because it is much
  faster than pure-Python AES; ORAM behaviour depends only on the existence
  of a keyed PRF, not on which one (see DESIGN.md, substitution table).
* :mod:`repro.crypto.bucket_encryption` — the two bucket encryption schemes
  from Section 2.2 of the paper: the strawman per-block-key scheme and the
  counter-based (BucketCounter) scheme.
* :mod:`repro.crypto.keys` — processor key material.
"""

from repro.crypto.aes import AES128
from repro.crypto.bucket_encryption import (
    BucketCipher,
    CounterBucketCipher,
    StrawmanBucketCipher,
    counter_bucket_bits,
    strawman_bucket_bits,
)
from repro.crypto.keys import ProcessorKey
from repro.crypto.prf import Keystream, Prf

__all__ = [
    "AES128",
    "Prf",
    "Keystream",
    "ProcessorKey",
    "BucketCipher",
    "StrawmanBucketCipher",
    "CounterBucketCipher",
    "strawman_bucket_bits",
    "counter_bucket_bits",
]
