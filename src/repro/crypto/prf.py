"""Keyed pseudo-random functions and one-time-pad keystreams.

The paper's bucket encryption generates one-time pads with
``AES_K(seed || chunk_index)``.  Pure-Python AES is far too slow to sit on
the hot path of million-access simulations, so the default PRF here is
SHA-256 based (HMAC-like keyed hashing).  Both back-ends expose the same
interface; the AES back-end is used in tests to demonstrate equivalence of
the construction and is available to callers who want bit-exact AES pads.
"""

from __future__ import annotations

import hashlib
from typing import Literal

from repro.crypto.aes import AES128

PrfBackend = Literal["sha256", "aes"]


class Prf:
    """A keyed PRF mapping an integer-tuple seed to pseudo-random bytes.

    Parameters
    ----------
    key:
        16-byte key.
    backend:
        ``"sha256"`` (default, fast) or ``"aes"`` (bit-exact AES-CTR-style
        pads, slow).
    """

    def __init__(self, key: bytes, backend: PrfBackend = "sha256") -> None:
        if backend not in ("sha256", "aes"):
            raise ValueError(f"unknown PRF backend: {backend!r}")
        self._key = bytes(key)
        self._backend = backend
        self._aes = AES128(self._pad_key(key)) if backend == "aes" else None

    @staticmethod
    def _pad_key(key: bytes) -> bytes:
        if len(key) == 16:
            return key
        return hashlib.sha256(key).digest()[:16]

    @property
    def backend(self) -> str:
        return self._backend

    def block(self, *seed: int) -> bytes:
        """Return one 16-byte pseudo-random block for the given seed tuple."""
        seed_bytes = b"".join(s.to_bytes(8, "little", signed=False) for s in seed)
        if self._backend == "aes":
            # Hash the seed down to one AES block and encrypt it: a standard
            # PRF construction when the seed may exceed the block size.
            compressed = hashlib.sha256(seed_bytes).digest()[:16]
            assert self._aes is not None
            return self._aes.encrypt_block(compressed)
        return hashlib.sha256(self._key + seed_bytes).digest()[:16]

    def keystream(self, nbytes: int, *seed: int) -> bytes:
        """Return ``nbytes`` of keystream derived from the seed tuple.

        Chunk ``i`` of the keystream is ``block(*seed, i)``, mirroring the
        paper's per-chunk pads ``AES_K(seed || i)``.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        chunks = []
        produced = 0
        index = 0
        while produced < nbytes:
            chunk = self.block(*seed, index)
            chunks.append(chunk)
            produced += len(chunk)
            index += 1
        return b"".join(chunks)[:nbytes]


class Keystream:
    """Convenience XOR-pad built on :class:`Prf`.

    ``apply`` both encrypts and decrypts (XOR with the same pad).
    """

    def __init__(self, prf: Prf) -> None:
        self._prf = prf

    def apply(self, data: bytes, *seed: int) -> bytes:
        """XOR ``data`` with the keystream derived from ``seed``."""
        pad = self._prf.keystream(len(data), *seed)
        return bytes(a ^ b for a, b in zip(data, pad))
