"""Durable memory-mapped column storage (the ``memmap-flat`` stack).

:class:`MemmapTreeStorage` keeps the exact self-describing int64 column
layout of :class:`~repro.core.numpy_tree.NumpyFlatTreeStorage` — per-bucket
occupancy counts plus per-slot address and leaf labels, one permanently
empty sentinel row, vacated rows re-padded — but homes the numeric columns
in page-aligned regions of one on-disk file via ``np.memmap``.  The
column-native execution engine (:mod:`repro.core.numpy_engine`) runs on the
mapped columns unchanged, so beyond-RAM trees pay only the page-cache cost;
opaque payloads (position-map label lists, user data) live in a pickled
sidecar file because they are Python objects, not fixed-width words.

Durability is the point of the stack.  The file carries a **generation
header commit protocol**:

* two header slots (pages 0 and 1) are double-buffered by generation
  parity; each header is self-checksummed (sha256 over the packed fields
  plus the pickled :class:`~repro.core.config.ORAMConfig`) so a torn
  header write invalidates only that slot and ``open()`` falls back to the
  other one;
* a **page checksum table** records sha256 of every data page, letting
  ``open()`` detect torn or lost column writes that a bare memmap would
  silently serve back;
* in-place column updates are **undo-journaled**: before the first write
  to a page in an epoch its pre-image is appended to ``<file>.journal``
  (fsynced eagerly in ``sync="strict"`` mode), so a crash mid-epoch rolls
  the file back to the last committed generation;
* :meth:`commit` orders ``journal fsync → checksum table update → data
  fsync → sidecar replace → header write → header fsync``; the header
  fsync is the commit point.  Archived undo journals and header copies
  (``<file>.undo/``) let a committed generation be rolled back again,
  which is what pins :meth:`snapshot`-based restore bit-identically.

``open()`` therefore either lands on the last committed generation —
recovering from torn data pages, torn headers, a stale or torn journal and
a half-replaced sidecar — or raises a typed
:class:`~repro.errors.DurabilityError` (truncation, checksum mismatch with
no applicable journal, pruned history, external rollback).  It never
returns a silently corrupt tree; the seeded crash-injection property tests
(``tests/test_memmap.py`` with :class:`repro.faults.CrashInjector`) walk
every commit-protocol crash point to prove it.

Checkpoints shrink from O(slots) to O(1): pickling this storage commits
and captures a *durable generation reference* (path, store id, generation,
column checksum) plus the sparse payload objects, not the columns;
unpickling reopens the file and — when the store moved past the referenced
generation — rolls it back through the archived undo journals.

This module must only be imported when NumPy is available;
:mod:`repro.backends` guards the import exactly like the ``numpy-flat``
stack.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import uuid
from typing import Any, Callable

import numpy as np

from repro.core.config import ORAMConfig
from repro.core.numpy_tree import _EMPTY, NumpyFlatTreeStorage
from repro.errors import ConfigurationError, DurabilityError

__all__ = ["MemmapTreeStorage", "CRASH_POINTS", "SYNC_MODES", "column_digest"]

#: Durability granularity: checksums, journaling and header slots all work
#: on pages of this size (the common filesystem block size).
PAGE_SIZE = 4096

#: Cap on the per-leaf page-set memo: small trees stay fully memoised,
#: beyond-RAM trees (more leaves than accesses) recompute instead of
#: hoarding tuples for paths they will never walk again.
_LEAF_PAGE_CACHE_LIMIT = 1 << 16

#: Journal fsync policy: ``"strict"`` syncs pre-images before the columns
#: they protect are first written (crash ⇒ guaranteed rollback),
#: ``"relaxed"`` syncs only at commit (faster epochs; a crash mid-epoch may
#: surface as a typed error instead of a recovery).
SYNC_MODES = ("strict", "relaxed")

#: Commit-protocol crash points, in protocol order.  The hook installed via
#: :meth:`MemmapTreeStorage.set_crash_hook` fires with the tag *before* the
#: named action executes; :class:`repro.faults.CrashInjector` uses them to
#: kill the protocol between any two durable steps.
CRASH_POINTS = (
    "journal-append",
    "journal-sync",
    "commit-begin",
    "commit-journal-sync",
    "table-update",
    "data-sync",
    "payload-archive",
    "payload-write",
    "payload-sync",
    "payload-rename",
    "header-write",
    "header-sync",
    "journal-archive",
    "header-archive",
    "prune",
)

_MAGIC = b"RPMMCOL1"
_FORMAT_VERSION = 1
_JOURNAL_MAGIC = b"RPMMJNL1"
_RECORD_MAGIC = b"JRC1"
_SHA_BYTES = 32
_ZERO_SHA = b"\x00" * _SHA_BYTES

#: Packed header prefix (followed by the pickled config, then sha256 over
#: everything before it): magic, version, flags, store id, generation,
#: num_buckets, num_rows, occupancy, payload length, Z, levels, page size,
#: config length, payload sha, table sha.
_HEADER_FMT = "<8sII16sQQQQQIIII32s32s"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_FLAG_PAYLOADS = 1

_JOURNAL_HEADER_FMT = "<8s16sI4x"
_JOURNAL_HEADER_SIZE = struct.calcsize(_JOURNAL_HEADER_FMT)
_RECORD_PREFIX_FMT = "<4sQQ"
_RECORD_PREFIX_SIZE = struct.calcsize(_RECORD_PREFIX_FMT)


def _page_round(n: int, page: int) -> int:
    return -(-n // page) * page


class _Layout:
    """Page-aligned region offsets for one tree geometry.

    Every region length is rounded up to a whole page so no page spans two
    regions — a page's checksum depends on exactly one column (padding
    bytes inside a region's last page are written once and never change).
    """

    def __init__(self, num_buckets: int, num_rows: int, page: int) -> None:
        self.page = page
        self.counts_len = _page_round(num_buckets * 8, page)
        self.col_len = _page_round((num_rows + 1) * 8, page)
        self.data_len = self.counts_len + 2 * self.col_len
        self.num_data_pages = self.data_len // page
        self.table_off = 2 * page
        self.table_len = _page_round(self.num_data_pages * _SHA_BYTES, page)
        self.data_off = self.table_off + self.table_len
        self.counts_off = self.data_off
        self.addr_off = self.counts_off + self.counts_len
        self.leaf_off = self.addr_off + self.col_len
        self.total = self.data_off + self.data_len


class _Header:
    """One parsed (and checksum-verified) generation header."""

    __slots__ = (
        "flags",
        "store_id",
        "generation",
        "num_buckets",
        "num_rows",
        "occupancy",
        "payload_len",
        "z",
        "levels",
        "payload_sha",
        "table_sha",
        "config",
        "blob",
    )

    @classmethod
    def parse(cls, blob: bytes) -> "_Header | None":
        """Parse a header page; ``None`` when it is torn or not a header."""
        if len(blob) < _HEADER_SIZE + _SHA_BYTES:
            return None
        try:
            fields = struct.unpack_from(_HEADER_FMT, blob, 0)
        except struct.error:  # pragma: no cover - guarded by the length check
            return None
        (magic, version, flags, store_id, generation, num_buckets, num_rows,
         occupancy, payload_len, z, levels, page_size, config_len,
         payload_sha, table_sha) = fields
        if magic != _MAGIC or version != _FORMAT_VERSION:
            return None
        if page_size != PAGE_SIZE:
            return None
        end = _HEADER_SIZE + config_len
        if end + _SHA_BYTES > len(blob):
            return None
        if hashlib.sha256(blob[:end]).digest() != blob[end : end + _SHA_BYTES]:
            return None
        header = cls()
        header.flags = flags
        header.store_id = store_id
        header.generation = generation
        header.num_buckets = num_buckets
        header.num_rows = num_rows
        header.occupancy = occupancy
        header.payload_len = payload_len
        header.z = z
        header.levels = levels
        header.payload_sha = payload_sha
        header.table_sha = table_sha
        header.config = pickle.loads(blob[_HEADER_SIZE:end])
        header.blob = blob[: end + _SHA_BYTES]
        return header


def column_digest(storage: NumpyFlatTreeStorage) -> str:
    """Deterministic fingerprint of a column storage's logical state.

    Covers the numeric columns, the occupancy counter and the sparse
    payload contents (by ``repr``, which is deterministic for the label
    lists and simple payloads the engine stores).  Works for the in-RAM
    ``numpy-flat`` stack and the memmap stack alike, which is what lets
    the crash-injection tests verify recovery against an in-memory shadow.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(storage._counts).tobytes())  # noqa: SLF001
    h.update(np.ascontiguousarray(storage._addresses).tobytes())  # noqa: SLF001
    h.update(np.ascontiguousarray(storage._leaves).tobytes())  # noqa: SLF001
    h.update(struct.pack("<Q", storage._occupancy))  # noqa: SLF001
    if storage.has_payloads:
        data = storage._data  # noqa: SLF001
        sparse = [(row, repr(payload)) for row, payload in enumerate(data) if payload is not None]
        h.update(repr(sparse).encode())
    return h.hexdigest()


class MemmapTreeStorage(NumpyFlatTreeStorage):
    """Crash-consistent on-disk column store (see the module docstring).

    Constructing the class **creates a fresh store** at ``path``
    (truncating any previous file there); reattaching to an existing store
    goes through :meth:`open` — or transparently through pickling, which
    stores a durable generation reference instead of the columns.
    """

    #: The column engine may attach even though this is a subclass: every
    #: direct column mutation it performs is preceded by a
    #: :meth:`note_path_write` call covering the same rows.
    column_engine_native = True

    def __init__(
        self,
        config: ORAMConfig,
        path: str | os.PathLike,
        *,
        sync: str = "strict",
        history_generations: int = 4,
        _recover: dict | None = None,
    ) -> None:
        if sync not in SYNC_MODES:
            raise ConfigurationError(f"unknown sync mode {sync!r}; expected one of {SYNC_MODES}")
        if history_generations < 1:
            raise ConfigurationError("history_generations must be >= 1")
        self._file_path = os.fspath(path)
        self._journal_path = self._file_path + ".journal"
        self._payload_path = self._file_path + ".payload"
        self._undo_dir = self._file_path + ".undo"
        self._sync = sync
        self._history = history_generations
        self._recover_opts = _recover
        self._crash_hook: Callable[[str], None] | None = None
        self._closed = False
        super().__init__(config)
        del self._recover_opts
        if _recover is not None:
            # The base initialiser reset these to the empty-tree defaults;
            # the recovered header is authoritative.
            self.has_payloads = bool(self._committed.flags & _FLAG_PAYLOADS)
            self._occupancy = self._committed.occupancy

    # ------------------------------------------------------------------
    # Construction / recovery
    # ------------------------------------------------------------------
    def _allocate_columns(self, num_buckets: int, num_rows: int) -> None:
        layout = _Layout(num_buckets, num_rows, PAGE_SIZE)
        self._layout = layout
        self._page_size = PAGE_SIZE
        self._data_first_page = layout.data_off // PAGE_SIZE
        self._epoch_pages: dict[int, bytes] = {}
        self._leaf_pages: dict[int, tuple[int, ...]] = {}
        self._header_pending: tuple[int, bytes] | None = None
        self._data_synced = True
        os.makedirs(self._undo_dir, exist_ok=True)
        if self._recover_opts is None:
            self._create(layout, num_buckets, num_rows)
        else:
            self._attach(layout, num_buckets, num_rows, self._recover_opts)

    def _create(self, layout: _Layout, num_buckets: int, num_rows: int) -> None:
        fd = os.open(self._file_path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
        os.ftruncate(fd, layout.total)
        self._fd = fd
        self._store_id = uuid.uuid4().bytes
        self._generation = 0
        self._payload_sha = _ZERO_SHA
        self._map_columns(layout, num_buckets, num_rows)
        self._counts[:] = 0
        self._addresses[:] = _EMPTY
        self._leaves[:] = self.empty_leaf
        table = self._table
        raw = self._raw
        for page in range(layout.num_data_pages):
            off = layout.data_off + page * PAGE_SIZE
            digest = hashlib.sha256(raw[off : off + PAGE_SIZE].tobytes()).digest()
            table[page * _SHA_BYTES : (page + 1) * _SHA_BYTES] = np.frombuffer(
                digest, dtype=np.uint8
            )
        self._table_sha = hashlib.sha256(table.tobytes()).digest()
        raw.flush()
        os.fsync(fd)
        header = self._pack_header(0, 0, False, 0, _ZERO_SHA, self._table_sha)
        os.pwrite(fd, header, 0)
        os.fsync(fd)
        self._archive_header(0, header)
        self._committed = _Header.parse(os.pread(fd, PAGE_SIZE, 0))
        self._open_fresh_journal()

    def _attach(self, layout: _Layout, num_buckets: int, num_rows: int, recover: dict) -> None:
        path = self._file_path
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError as exc:
            raise DurabilityError(f"no durable store at {path!r}: {exc}") from exc
        self._fd = fd
        size = os.fstat(fd).st_size
        if size < layout.total:
            raise DurabilityError(
                f"{path!r} is truncated: {size} bytes on disk, the described "
                f"layout needs {layout.total}"
            )
        slots = [
            _Header.parse(os.pread(fd, PAGE_SIZE, 0)),
            _Header.parse(os.pread(fd, PAGE_SIZE, PAGE_SIZE)),
        ]
        headers = [h for h in slots if h is not None]
        if not headers:
            raise DurabilityError(f"{path!r} has no intact generation header (both slots torn)")
        header = max(headers, key=lambda h: h.generation)
        if (
            header.num_buckets != num_buckets
            or header.num_rows != num_rows
            or header.z != self._z
            or (1 << header.levels) != self.empty_leaf
        ):
            raise DurabilityError(
                f"{path!r} describes a different tree geometry "
                f"({header.num_buckets} buckets / Z={header.z}) than the "
                f"given configuration ({num_buckets} buckets / Z={self._z})"
            )
        expect_id = recover.get("expect_store_id")
        if expect_id is not None and expect_id != header.store_id:
            raise DurabilityError(
                f"{path!r} holds a different store than the durable "
                "reference (store id mismatch — the file was replaced)"
            )
        # Live journal: roll the current epoch back, or archive a stale one.
        base, records = self._parse_journal(self._journal_path, header.store_id)
        if records and base == header.generation:
            for page, image in records:
                os.pwrite(fd, image, page * PAGE_SIZE)
            os.fsync(fd)
        elif records and base == header.generation - 1:
            # The commit completed but crashed before archiving its journal.
            dest = self._undo_file(f"gen-{header.generation}.journal")
            if not os.path.exists(dest):
                os.replace(self._journal_path, dest)
        elif records:
            raise DurabilityError(
                f"journal for {path!r} belongs to generation {base + 1}, the "
                f"file is at generation {header.generation} — divergent history"
            )
        target = recover.get("at_generation")
        if target is not None:
            if header.generation < target:
                raise DurabilityError(
                    f"{path!r} is at generation {header.generation}, behind "
                    f"the durable reference ({target}) — externally rolled back"
                )
            if header.generation > target:
                header = self._rollback_to(fd, header, target)
        if not self._verify_pages(fd, layout, header):
            raise DurabilityError(
                f"{path!r} fails page checksum verification at generation "
                f"{header.generation} (torn or lost write beyond journal reach)"
            )
        expect_sha = recover.get("expect_table_sha")
        if expect_sha is not None and expect_sha != header.table_sha:
            raise DurabilityError(
                f"{path!r} generation {header.generation} does not match the "
                "durable reference's column checksum — divergent history"
            )
        payloads = self._recover_payloads(header)
        self._store_id = header.store_id
        self._generation = header.generation
        self._table_sha = header.table_sha
        self._payload_sha = (header.payload_sha if header.flags & _FLAG_PAYLOADS else _ZERO_SHA)
        self._committed = header
        self._map_columns(layout, num_buckets, num_rows)
        data = self._data
        for row, payload in payloads.items():
            data[row] = payload
        self._open_fresh_journal()

    def _map_columns(self, layout: _Layout, num_buckets: int, num_rows: int) -> None:
        raw = np.memmap(self._file_path, dtype=np.uint8, mode="r+")
        self._raw = raw
        self._table = raw[layout.table_off : layout.table_off + layout.table_len]
        self._counts = raw[layout.counts_off : layout.counts_off + num_buckets * 8].view(np.int64)
        self._addresses = raw[layout.addr_off : layout.addr_off + (num_rows + 1) * 8].view(np.int64)
        self._leaves = raw[layout.leaf_off : layout.leaf_off + (num_rows + 1) * 8].view(np.int64)
        self._data = np.full(num_rows + 1, None, dtype=object)

    def _rollback_to(self, fd: int, header: _Header, target: int) -> _Header:
        """Re-land the file at committed generation ``target`` (< current)
        by applying the archived undo journals, newest first."""
        for gen in range(header.generation, target, -1):
            journal = self._undo_file(f"gen-{gen}.journal")
            base, records = self._parse_journal(journal, header.store_id)
            if base != gen - 1 or not records:
                raise DurabilityError(
                    f"cannot roll {self._file_path!r} back from generation "
                    f"{header.generation} to {target}: undo journal for "
                    f"generation {gen} is missing or unusable (history "
                    f"keeps {self._history} generations)"
                )
            for page, image in records:
                os.pwrite(fd, image, page * PAGE_SIZE)
        os.fsync(fd)
        archived = self._undo_file(f"gen-{target}.header")
        try:
            with open(archived, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise DurabilityError(
                f"no archived header for generation {target} of " f"{self._file_path!r}: {exc}"
            ) from exc
        landed = _Header.parse(blob)
        if landed is None or landed.generation != target:
            raise DurabilityError(
                f"archived header for generation {target} of " f"{self._file_path!r} is corrupt"
            )
        if landed.store_id != header.store_id:
            raise DurabilityError(
                f"archived header for generation {target} belongs to a "
                f"different store than {self._file_path!r}"
            )
        # Make the on-disk header slots agree with the rolled-back state:
        # the target's parity slot gets its header back, and a slot holding
        # a newer generation is invalidated so a later open cannot pick it.
        page = bytearray(PAGE_SIZE)
        page[: len(landed.blob)] = landed.blob
        os.pwrite(fd, bytes(page), (target % 2) * PAGE_SIZE)
        other_off = ((target + 1) % 2) * PAGE_SIZE
        other = _Header.parse(os.pread(fd, PAGE_SIZE, other_off))
        if other is not None and other.generation > target:
            os.pwrite(fd, b"\x00" * PAGE_SIZE, other_off)
        os.fsync(fd)
        # Generations past the target will be re-committed under the same
        # numbers; their stale archives must not shadow the new history.
        for gen, path in self._undo_entries():
            if gen > target:
                os.remove(path)
        return landed

    def _recover_payloads(self, header: _Header) -> dict[int, Any]:
        """Load (and, if needed, restore) the sidecar for ``header``."""
        if not header.flags & _FLAG_PAYLOADS:
            return {}
        live = self._read_file(self._payload_path)
        if (
            live is not None
            and len(live) == header.payload_len
            and hashlib.sha256(live).digest() == header.payload_sha
        ):
            return pickle.loads(live)
        archived = self._read_file(self._undo_file(f"payload-gen-{header.generation}"))
        if (
            archived is not None
            and len(archived) == header.payload_len
            and hashlib.sha256(archived).digest() == header.payload_sha
        ):
            # Put the live sidecar back so later commits archive correctly.
            self._write_file_atomic(self._payload_path, archived)
            return pickle.loads(archived)
        raise DurabilityError(
            f"payload sidecar for {self._file_path!r} generation "
            f"{header.generation} is missing or corrupt and no intact "
            "archive exists"
        )

    def _verify_pages(self, fd: int, layout: _Layout, header: _Header) -> bool:
        table = os.pread(fd, layout.table_len, layout.table_off)
        if hashlib.sha256(table).digest() != header.table_sha:
            return False
        for page in range(layout.num_data_pages):
            image = os.pread(fd, PAGE_SIZE, layout.data_off + page * PAGE_SIZE)
            expected = table[page * _SHA_BYTES : (page + 1) * _SHA_BYTES]
            if hashlib.sha256(image).digest() != expected:
                return False
        return True

    # ------------------------------------------------------------------
    # The commit protocol
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Make the current column state durable; returns the generation.

        No-ops (returning the current generation) when nothing changed
        since the last commit.  A crash at any point before the header
        fsync leaves the previous generation recoverable; after it, the
        new one is committed.
        """
        if self._closed:
            raise DurabilityError(f"store {self._file_path!r} is closed")
        payload_blob = self._payload_blob() if self.has_payloads else None
        if not self._epoch_pages and (
            payload_blob is None or hashlib.sha256(payload_blob).digest() == self._payload_sha
        ):
            return self._generation
        self._point("commit-begin")
        layout = self._layout
        generation = self._generation + 1
        # Checksum-table pages the dirty data pages map to are themselves
        # journaled so rollback restores the table consistently.
        dirty = sorted(page for page in self._epoch_pages if page >= self._data_first_page)
        table_pages = sorted(
            {self._table_page_of(page) for page in dirty} - self._epoch_pages.keys()
        )
        if table_pages:
            self._journal_pages(table_pages)
        self._point("commit-journal-sync")
        os.fsync(self._journal_fd)
        self._journal_synced_len = self._journal_len
        self._point("table-update")
        raw = self._raw
        table = self._table
        for page in dirty:
            off = page * PAGE_SIZE
            digest = hashlib.sha256(raw[off : off + PAGE_SIZE].tobytes()).digest()
            rel = page - self._data_first_page
            table[rel * _SHA_BYTES : (rel + 1) * _SHA_BYTES] = np.frombuffer(digest, dtype=np.uint8)
        table_sha = hashlib.sha256(table.tobytes()).digest()
        self._point("data-sync")
        raw.flush()
        os.fsync(self._fd)
        self._data_synced = True
        payload_len = 0
        payload_sha = _ZERO_SHA
        if payload_blob is not None:
            payload_len = len(payload_blob)
            payload_sha = hashlib.sha256(payload_blob).digest()
            self._point("payload-archive")
            if os.path.exists(self._payload_path):
                os.replace(
                    self._payload_path,
                    self._undo_file(f"payload-gen-{self._generation}"),
                )
            tmp = self._payload_path + ".tmp"
            self._point("payload-write")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, payload_blob)
                self._point("payload-sync")
                os.fsync(fd)
            finally:
                os.close(fd)
            self._point("payload-rename")
            os.replace(tmp, self._payload_path)
        header = self._pack_header(
            generation,
            self._occupancy,
            payload_blob is not None,
            payload_len,
            payload_sha,
            table_sha,
        )
        slot_off = (generation % 2) * PAGE_SIZE
        old_slot = os.pread(self._fd, PAGE_SIZE, slot_off)
        self._point("header-write")
        os.pwrite(self._fd, header, slot_off)
        self._header_pending = (slot_off, old_slot)
        self._point("header-sync")
        os.fsync(self._fd)
        self._header_pending = None
        # ---- commit point: `generation` is now durable ----
        self._generation = generation
        self._table_sha = table_sha
        self._payload_sha = payload_sha
        self._committed = _Header.parse(os.pread(self._fd, PAGE_SIZE, slot_off))
        self._point("journal-archive")
        os.close(self._journal_fd)
        os.replace(self._journal_path, self._undo_file(f"gen-{generation}.journal"))
        self._open_fresh_journal()
        self._point("header-archive")
        self._archive_header(generation, header)
        self._point("prune")
        self._prune_history(generation)
        self._epoch_pages.clear()
        return generation

    def _pack_header(
        self,
        generation: int,
        occupancy: int,
        has_payloads: bool,
        payload_len: int,
        payload_sha: bytes,
        table_sha: bytes,
    ) -> bytes:
        config_blob = pickle.dumps(self.config, protocol=pickle.HIGHEST_PROTOCOL)
        prefix = struct.pack(
            _HEADER_FMT,
            _MAGIC,
            _FORMAT_VERSION,
            _FLAG_PAYLOADS if has_payloads else 0,
            self._store_id,
            generation,
            self.config.num_buckets,
            self.config.num_buckets * self._z,
            occupancy,
            payload_len,
            self._z,
            self.config.levels,
            PAGE_SIZE,
            len(config_blob),
            payload_sha,
            table_sha,
        )
        blob = prefix + config_blob
        blob += hashlib.sha256(blob).digest()
        if len(blob) > PAGE_SIZE:
            raise ConfigurationError("configuration pickle too large for a header page")
        return blob

    def _payload_blob(self) -> bytes:
        sparse = {row: payload for row, payload in enumerate(self._data) if payload is not None}
        return pickle.dumps(sparse, protocol=pickle.HIGHEST_PROTOCOL)

    # ------------------------------------------------------------------
    # Journaling
    # ------------------------------------------------------------------
    def _open_fresh_journal(self) -> None:
        fd = os.open(
            self._journal_path,
            os.O_WRONLY | os.O_CREAT | os.O_TRUNC | os.O_APPEND,
            0o644,
        )
        header = struct.pack(_JOURNAL_HEADER_FMT, _JOURNAL_MAGIC, self._store_id, PAGE_SIZE)
        os.write(fd, header)
        os.fsync(fd)
        self._journal_fd = fd
        self._journal_len = len(header)
        self._journal_synced_len = len(header)

    def _journal_pages(self, pages: list[int]) -> None:
        """Append pre-images of ``pages`` (first dirty this epoch) to the
        journal; in strict mode they are fsynced before returning, i.e.
        before the caller's first mutation of those pages."""
        self._point("journal-append")
        raw = self._raw
        epoch = self._epoch_pages
        generation = self._generation
        chunks: list[bytes] = []
        for page in pages:
            image = raw[page * PAGE_SIZE : (page + 1) * PAGE_SIZE].tobytes()
            epoch[page] = image
            prefix = struct.pack(_RECORD_PREFIX_FMT, _RECORD_MAGIC, generation, page)
            chunks.append(prefix)
            chunks.append(image)
            chunks.append(hashlib.sha256(prefix + image).digest())
        blob = b"".join(chunks)
        os.write(self._journal_fd, blob)
        self._journal_len += len(blob)
        self._data_synced = False
        if self._sync == "strict":
            self._point("journal-sync")
            os.fsync(self._journal_fd)
            self._journal_synced_len = self._journal_len

    def _parse_journal(
        self, path: str, expect_store_id: bytes
    ) -> tuple[int | None, list[tuple[int, bytes]]]:
        """Valid records of a journal file; a torn tail is ignored.

        Returns ``(base_generation, [(page, pre_image), ...])`` —
        ``(None, [])`` when the file is missing, empty or not a journal of
        the expected store.
        """
        blob = self._read_file(path)
        if blob is None or len(blob) < _JOURNAL_HEADER_SIZE:
            return None, []
        magic, store_id, page_size = struct.unpack_from(_JOURNAL_HEADER_FMT, blob, 0)
        if magic != _JOURNAL_MAGIC or page_size != PAGE_SIZE:
            return None, []
        if store_id != expect_store_id:
            return None, []
        record_len = _RECORD_PREFIX_SIZE + PAGE_SIZE + _SHA_BYTES
        offset = _JOURNAL_HEADER_SIZE
        base: int | None = None
        records: list[tuple[int, bytes]] = []
        while offset + record_len <= len(blob):
            magic, generation, page = struct.unpack_from(_RECORD_PREFIX_FMT, blob, offset)
            if magic != _RECORD_MAGIC:
                break
            body_end = offset + _RECORD_PREFIX_SIZE + PAGE_SIZE
            digest = blob[body_end : body_end + _SHA_BYTES]
            if hashlib.sha256(blob[offset:body_end]).digest() != digest:
                break
            if base is None:
                base = generation
            elif generation != base:
                break
            records.append((page, blob[offset + _RECORD_PREFIX_SIZE : body_end]))
            offset += record_len
        return base, records

    # ------------------------------------------------------------------
    # Dirty tracking (called before any column mutation)
    # ------------------------------------------------------------------
    def note_path_write(self, leaf: int) -> None:
        """Journal the pre-images of every page the path to ``leaf`` can
        touch (counts, address rows, leaf rows), once per epoch.  The
        column engine calls this before its scatters; the generic
        write-path methods call it themselves."""
        pages = self._leaf_pages.get(leaf)
        if pages is None:
            pages = self._compute_leaf_pages(leaf)
            # Beyond-RAM trees have more leaves than any run touches twice;
            # an unbounded cache would outgrow the columns themselves.
            if len(self._leaf_pages) < _LEAF_PAGE_CACHE_LIMIT:
                self._leaf_pages[leaf] = pages
        epoch = self._epoch_pages
        fresh = [page for page in pages if page not in epoch]
        if fresh:
            self._journal_pages(fresh)

    def _compute_leaf_pages(self, leaf: int) -> tuple[int, ...]:
        layout = self._layout
        row_bytes = 8 * self._z
        if row_bytes > PAGE_SIZE:  # pragma: no cover - Z beyond any config
            pages: set[int] = set()
            for bucket in self.path(leaf):
                pages.update(self._bucket_pages(bucket))
            return tuple(sorted(pages))
        # A bucket's slot rows fit in one row_bytes stretch (<= one page
        # boundary crossing) and its count in one word, so the whole path's
        # page set is five vectorised expressions plus a unique.
        buckets = np.asarray(self.path(leaf), dtype=np.int64)
        counts = (layout.counts_off + buckets * 8) // PAGE_SIZE
        addr0 = layout.addr_off + buckets * row_bytes
        leaf0 = layout.leaf_off + buckets * row_bytes
        pages_arr = np.concatenate(
            (
                counts,
                addr0 // PAGE_SIZE,
                (addr0 + row_bytes - 1) // PAGE_SIZE,
                leaf0 // PAGE_SIZE,
                (leaf0 + row_bytes - 1) // PAGE_SIZE,
            )
        )
        return tuple(np.unique(pages_arr).tolist())

    def _bucket_pages(self, bucket: int) -> list[int]:
        layout = self._layout
        z = self._z
        pages = [(layout.counts_off + bucket * 8) // PAGE_SIZE]
        row0 = bucket * z
        for col_off in (layout.addr_off, layout.leaf_off):
            start = col_off + row0 * 8
            end = col_off + (row0 + z) * 8
            pages.extend(range(start // PAGE_SIZE, (end - 1) // PAGE_SIZE + 1))
        return pages

    def _table_page_of(self, data_page: int) -> int:
        rel = data_page - self._data_first_page
        return (self._layout.table_off + rel * _SHA_BYTES) // PAGE_SIZE

    def write_bucket(self, bucket_index: int, blocks) -> None:
        epoch = self._epoch_pages
        fresh = [p for p in self._bucket_pages(bucket_index) if p not in epoch]
        if fresh:
            self._journal_pages(fresh)
        super().write_bucket(bucket_index, blocks)

    def write_path_levels(self, leaf: int, level_buckets) -> None:
        self.note_path_write(leaf)
        super().write_path_levels(leaf, level_buckets)

    def adopt_columns(self, addresses, leaves, counts) -> None:
        raise ConfigurationError(
            "memmap-flat columns are homed in a durable file and cannot be "
            "re-homed into a fleet tensor"
        )

    # ------------------------------------------------------------------
    # Crash hook (fault injection / chaos testing)
    # ------------------------------------------------------------------
    def set_crash_hook(self, hook: Callable[[str], None] | None) -> None:
        """Install a callable fired with each :data:`CRASH_POINTS` tag
        immediately *before* the named protocol action executes."""
        self._crash_hook = hook

    def _point(self, tag: str) -> None:
        hook = self._crash_hook
        if hook is not None:
            hook(tag)

    # ------------------------------------------------------------------
    # Open / close
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        config: ORAMConfig | None = None,
        *,
        sync: str = "strict",
        history_generations: int = 4,
        at_generation: int | None = None,
        expect_store_id: bytes | None = None,
        expect_table_sha: bytes | None = None,
    ) -> "MemmapTreeStorage":
        """Reattach to an existing durable store, recovering if needed.

        Without ``config`` the configuration pickled into the committed
        header is used.  ``at_generation`` (with the optional
        ``expect_store_id`` / ``expect_table_sha`` pins from a durable
        reference) rolls the store back through its archived undo journals
        to an earlier committed generation.  Raises
        :class:`~repro.errors.DurabilityError` when the store cannot be
        produced at the requested (or latest) committed generation.
        """
        path = os.fspath(path)
        if config is None:
            config = cls._peek_config(path)
        return cls(
            config,
            path,
            sync=sync,
            history_generations=history_generations,
            _recover={
                "at_generation": at_generation,
                "expect_store_id": expect_store_id,
                "expect_table_sha": expect_table_sha,
            },
        )

    @classmethod
    def _peek_config(cls, path: str) -> ORAMConfig:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError as exc:
            raise DurabilityError(f"no durable store at {path!r}: {exc}") from exc
        try:
            slots = [
                _Header.parse(os.pread(fd, PAGE_SIZE, 0)),
                _Header.parse(os.pread(fd, PAGE_SIZE, PAGE_SIZE)),
            ]
        finally:
            os.close(fd)
        headers = [h for h in slots if h is not None]
        if not headers:
            raise DurabilityError(f"{path!r} has no intact generation header (both slots torn)")
        return max(headers, key=lambda h: h.generation).config

    def close(self, *, commit: bool = True) -> None:
        """Commit (by default) and release the mapping and descriptors."""
        if self._closed:
            return
        if commit:
            self.commit()
        self.abandon()

    def abandon(self) -> None:
        """Drop the store without committing — the in-process equivalent of
        a crash.  The file keeps whatever the protocol made durable."""
        if self._closed:
            return
        self._closed = True
        self._raw = None
        self._table = None
        self._counts = self._addresses = self._leaves = None
        for fd_attr in ("_fd", "_journal_fd"):
            fd = getattr(self, fd_attr, None)
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - already closed
                    pass
                setattr(self, fd_attr, None)

    # ------------------------------------------------------------------
    # Checkpoint integration: O(1) durable references
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        generation = self.commit()
        payloads = None
        if self.has_payloads:
            payloads = {
                row: payload for row, payload in enumerate(self._data) if payload is not None
            }
        return {
            "config": self.config,
            "path": self._file_path,
            "store_id": self._store_id,
            "generation": generation,
            "table_sha": self._table_sha,
            "sync": self._sync,
            "history": self._history,
            "occupancy": self._occupancy,
            "payloads": payloads,
        }

    def __setstate__(self, state: dict) -> None:
        twin = MemmapTreeStorage(
            state["config"],
            state["path"],
            sync=state["sync"],
            history_generations=state["history"],
            _recover={
                "at_generation": state["generation"],
                "expect_store_id": state["store_id"],
                "expect_table_sha": state["table_sha"],
            },
        )
        self.__dict__.update(twin.__dict__)
        twin._closed = True  # descriptors are owned by ``self`` now
        payloads = state["payloads"]
        if payloads is not None:
            # The sidecar reproduced the payloads by value; the snapshot's
            # inline objects win so pickle-memo aliasing (the PLB's cached
            # label lists, the protocol's observers) survives the restore.
            data = self._data
            data[:] = None
            for row, payload in payloads.items():
                data[row] = payload
            self.has_payloads = True
        self._occupancy = state["occupancy"]

    # ------------------------------------------------------------------
    # History management / helpers
    # ------------------------------------------------------------------
    def _undo_file(self, name: str) -> str:
        return os.path.join(self._undo_dir, name)

    def _undo_entries(self) -> list[tuple[int, str]]:
        entries: list[tuple[int, str]] = []
        try:
            names = os.listdir(self._undo_dir)
        except OSError:
            return entries
        for name in names:
            stem = name
            for prefix in ("payload-gen-", "gen-"):
                if stem.startswith(prefix):
                    stem = stem[len(prefix) :].split(".", 1)[0]
                    try:
                        entries.append((int(stem), os.path.join(self._undo_dir, name)))
                    except ValueError:
                        pass
                    break
        return entries

    def _prune_history(self, generation: int) -> None:
        floor = generation - self._history
        for gen, path in self._undo_entries():
            if gen < floor:
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    def _archive_header(self, generation: int, header: bytes) -> None:
        self._write_file_atomic(self._undo_file(f"gen-{generation}.header"), header)

    @staticmethod
    def _read_file(path: str) -> bytes | None:
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except OSError:
            return None

    @staticmethod
    def _write_file_atomic(path: str, blob: bytes) -> None:
        tmp = path + ".tmp"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, blob)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def file_path(self) -> str:
        return self._file_path

    @property
    def generation(self) -> int:
        """Last committed generation (0 right after creation)."""
        return self._generation

    @property
    def store_id(self) -> bytes:
        return self._store_id

    def storage_bytes(self) -> int:
        """On-disk footprint: the column file plus the payload sidecar."""
        total = self._layout.total
        try:
            total += os.stat(self._payload_path).st_size
        except OSError:
            pass
        return total

    def digest(self) -> str:
        """Fingerprint of the live logical state (see :func:`column_digest`)."""
        return column_digest(self)
