"""Versioned snapshot envelopes for checkpoint/resume.

A snapshot is the full simulation state of one ORAM — tree storage (list or
NumPy columns), stash, position maps, PLB contents, super-block mapper
counters, ``random.Random`` state and statistics — wrapped in a small
versioned envelope so a checkpoint written by one build can be rejected
cleanly (instead of restored wrongly) by an incompatible one.

The state itself is captured by pickling the protocol object: the pickle
memo preserves every internal aliasing invariant the hot paths rely on (the
protocol's slot-array view aliasing the storage's, the PLB's cached label
lists aliasing the live block payloads, the stash's friend dicts), which is
what makes a restored run bit-identical to an uninterrupted one.  The few
genuinely unpicklable members (hierarchy-installed observer closures, the
column engine's ndarray aliases) are stripped and rebuilt by the protocol
classes' ``__getstate__`` / ``__setstate__`` hooks.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.errors import CheckpointError, ReproError

#: Envelope marker: distinguishes snapshots from arbitrary pickled dicts.
SNAPSHOT_FORMAT = "repro-oram-snapshot"

#: Bump when the captured state's layout changes incompatibly; ``restore``
#: refuses versions it does not know instead of deserialising them wrongly.
SNAPSHOT_VERSION = 1


def make_snapshot(obj: Any, kind: str) -> dict:
    """Wrap ``obj``'s pickled state in a versioned snapshot envelope."""
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "kind": kind,
        "state": pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
    }


def snapshot_kind(envelope: Any) -> str:
    """The ``kind`` tag of a snapshot envelope (validating only the shell).

    Lets dispatchers (:func:`repro.backends.restore_oram`) route an opaque
    snapshot to the right class without deserialising any state.
    """
    if not isinstance(envelope, dict) or envelope.get("format") != SNAPSHOT_FORMAT:
        raise CheckpointError("not a snapshot envelope")
    kind = envelope.get("kind")
    if not isinstance(kind, str):
        raise CheckpointError("snapshot envelope carries no kind tag")
    return kind


def load_snapshot(envelope: Any, kind: str, expected_type: type) -> Any:
    """Validate a snapshot envelope and reconstruct the captured object.

    Raises
    ------
    CheckpointError
        If the envelope is not a snapshot, carries an unknown version, was
        taken from a different kind of object, or deserialises to an
        unexpected type.
    """
    if not isinstance(envelope, dict) or envelope.get("format") != SNAPSHOT_FORMAT:
        raise CheckpointError("not a snapshot envelope")
    version = envelope.get("version")
    if version != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"unsupported snapshot version {version!r} (this build reads {SNAPSHOT_VERSION})"
        )
    if envelope.get("kind") != kind:
        raise CheckpointError(f"snapshot kind {envelope.get('kind')!r} is not {kind!r}")
    state = envelope.get("state")
    if not isinstance(state, bytes):
        raise CheckpointError("snapshot envelope carries no state bytes")
    try:
        obj = pickle.loads(state)
    except ReproError:
        # Typed verdicts from restore hooks (e.g. a DurabilityError from a
        # durable storage whose on-disk history cannot reproduce the
        # referenced generation) carry more information than a generic
        # deserialisation failure — let them surface as themselves.
        raise
    except Exception as exc:  # noqa: BLE001 - surface as a checkpoint problem
        raise CheckpointError(f"snapshot state failed to deserialise: {exc}") from exc
    if not isinstance(obj, expected_type):
        raise CheckpointError(
            f"snapshot restored a {type(obj).__name__}, expected {expected_type.__name__}"
        )
    return obj
