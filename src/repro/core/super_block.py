"""Super blocks: statically merging adjacent blocks onto one path (Section 3.2).

A super block is a group of blocks intentionally mapped to the same leaf so
that one path access returns all of them.  The paper's static merging scheme
groups adjacent program addresses into fixed-size groups; the group a block
belongs to never changes, only the group's leaf does.

:class:`SuperBlockMapper` is the pluggable policy interface (the paper lists
dynamic merging as future work); :class:`StaticSuperBlockMapper` implements
the static scheme evaluated in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError


class SuperBlockMapper(ABC):
    """Maps program addresses to super-block group identifiers."""

    @property
    @abstractmethod
    def group_size(self) -> int:
        """Number of blocks per super block (1 = super blocks disabled)."""

    @abstractmethod
    def group_of(self, address: int) -> int:
        """Group identifier for a (1-based) program address."""

    @abstractmethod
    def addresses_in_group(self, group: int) -> list[int]:
        """All program addresses belonging to ``group`` (may exceed the
        working set; callers filter against their own address space)."""

    def num_groups(self, num_addresses: int) -> int:
        """Number of groups needed to cover ``num_addresses`` blocks."""
        if num_addresses < 1:
            raise ConfigurationError("num_addresses must be >= 1")
        return (num_addresses + self.group_size - 1) // self.group_size

    def group_span(self, group: int) -> tuple[int, int] | None:
        """Half-open address range ``[lo, hi)`` covering ``group``, when the
        group is a contiguous address run — the common case, which lets the
        stash retarget or extract a whole super block as one range split.
        Mappers with non-contiguous groups return ``None`` and the protocol
        falls back to member-at-a-time handling."""
        return None


class StaticSuperBlockMapper(SuperBlockMapper):
    """The paper's static merging scheme: adjacent addresses, fixed size.

    Addresses are 1-based (0 is the dummy address), so addresses
    ``1..size`` form group 0, ``size+1..2*size`` form group 1, and so on.
    """

    def __init__(self, size: int = 1) -> None:
        if size < 1:
            raise ConfigurationError("super block size must be >= 1")
        self._size = size

    @property
    def group_size(self) -> int:
        return self._size

    def group_of(self, address: int) -> int:
        if address < 1:
            raise ConfigurationError(f"address must be >= 1, got {address}")
        return (address - 1) // self._size

    def addresses_in_group(self, group: int) -> list[int]:
        if group < 0:
            raise ConfigurationError(f"group must be >= 0, got {group}")
        first = group * self._size + 1
        return list(range(first, first + self._size))

    def group_span(self, group: int) -> tuple[int, int] | None:
        first = group * self._size + 1
        return first, first + self._size
