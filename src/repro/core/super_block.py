"""Super blocks: merging adjacent blocks onto one path (Section 3.2).

A super block is a group of blocks intentionally mapped to the same leaf so
that one path access returns all of them.  The paper's static merging scheme
groups adjacent program addresses into fixed-size groups; the group a block
belongs to never changes, only the group's leaf does.

:class:`SuperBlockMapper` is the pluggable policy interface;
:class:`StaticSuperBlockMapper` implements the static scheme evaluated in
the paper, and :class:`DynamicSuperBlockMapper` implements the *dynamic*
merging the paper leaves as future work (Section 3.2): groups grow and
shrink at runtime, driven by windowed per-group access counters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError


class SuperBlockMapper(ABC):
    """Maps program addresses to super-block group identifiers."""

    @property
    @abstractmethod
    def group_size(self) -> int:
        """Number of blocks per super block (1 = super blocks disabled)."""

    @abstractmethod
    def group_of(self, address: int) -> int:
        """Group identifier for a (1-based) program address."""

    @abstractmethod
    def addresses_in_group(self, group: int) -> list[int]:
        """All program addresses belonging to ``group`` (may exceed the
        working set; callers filter against their own address space)."""

    def num_groups(self, num_addresses: int) -> int:
        """Number of groups needed to cover ``num_addresses`` blocks."""
        if num_addresses < 1:
            raise ConfigurationError("num_addresses must be >= 1")
        return (num_addresses + self.group_size - 1) // self.group_size

    def group_span(self, group: int) -> tuple[int, int] | None:
        """Half-open address range ``[lo, hi)`` covering ``group``, when the
        group is a contiguous address run — the common case, which lets the
        stash retarget or extract a whole super block as one range split.
        Mappers with non-contiguous groups return ``None`` and the protocol
        falls back to member-at-a-time handling."""
        return None


class StaticSuperBlockMapper(SuperBlockMapper):
    """The paper's static merging scheme: adjacent addresses, fixed size.

    Addresses are 1-based (0 is the dummy address), so addresses
    ``1..size`` form group 0, ``size+1..2*size`` form group 1, and so on.
    """

    def __init__(self, size: int = 1) -> None:
        if size < 1:
            raise ConfigurationError("super block size must be >= 1")
        self._size = size

    @property
    def group_size(self) -> int:
        return self._size

    def group_of(self, address: int) -> int:
        if address < 1:
            raise ConfigurationError(f"address must be >= 1, got {address}")
        return (address - 1) // self._size

    def addresses_in_group(self, group: int) -> list[int]:
        if group < 0:
            raise ConfigurationError(f"group must be >= 0, got {group}")
        first = group * self._size + 1
        return list(range(first, first + self._size))

    def group_span(self, group: int) -> tuple[int, int] | None:
        first = group * self._size + 1
        return first, first + self._size


@dataclass(frozen=True, slots=True)
class AccessPlan:
    """One access's super-block decision from a dynamic mapper.

    ``lo``/``hi`` is the half-open span of the (possibly just merged or
    split) group the accessed address belongs to *after* this access's
    partition events.  ``target_leaf`` is the leaf the access must retarget
    the reachable span members to — the group's anchor, when the accessed
    member is a straggler still converging onto its group — or ``None``
    when the accessed member sits with the group's settled cohort, in which
    case the protocol draws a fresh uniformly random leaf as usual (and
    reports it back through :meth:`DynamicSuperBlockMapper.set_anchor`).
    ``merged``/``split``/``hit`` feed the ``super_block_*`` statistics.
    """

    lo: int
    hi: int
    target_leaf: int | None
    merged: bool
    split: bool
    hit: bool


class DynamicSuperBlockMapper(SuperBlockMapper):
    """Runtime merging and splitting of adjacent-address groups.

    The paper evaluates only static merging and explicitly leaves dynamic
    merging as future work; this mapper implements it.  The address space
    starts as all-singleton groups; per-group access counters over a
    sliding window (halved every ``window`` accesses, applied lazily) drive
    two buddy-system events:

    * **merge** — when, within the decayed window, a group *and* its
      aligned buddy of the same size each accumulate at least
      ``merge_threshold`` accesses, the two spans fuse (up to
      ``max_group_size``), and
    * **split** — when one half of a group goes cold (a decayed count of
      zero) while the other half stays hot (``split_threshold`` accesses
      counting the current one), the group halves again.

    The position map stays at per-address granularity (``group_of`` is the
    identity), so merging never re-indexes any position-map structure —
    including the recursive construction's position-map ORAM blocks.  A
    group instead has an *anchor* leaf where its settled cohort lives:
    an access to a settled member draws a fresh leaf and drags the whole
    co-located cohort along (one ``retarget_range`` bucket split, exactly
    like the static scheme), while an access to a member not yet at the
    anchor — a fresh merge, or a straggler left behind by an earlier
    partial retarget — converges it *onto* the anchor.  Every member's
    position-map entry always records its true leaf, so no access ever
    misses; members not in the stash or on the accessed path simply keep
    their entry and join the group on their own next access ("retargeted
    lazily").

    Obliviousness: every logical access still performs exactly one path
    read and one path write.  Unlike the static scheme, convergence
    accesses reuse the group's anchor leaf instead of a fresh draw, which
    leaks co-access correlations to an adversary watching the leaf
    sequence — the known price of dynamic merging, and a reason the paper
    deferred it; analyses of the physical access pattern should use the
    static mapper.

    A mapper instance holds per-ORAM state: build one per ORAM, never
    share one across ORAMs.
    """

    def __init__(
        self,
        max_group_size: int = 4,
        window: int = 512,
        merge_threshold: int = 2,
        split_threshold: int = 4,
    ) -> None:
        if max_group_size < 2 or max_group_size & (max_group_size - 1):
            raise ConfigurationError(
                f"max_group_size must be a power of two >= 2, got {max_group_size}"
            )
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if merge_threshold < 1:
            raise ConfigurationError("merge_threshold must be >= 1")
        if split_threshold < 1:
            raise ConfigurationError("split_threshold must be >= 1")
        self._max_group_size = max_group_size
        self._window = window
        self._merge_threshold = merge_threshold
        self._split_threshold = split_threshold
        self._num_addresses: int | None = None
        #: leader[a] = first address of a's group (identity while singleton).
        self._leader: list[int] = []
        #: Group size per leader; absent = 1 (singleton).
        self._sizes: dict[int, int] = {}
        #: Anchor leaf per leader, kept only for multi-member groups (a
        #: singleton's anchor is simply its position-map entry).
        self._anchors: dict[int, int] = {}
        #: Windowed counters per leader: [low-half count, high-half count,
        #: window stamp]; decayed lazily by right-shifting per elapsed
        #: window.  Absent = all zero.
        self._counts: dict[int, list[int]] = {}
        self._accesses = 0

    # ------------------------------------------------------------------
    # SuperBlockMapper interface
    # ------------------------------------------------------------------
    @property
    def group_size(self) -> int:
        """The *maximum* group size (the per-class cap on merging)."""
        return self._max_group_size

    def group_of(self, address: int) -> int:
        # Per-address position-map granularity: merging never renumbers
        # groups, so a block's position-map slot is stable for life.
        if address < 1:
            raise ConfigurationError(f"address must be >= 1, got {address}")
        return address - 1

    def num_groups(self, num_addresses: int) -> int:
        if num_addresses < 1:
            raise ConfigurationError("num_addresses must be >= 1")
        self.bind(num_addresses)
        return num_addresses

    def addresses_in_group(self, group: int) -> list[int]:
        lo, hi = self.group_span(group)
        return list(range(lo, hi))

    def group_span(self, group: int) -> tuple[int, int] | None:
        if group < 0:
            raise ConfigurationError(f"group must be >= 0, got {group}")
        leader = self._leader_of(group + 1)
        return leader, leader + self._sizes.get(leader, 1)

    # ------------------------------------------------------------------
    # Dynamic policy
    # ------------------------------------------------------------------
    @property
    def window(self) -> int:
        return self._window

    @property
    def merge_threshold(self) -> int:
        return self._merge_threshold

    @property
    def split_threshold(self) -> int:
        return self._split_threshold

    def bind(self, num_addresses: int) -> None:
        """Size the partition for an ORAM's working set (idempotent)."""
        if self._num_addresses is not None:
            if self._num_addresses != num_addresses:
                raise ConfigurationError(
                    "mapper already bound to "
                    f"{self._num_addresses} addresses; a DynamicSuperBlockMapper "
                    "instance serves exactly one ORAM"
                )
            return
        self._num_addresses = num_addresses
        self._leader = list(range(num_addresses + 1))

    def fingerprint(self) -> tuple:
        """Deterministic view of the mapper's full runtime state.

        Covers the group partition, the anchor leaves, the windowed access
        counters and the access clock — everything the merge/split policy
        decides from — so the checkpoint/resume tests can assert a restored
        mapper continues bit-identically.
        """
        return (
            self._accesses,
            tuple(self._leader),
            tuple(sorted(self._sizes.items())),
            tuple(sorted(self._anchors.items())),
            tuple(sorted((leader, tuple(counts)) for leader, counts in self._counts.items())),
        )

    def iter_groups(self):
        """Yield every current ``(leader, size)`` pair, singletons included."""
        self._require_bound()
        address = 1
        num_addresses = self._num_addresses
        while address <= num_addresses:
            size = self._sizes.get(address, 1)
            yield address, size
            address += size

    def anchor_of(self, leader: int) -> int | None:
        """The anchor leaf of a multi-member group (``None`` otherwise)."""
        return self._anchors.get(leader)

    def set_anchor(self, leader: int, leaf: int) -> None:
        """Record the fresh leaf an access drew as its group's new anchor."""
        if leader in self._sizes:
            self._anchors[leader] = leaf

    def plan_access(self, address: int, current_leaf: int, leaves: list[int]) -> AccessPlan:
        """Observe one access and apply any due merge/split to the partition.

        ``current_leaf`` is the accessed address's position-map entry (the
        path the protocol is about to read); ``leaves`` is the per-address
        position-map list, consulted only to seed a merged group's anchor
        from a singleton buddy's entry.  Returns the :class:`AccessPlan`
        the protocol executes.  Deterministic: the partition after any
        access stream is a pure function of that stream.
        """
        self._require_bound()
        if not 1 <= address <= self._num_addresses:
            raise ConfigurationError(f"address {address} outside [1, {self._num_addresses}]")
        self._accesses += 1
        now = self._accesses // self._window
        leader = self._leader_of(address)
        size = self._sizes.get(leader, 1)
        counts = self._decayed(leader, now)

        # -- split: the other half went cold while this one stayed hot --
        split = False
        if size > 1:
            in_high = address >= leader + (size >> 1)
            own = counts[1] if in_high else counts[0]
            other = counts[0] if in_high else counts[1]
            if other == 0 and own + 1 >= self._split_threshold:
                leader, size = self._split(leader, size, address, now)
                counts = self._counts[leader]
                split = True

        # -- count this access against its half of the group --
        if size > 1 and address >= leader + (size >> 1):
            counts[1] += 1
        else:
            counts[0] += 1

        # -- merge: this group and its aligned buddy are both hot --
        merged = False
        hit = size > 1 and current_leaf == self._anchors[leader]
        target: int | None = None
        if size > 1 and not hit:
            target = self._anchors[leader]
        doubled = size << 1
        if doubled <= self._max_group_size and not split:
            buddy = ((leader - 1) ^ size) + 1
            if (
                buddy + size - 1 <= self._num_addresses
                and self._leader[buddy] == buddy
                and self._sizes.get(buddy, 1) == size
                and counts[0] + counts[1] >= self._merge_threshold
            ):
                buddy_counts = self._decayed(buddy, now)
                if buddy_counts[0] + buddy_counts[1] >= self._merge_threshold:
                    target = self._merge(leader, buddy, size, counts, buddy_counts, leaves)
                    merged = True
                    leader = min(leader, buddy)
                    size = doubled

        return AccessPlan(
            lo=leader,
            hi=leader + size,
            target_leaf=target,
            merged=merged,
            split=split,
            hit=hit,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_bound(self) -> None:
        if self._num_addresses is None:
            raise ConfigurationError(
                "DynamicSuperBlockMapper is unbound; the owning ORAM binds it "
                "via num_groups(working_set_blocks)"
            )

    def _leader_of(self, address: int) -> int:
        self._require_bound()
        if not 1 <= address <= self._num_addresses:
            raise ConfigurationError(f"address {address} outside [1, {self._num_addresses}]")
        return self._leader[address]

    def _decayed(self, leader: int, now: int) -> list[int]:
        """The leader's counter cell, window decay applied."""
        counts = self._counts.get(leader)
        if counts is None:
            counts = self._counts[leader] = [0, 0, now]
            return counts
        elapsed = now - counts[2]
        if elapsed:
            counts[0] >>= elapsed
            counts[1] >>= elapsed
            counts[2] = now
        return counts

    def _split(self, leader: int, size: int, address: int, now: int) -> tuple[int, int]:
        """Halve ``leader``'s group; return the accessed half's (leader, size)."""
        half = size >> 1
        high = leader + half
        leaders = self._leader
        for member in range(high, leader + size):
            leaders[member] = high
        sizes = self._sizes
        anchor = self._anchors.pop(leader)
        if half > 1:
            sizes[leader] = half
            sizes[high] = half
            # Both halves stay where the parent group lived; they drift
            # apart through their own future fresh draws.
            self._anchors[leader] = anchor
            self._anchors[high] = anchor
        else:
            del sizes[leader]
        # The parent's half counters say nothing about the halves' own
        # halves; both restart cold (the accessed one is bumped by the
        # caller), which just delays the next merge/split by a window.
        del self._counts[leader]
        new_leader = high if address >= high else leader
        self._counts[new_leader] = [0, 0, now]
        return new_leader, half

    def _merge(
        self,
        leader: int,
        buddy: int,
        size: int,
        counts: list[int],
        buddy_counts: list[int],
        leaves: list[int],
    ) -> int:
        """Fuse ``leader``'s and ``buddy``'s groups; return the merged anchor.

        The accessed side's reachable members are about to be retargeted by
        the protocol, so the merged group settles on the *buddy's* anchor
        (the side this access cannot reach); the accessed side converges
        onto it, starting with this very access.
        """
        merged_leader = leader if leader < buddy else buddy
        high_leader = buddy if leader < buddy else leader
        anchor = self._anchors.pop(buddy, None)
        if anchor is None:
            # Singleton buddy: its anchor is its position-map entry.
            anchor = leaves[buddy - 1]
        leaders = self._leader
        for member in range(high_leader, high_leader + size):
            leaders[member] = merged_leader
        sizes = self._sizes
        sizes[merged_leader] = size << 1
        sizes.pop(high_leader, None)
        self._anchors.pop(leader, None)
        self._anchors[merged_leader] = anchor
        stamp = counts[2]
        low_counts = counts if leader < buddy else buddy_counts
        high_counts = buddy_counts if leader < buddy else counts
        self._counts[merged_leader] = [
            low_counts[0] + low_counts[1],
            high_counts[0] + high_counts[1],
            stamp,
        ]
        self._counts.pop(high_leader, None)
        return anchor
