"""Column-native path execution over :class:`NumpyFlatTreeStorage`.

This module is the ``numpy-flat`` stack's counterpart of the fused
classified fast path in :mod:`repro.core.path_oram`: one
:class:`ColumnEngine` attaches to a :class:`~repro.core.path_oram.PathORAM`
whose storage is the exact column store, and runs whole path operations —
read, classification, greedy write-back — directly on the int64 columns.
No :class:`~repro.core.types.Block` shell is materialised for a block that
enters on the path and leaves on the path (the overwhelmingly common case):

* the path's address/leaf rows are gathered with one precomputed
  fancy-index per leaf (a static row grid of ``(levels+1) * Z`` slots plus
  the storage's sentinel row);
* every gathered row is classified to the deepest level it may legally
  occupy with vectorised bucket arithmetic — a single table gather for
  moderate trees, ``frexp``-based bit-length arithmetic for trees too deep
  for a table — and the storage's padded-empty invariant makes empty rows
  classify into a dedicated out-of-range class with no masking pass;
* the greedy deepest-first placement runs as *chunk arithmetic* over the
  stable argsort of the classes: candidate pools are (start, stop) spans,
  levels take from the tail of the accumulated span list exactly like the
  list engine's placement walk, and the result is a source-index vector;
* the write-back is three fancy-indexed scatters (addresses, leaves,
  counts) over the whole path, with the sentinel source expressing empty
  destination slots — the payload column is gathered and scattered *only
  when a real payload was ever attached* (``storage.has_payloads``).

Blocks that genuinely cross the tree/stash boundary — spilled path blocks,
placed stash blocks, the accessed block itself — are the only ones that
touch Python ``Block`` shells, so the stash keeps its exact list-engine
representation and the engine stays **bit-identical** to the list-backed
flat stack: same RNG draws, same stash contents, same tree layout, same
statistics.  ``tests/test_access_many.py`` pins this differentially.

The module imports NumPy at module level and must therefore only be
imported when a columnar storage instance already exists (which implies
NumPy is available); :class:`~repro.core.path_oram.PathORAM` guards the
import accordingly, keeping the pure-Python suite importable without
NumPy.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.background_eviction import NoEviction
from repro.core.numpy_tree import NumpyFlatTreeStorage
from repro.core.types import Block, Operation, TraceResult
from repro.errors import ConfigurationError

#: Largest tree depth for which the engine precomputes the classification
#: table (``2^(levels+1)`` int64 entries — 1 MiB at 16 levels); deeper
#: trees classify with vectorised frexp bit-length arithmetic instead.
_TABLE_LEVELS = 16

#: Beyond this many cached per-leaf row grids the engine rebuilds grids on
#: the fly instead of growing the cache (full-scale sweeps touch millions
#: of distinct leaves).
_LEAF_CACHE_LIMIT = 1 << 17

#: Marker chunk for the accessed block inside the placement span lists.
_VIRTUAL = (-1, -1)


class ColumnEngine:
    """Column-native path operations for one PathORAM.

    Build through :meth:`for_oram`, which returns ``None`` when the engine
    cannot guarantee bit-identical semantics (wrapper storages, grouped
    super blocks, single-leaf trees).
    """

    @classmethod
    def for_oram(cls, oram) -> "ColumnEngine | None":
        storage = oram.storage
        # Exact type only: a subclass may intercept bucket/path methods,
        # which the engine's direct column access would bypass — unless the
        # subclass declares itself engine-native (the memory-mapped stack:
        # its only interception need is the pre-write journaling hook the
        # engine honours via ``note_path_write``).
        if type(storage) is not NumpyFlatTreeStorage and not getattr(
            type(storage), "column_engine_native", False
        ):
            return None
        if not oram._single_member_groups or not oram._draw_bits:  # noqa: SLF001
            return None
        return cls(oram)

    def __init__(self, oram) -> None:
        self._oram = oram
        storage: NumpyFlatTreeStorage = oram.storage
        self._storage = storage
        # Durable storages journal dirty pages before they are mutated; the
        # engine calls this once per path op, just before its scatters.
        self._note_path_write = getattr(storage, "note_path_write", None)
        config = oram.config
        self._levels = levels = config.levels
        self._z = z = config.z
        self._grid = grid = (levels + 1) * z
        self._sentinel_row = config.num_buckets * z
        #: Index of the sentinel inside *gathered* arrays (they carry the
        #: grid's rows plus the sentinel row last).
        self._sentinel_src = grid
        self._empty_class = levels + 1
        # Columns (friend access, like the list engine's _slots fast path).
        self._addresses = storage._addresses  # noqa: SLF001
        self._leaves = storage._leaves  # noqa: SLF001
        self._data = storage._data  # noqa: SLF001
        self._counts = storage._counts  # noqa: SLF001
        # Classification: deepest legal level of a block with leaf b on the
        # path to leaf l is levels - bit_length(b ^ l); empty rows carry an
        # out-of-range leaf, so their diff has bit ``levels`` set and they
        # land in the dedicated empty class levels + 1.
        if levels <= _TABLE_LEVELS:
            self._class_table = self._build_class_table()
        else:
            self._class_table = None
        self._offsets = np.arange(z, dtype=np.int64)
        # Scratch reused by every op: source index per destination slot
        # (sentinel = leave empty), plus the XOR out-buffer so the hot
        # read's classification input never allocates.
        self._src_buf = np.empty(grid, dtype=np.int64)
        self._diff_buf = np.empty(grid + 1, dtype=np.int64)
        # Per-leaf row-grid cache: list-indexed for moderate trees, dict
        # (softly capped) for huge ones.
        num_leaves = config.num_leaves
        if num_leaves <= 1 << 16:
            self._leaf_list: list[tuple | None] | None = [None] * num_leaves
            self._leaf_dict: dict[int, tuple] | None = None
        else:
            self._leaf_list = None
            self._leaf_dict = {}

    def _build_class_table(self) -> np.ndarray:
        levels = self._levels
        diffs = np.arange(1 << (levels + 1), dtype=np.int64)
        bit_length = np.frexp(diffs.astype(np.float64))[1]
        return (levels - bit_length) % (levels + 2)

    def _classify(self, diffs: np.ndarray) -> np.ndarray:
        table = self._class_table
        if table is not None:
            return table[diffs]
        bit_length = np.frexp(diffs.astype(np.float64))[1]
        return (self._levels - bit_length) % (self._levels + 2)

    def _class_of(self, diff: int) -> int:
        """Python-side classification for stash leaves and the accessed
        block (mirrors the list engine's table/bit_length split)."""
        if diff == 0:
            return self._levels
        return self._levels - diff.bit_length()

    def _bundle(self, leaf: int):
        """The static per-leaf gather/scatter geometry.

        ``(rows_ext, rows, buckets, bases)``: the extended gather index
        (grid rows root-first, sentinel last), the scatter destination view
        (grid rows only), the path's bucket indices (ndarray, root first)
        and their flat row bases as Python ints.
        """
        cache_list = self._leaf_list
        if cache_list is not None:
            bundle = cache_list[leaf]
            if bundle is not None:
                return bundle
        else:
            bundle = self._leaf_dict.get(leaf)
            if bundle is not None:
                return bundle
        buckets, bases = self._storage._rows(leaf)  # noqa: SLF001
        rows_ext = np.empty(self._grid + 1, dtype=np.int64)
        rows_ext[:-1] = (bases[:, None] + self._offsets).ravel()
        rows_ext[-1] = self._sentinel_row
        bundle = (rows_ext, rows_ext[:-1], buckets, bases.tolist())
        if cache_list is not None:
            cache_list[leaf] = bundle
        elif len(self._leaf_dict) < _LEAF_CACHE_LIMIT:
            self._leaf_dict[leaf] = bundle
        return bundle

    # ------------------------------------------------------------------
    # The column-native path operation
    # ------------------------------------------------------------------
    def _path_op(
        self,
        address: int | None,
        leaf: int,
        new_leaf: int,
        is_write: bool,
        data: Any,
        create: bool,
        slot: int | None,
        child_new_leaf: int,
        labels_per_block: int,
        child_num_leaves: int,
    ):
        """One full path operation (read, block update, write-back).

        Three modes share the body, exactly like the list engine's
        ``_fused_single_access``:

        * ``address is None`` — dummy access: no block is located or
          remapped, the path is just read and greedily written back.
        * ``slot is None`` — data access: returns ``(result_data, found)``.
        * ``slot`` set — position-map access: the block always
          materialises, its label vector is updated in place and
          ``(displaced_child_leaf, labels)`` is returned.

        The caller has validated the address and updated the position map.
        """
        oram = self._oram
        levels = self._levels
        z = self._z
        stash_blocks = oram._stash_blocks  # noqa: SLF001
        by_leaf = oram._stash_by_leaf  # noqa: SLF001
        storage = self._storage
        addresses_col = self._addresses
        leaves_col = self._leaves
        data_col = self._data

        if oram._record_path_trace:  # noqa: SLF001
            oram._path_trace.append(leaf)  # noqa: SLF001

        rows_ext, rows, buckets, bases = self._bundle(leaf)

        # ---- gather + vectorised classification ----
        lvs = leaves_col[rows_ext]
        table = self._class_table
        if table is not None:
            diff = np.bitwise_xor(lvs, leaf, out=self._diff_buf)
            cls = table[diff]
        else:
            cls = self._classify(lvs ^ leaf)
        order = cls.argsort(kind="stable")
        cnt = np.bincount(cls, minlength=levels + 2).tolist()
        addrs = addresses_col[rows_ext]
        gather_payloads = storage.has_payloads
        data_g = data_col[rows_ext] if gather_payloads else None
        live = self._grid + 1 - cnt[levels + 1]
        pending = live  # grows by the stash candidates below

        # ---- locate the accessed block ----
        block = None
        in_stash = False
        target_pos = -1  # position within `order`
        target_src = -1  # index within the gathered arrays
        if address is not None:
            block = stash_blocks.get(address)
            in_stash = block is not None
            if not in_stash and cnt[levels]:
                # A block's stored leaf always equals its position-map
                # leaf, so the accessed block can only sit in the deepest
                # class (diff == 0).  Scan that small pool in read order.
                for pos in range(live - cnt[levels], live):
                    src = int(order[pos])
                    if int(addrs[src]) == address:
                        target_pos = pos
                        target_src = src
                        break

        transient = len(stash_blocks) + pending
        if transient > oram._transient_peak:  # noqa: SLF001
            oram._transient_peak = transient  # noqa: SLF001
        stats = oram._stats  # noqa: SLF001
        stats.path_reads += 1
        stats.blocks_read += pending

        # ---- block update / retarget (mirrors _fused_single_access) ----
        found = True
        virtual_class = -1
        virtual_payload = None
        stash = oram._stash  # noqa: SLF001
        if address is None:
            found = False
        elif in_stash:
            if block.leaf != new_leaf:
                bucket = by_leaf.get(block.leaf)
                if bucket is not None:
                    for position, candidate in enumerate(bucket):
                        if candidate is block:
                            last = bucket.pop()
                            if last is not block:
                                bucket[position] = last
                            break
                    if not bucket:
                        del by_leaf[block.leaf]
                block.leaf = new_leaf
                bucket = by_leaf.get(new_leaf)
                if bucket is None:
                    by_leaf[new_leaf] = [block]
                else:
                    bucket.append(block)
        elif target_pos >= 0:
            # Retargeted, then classified last in its class pool (the
            # shared tie-break order); stays columnar via a virtual chunk.
            virtual_class = self._class_of(new_leaf ^ leaf)
            virtual_payload = data_g[target_src] if gather_payloads else None
        elif slot is not None or is_write or create:
            found = False
            pool = oram._block_pool  # noqa: SLF001
            if pool:
                block = pool.pop()
                block.address = address
                block.leaf = new_leaf
                block.data = None
            else:
                block = Block(address=address, leaf=new_leaf, data=None)
            stash_blocks[address] = block
            bucket = by_leaf.get(new_leaf)
            if bucket is None:
                by_leaf[new_leaf] = [block]
            else:
                bucket.append(block)
            occupancy = len(stash_blocks)
            if occupancy > stash._max_occupancy:  # noqa: SLF001
                stash._max_occupancy = occupancy  # noqa: SLF001
        else:
            found = False

        # Mode-specific payload handling.
        if slot is not None:
            if virtual_class >= 0:
                labels = virtual_payload
                if labels is None:
                    randrange = oram._rng.randrange  # noqa: SLF001
                    labels = [
                        randrange(child_num_leaves) for _ in range(labels_per_block)
                    ]
                virtual_payload = labels
            else:
                labels = block.data
                if labels is None:
                    randrange = oram._rng.randrange  # noqa: SLF001
                    labels = [
                        randrange(child_num_leaves) for _ in range(labels_per_block)
                    ]
                    block.data = labels
            result = labels[slot]
            labels[slot] = child_new_leaf
        elif virtual_class >= 0:
            if is_write:
                virtual_payload = data
            result = virtual_payload
        elif block is not None:
            if is_write:
                block.data = data
            result = block.data
        else:
            result = None

        # ---- bucket stash candidates by deepest legal level ----
        by_stash = oram._by_deepest_stash  # noqa: SLF001
        has_stash = False
        if by_leaf:
            caps = oram._class_cap  # noqa: SLF001
            table = oram._deepest_table  # noqa: SLF001
            base_pending = pending
            if table is not None:
                for other_leaf, group in by_leaf.items():
                    deepest = table[other_leaf ^ leaf]
                    ready = by_stash[deepest]
                    if len(ready) < caps[deepest]:
                        ready.extend(group)
                        pending += len(group)
            else:
                for other_leaf, group in by_leaf.items():
                    diff = other_leaf ^ leaf
                    deepest = levels if not diff else levels - diff.bit_length()
                    ready = by_stash[deepest]
                    if len(ready) < caps[deepest]:
                        ready.extend(group)
                        pending += len(group)
            has_stash = pending != base_pending

        # ---- placement: chunk arithmetic over the argsorted classes ----
        # `avail` accumulates candidate spans deepest-class-first; each
        # level takes up to Z from its tail — the exact selection and
        # ordering rule of the list engine's placement walk.  Class-d's
        # pool sits at order[hi - cnt[d] : hi] (pools are laid out in
        # ascending class order by the stable argsort).
        src_buf = self._src_buf
        src_buf[:] = self._sentinel_src
        avail: list[tuple[int, int]] = []
        avail_len = 0
        avail_stash: list[Block] = []
        ns = 0
        placed_stash: list[Block] | None = [] if has_stash else None
        scalar_rows: list[tuple[int, Block]] = []
        virtual_dest = -1
        takes = [0] * (levels + 1)
        written = 0
        hi = live
        for d in range(levels, -1, -1):
            c = cnt[d]
            lo = hi - c
            if has_stash:
                s_ready = by_stash[d]
                if s_ready:
                    avail_stash.extend(s_ready)
                    s_ready.clear()
                    ns = len(avail_stash)
            # Fast lane: nothing carried over, no stash competitor, no
            # special block in this class — the pool is this level's
            # bucket verbatim (the dominant steady-state case).
            if (
                not avail_len
                and not ns
                and c <= z
                and virtual_class != d
                and (target_pos < 0 or d != levels)
            ):
                if c:
                    src_buf[d * z : d * z + c] = order[lo:hi]
                    takes[d] = c
                    written += c
                    if written == pending:
                        hi = lo
                        break
                hi = lo
                continue
            if c:
                if d == levels and target_pos >= 0:
                    if lo < target_pos:
                        avail.append((lo, target_pos))
                        avail_len += target_pos - lo
                    if target_pos + 1 < hi:
                        avail.append((target_pos + 1, hi))
                        avail_len += hi - target_pos - 1
                else:
                    avail.append((lo, hi))
                    avail_len += c
            hi = lo
            if virtual_class == d:
                avail.append(_VIRTUAL)
                avail_len += 1
            take = avail_len if avail_len < z else z
            if take:
                # Pop `take` entries off the tail, preserving sequence
                # order among the popped chunks.
                need = take
                popped: list[tuple[int, int]] = []
                while need:
                    chunk = avail[-1]
                    if chunk is _VIRTUAL:
                        popped.append(chunk)
                        avail.pop()
                        need -= 1
                    else:
                        a, b = chunk
                        span = b - a
                        if span <= need:
                            popped.append(chunk)
                            avail.pop()
                            need -= span
                        else:
                            popped.append((b - need, b))
                            avail[-1] = (a, b - need)
                            need = 0
                avail_len -= take
                popped.reverse()
                base_row = bases[d]
                grid_pos = d * z
                pos = 0
                for chunk in popped:
                    if chunk is _VIRTUAL:
                        virtual_dest = base_row + pos
                        pos += 1
                    else:
                        a, b = chunk
                        src_buf[grid_pos + pos : grid_pos + pos + b - a] = order[a:b]
                        pos += b - a
            if ns and take < z:
                extra = z - take if z - take < ns else ns
                ns -= extra
                placed = avail_stash[ns:]
                del avail_stash[ns:]
                base_row = bases[d]
                for offset, placed_block in enumerate(placed):
                    scalar_rows.append((base_row + take + offset, placed_block))
                placed_stash.extend(placed)
                take += extra
            takes[d] = take
            written += take
            if written == pending:
                # Every candidate is placed; shallower levels stay empty
                # (the sentinel default in src_buf and the zero takes
                # clear their buckets).
                break

        # ---- scatter the whole path back (sentinel source = empty) ----
        note = self._note_path_write
        if note is not None:
            note(leaf)
        addresses_col[rows] = addrs[src_buf]
        leaves_col[rows] = lvs[src_buf]
        if gather_payloads:
            data_col[rows] = data_g[src_buf]
        self._counts[buckets] = takes
        has_payloads = gather_payloads
        if virtual_dest >= 0:
            addresses_col[virtual_dest] = address
            leaves_col[virtual_dest] = new_leaf
            if virtual_payload is not None:
                data_col[virtual_dest] = virtual_payload
                has_payloads = True
            elif gather_payloads:
                data_col[virtual_dest] = None
        for row, placed_block in scalar_rows:
            addresses_col[row] = placed_block.address
            leaves_col[row] = placed_block.leaf
            payload = placed_block.data
            if payload is not None:
                data_col[row] = payload
                has_payloads = True
            elif gather_payloads:
                data_col[row] = None
        if has_payloads and not gather_payloads:
            storage.has_payloads = True
        storage._occupancy += written - live  # noqa: SLF001

        # ---- stash bookkeeping for both remainders ----
        if placed_stash:
            for placed_block in placed_stash:
                if stash_blocks.pop(placed_block.address, None) is not None:
                    block_leaf = placed_block.leaf
                    bucket = by_leaf.get(block_leaf)
                    if bucket is not None:
                        for position, candidate in enumerate(bucket):
                            if candidate is placed_block:
                                last = bucket.pop()
                                if last is not placed_block:
                                    bucket[position] = last
                                break
                        if not bucket:
                            del by_leaf[block_leaf]
        if avail:
            # Leftover buffer chunks genuinely enter the stash, in the
            # exact sequence order the list engine's avail_buffer holds.
            pool = oram._block_pool  # noqa: SLF001
            for chunk in avail:
                if chunk is _VIRTUAL:
                    payload = virtual_payload
                    if pool:
                        spilled = pool.pop()
                        spilled.address = address
                        spilled.leaf = new_leaf
                        spilled.data = payload
                    else:
                        spilled = Block(address=address, leaf=new_leaf, data=payload)
                    stash_blocks[address] = spilled
                    bucket = by_leaf.get(new_leaf)
                    if bucket is None:
                        by_leaf[new_leaf] = [spilled]
                    else:
                        bucket.append(spilled)
                else:
                    a, b = chunk
                    for src in order[a:b].tolist():
                        spill_address = int(addrs[src])
                        spill_leaf = int(lvs[src])
                        payload = data_g[src] if gather_payloads else None
                        if pool:
                            spilled = pool.pop()
                            spilled.address = spill_address
                            spilled.leaf = spill_leaf
                            spilled.data = payload
                        else:
                            spilled = Block(
                                address=spill_address, leaf=spill_leaf, data=payload
                            )
                        stash_blocks[spill_address] = spilled
                        bucket = by_leaf.get(spill_leaf)
                        if bucket is None:
                            by_leaf[spill_leaf] = [spilled]
                        else:
                            bucket.append(spilled)
            occupancy = len(stash_blocks)
            if occupancy > stash._max_occupancy:  # noqa: SLF001
                stash._max_occupancy = occupancy  # noqa: SLF001

        stats.path_writes += 1
        stats.blocks_written += written

        if slot is not None:
            return result, labels
        return result, found

    # ------------------------------------------------------------------
    # Entry points mirroring the list engine's fast paths
    # ------------------------------------------------------------------
    def fused_single_access(
        self,
        address: int,
        leaf: int,
        new_leaf: int,
        is_write: bool,
        data: Any,
        create: bool,
        slot: int | None,
        child_new_leaf: int,
        labels_per_block: int,
        child_num_leaves: int,
    ):
        """Drop-in column-native replacement for
        :meth:`PathORAM._fused_single_access` (same contract, same
        returns)."""
        return self._path_op(
            address, leaf, new_leaf, is_write, data, create,
            slot, child_new_leaf, labels_per_block, child_num_leaves,
        )

    def dummy_access(self, leaf: int) -> None:
        """Column-native dummy access: read the path, write back greedily."""
        self._path_op(None, leaf, 0, False, None, False, None, 0, 0, 0)

    def access_many(self, addresses: Any, op: Operation, data: Any) -> TraceResult:
        """Column-native trace loop, bit-identical to the looped ``access``
        (and therefore to the list-backed flat stack's fused loop)."""
        oram = self._oram
        working_set = oram._working_set  # noqa: SLF001
        leaves = oram._pm_leaves  # noqa: SLF001
        bits = oram._draw_bits  # noqa: SLF001
        getrandbits = oram._getrandbits  # noqa: SLF001
        stash_blocks = oram._stash_blocks  # noqa: SLF001
        is_write = op is Operation.WRITE
        create = oram._create_on_miss  # noqa: SLF001
        gate = oram._eviction_gate  # noqa: SLF001
        after_access = oram._eviction.after_access  # noqa: SLF001
        no_eviction = type(oram._eviction) is NoEviction  # noqa: SLF001
        bounded = oram.config.stash_capacity is not None
        check_bound = oram._check_stash_bound  # noqa: SLF001
        stats = oram._stats  # noqa: SLF001
        record_occupancy = stats.record_occupancy
        samples_append = stats.stash_occupancy_samples.append
        path_op = self._path_op

        # Same up-front validation contract as the list engine's fused loop.
        if type(addresses) is not list:
            addresses = list(addresses)
        if addresses and (min(addresses) < 1 or max(addresses) > working_set):
            bad = next(a for a in addresses if not 1 <= a <= working_set)
            raise ConfigurationError(f"address {bad} outside [1, {working_set}]")

        real = found_count = dummy_total = 0
        try:
            for address in addresses:
                index = address - 1
                leaf = leaves[index]
                new_leaf = getrandbits(bits)
                leaves[index] = new_leaf
                _, found = path_op(
                    address, leaf, new_leaf, is_write, data, create, None, 0, 0, 0
                )
                if found:
                    found_count += 1
                real += 1
                if record_occupancy:
                    samples_append(len(stash_blocks))
                if gate is not None and len(stash_blocks) <= gate:
                    continue
                if no_eviction:
                    if bounded:
                        check_bound()
                    continue
                dummy_total += after_access(oram)
                check_bound()
        finally:
            stats.real_accesses += real
        return TraceResult(accesses=real, found=found_count, dummy_accesses=dummy_total)
