"""NumPy slot-array tree storage (the ``numpy-flat`` stack).

:class:`NumpyFlatTreeStorage` keeps the ORAM tree as *columns* instead of a
list of Python objects: per-bucket occupancy counts plus per-slot address
and leaf labels live in preallocated int64 ndarrays, and only the opaque
payloads stay in an aligned object column.  Whole-path reads gather the
path's slot rows with one precomputed fancy-index per leaf, and the
flattened write-back scatters counts and slot columns back with slice
assignments — the ndarray version of
:class:`~repro.core.tree.FlatTreeStorage`'s batched path operations.

Two invariants make the columns *self-describing*, which is what the
column-native execution engine (:mod:`repro.core.numpy_engine`) relies on
to run whole path operations without materialising a single Python
:class:`~repro.core.types.Block`:

* every slot row at or past its bucket's count holds ``address == -1``,
  ``leaf == empty_leaf`` (``2**levels``, outside the real label range) and
  ``data is None`` — vacated rows are re-padded on every write, so a row's
  own columns say whether it is live, and an empty row's leaf classifies
  into a dedicated out-of-range class with no masking pass;
* one extra *sentinel row* sits at the very end of the columns,
  permanently empty, so a gather index pointing at it reads an empty slot
  — the engine's scatter uses it to express "this destination slot stays
  empty" inside a single fancy-indexed assignment.

The Block-shell protocol still works unchanged (path reads materialise
shells from the columns, path writes decompose them again), so the stack
stays bit-identical to the list-backed flat storage whether the column
engine is active or not — the differential property tests enforce it.
The tree's bulk state is numeric and compact: a 4 GB-class tree's metadata
fits in three ndarrays instead of millions of Python objects, which is
what the design-space sweeps at the paper's full scale need.

This module must only be imported when NumPy is available;
:mod:`repro.backends` guards the import and simply does not register the
``numpy-flat`` stack otherwise, so the pure-Python suite keeps passing
without NumPy installed.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ORAMConfig
from repro.core.tree import TreeStorage
from repro.core.types import Block
from repro.errors import ConfigurationError

#: Column value marking an empty slot (addresses are >= 1, dummies are 0).
_EMPTY = -1


class NumpyFlatTreeStorage(TreeStorage):
    """Column-oriented bucket store backed by NumPy slot arrays.

    Layout: bucket ``i`` owns slot rows ``[i*Z, (i+1)*Z)`` of the
    ``address``, ``leaf`` and ``data`` columns; ``counts[i]`` is
    authoritative for how many leading rows hold real blocks, and rows past
    the count are kept padded empty (see the module invariants).
    """

    #: Class marker the protocol checks (without importing this module) to
    #: decide whether the column-native execution engine can attach.
    columnar = True

    def __init__(self, config: ORAMConfig) -> None:
        super().__init__(config)
        self._z = config.z
        num_buckets = config.num_buckets
        num_rows = num_buckets * config.z
        #: Leaf value stored in empty rows: one past the real label range,
        #: so ``empty_leaf ^ leaf`` always has bit ``levels`` set and the
        #: engine's classification table maps every empty row to one
        #: dedicated out-of-range class.
        self.empty_leaf = 1 << config.levels
        self._allocate_columns(num_buckets, num_rows)
        #: False until any non-None payload lands in the data column.  While
        #: False the column is provably all-``None`` and the engine skips
        #: the payload gather/scatter entirely.
        self.has_payloads = False
        self._occupancy = 0
        # Per-leaf cache of the path's bucket indices as an ndarray plus the
        # flat slot-row base offsets (bucket * Z), for gather/scatter.
        self._path_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _allocate_columns(self, num_buckets: int, num_rows: int) -> None:
        """Provision the three numeric columns plus the payload column.

        Subclasses override this to home the numeric columns somewhere
        other than fresh in-RAM ndarrays (the memory-mapped stack points
        them at regions of an on-disk file) while keeping every invariant
        above: int64 dtype, one permanently empty sentinel row, empty rows
        padded with ``_EMPTY`` / ``empty_leaf``.
        """
        self._counts = np.zeros(num_buckets, dtype=np.int64)
        # One sentinel row past the end, permanently empty (see module doc).
        self._addresses = np.full(num_rows + 1, _EMPTY, dtype=np.int64)
        self._leaves = np.full(num_rows + 1, self.empty_leaf, dtype=np.int64)
        # Payloads are arbitrary Python objects (None, bytes, label lists);
        # they ride in an aligned *object ndarray* column so the engine can
        # gather/scatter them with the same fancy indices as the numeric
        # columns — but only when a real payload was ever attached.
        self._data = np.full(num_rows + 1, None, dtype=object)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # The per-leaf gather-index cache is pure derived state and can be
        # a large fraction of a snapshot (two ndarrays per touched leaf);
        # drop it and let reads repopulate it lazily after restore.
        state = self.__dict__.copy()
        state["_path_rows"] = {}
        return state

    # ------------------------------------------------------------------
    # Bucket interface
    # ------------------------------------------------------------------
    def read_bucket(self, bucket_index: int) -> list[Block]:
        count = int(self._counts[bucket_index])
        if not count:
            return []
        row = bucket_index * self._z
        addresses = self._addresses
        leaves = self._leaves
        data = self._data
        return [
            Block(
                address=int(addresses[slot]),
                leaf=int(leaves[slot]),
                data=data[slot],
            )
            for slot in range(row, row + count)
        ]

    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        count = len(blocks)
        z = self._z
        if count > z:
            raise ConfigurationError(
                f"bucket {bucket_index} overfilled: {count} > Z={z}"
            )
        row = bucket_index * z
        addresses = self._addresses
        leaves = self._leaves
        data = self._data
        has_payloads = self.has_payloads
        for offset, block in enumerate(blocks):
            slot = row + offset
            addresses[slot] = block.address
            leaves[slot] = block.leaf
            payload = block.data
            data[slot] = payload
            if payload is not None:
                has_payloads = True
        self.has_payloads = has_payloads
        if count < z:
            # Re-pad the vacated tail so the columns stay self-describing.
            addresses[row + count : row + z] = _EMPTY
            leaves[row + count : row + z] = self.empty_leaf
            data[row + count : row + z] = None
        old = int(self._counts[bucket_index])
        self._counts[bucket_index] = count
        self._occupancy += count - old

    # ------------------------------------------------------------------
    # Batched path operations: gathers and scatters over the columns
    # ------------------------------------------------------------------
    def _rows(self, leaf: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._path_rows.get(leaf)
        if cached is None:
            buckets = np.asarray(self.path(leaf), dtype=np.int64)
            cached = self._path_rows[leaf] = (buckets, buckets * self._z)
        return cached

    def read_path_blocks(self, leaf: int) -> list[Block]:
        """Materialise every real block on the path from the columns.

        One gather of the path's count column decides which slot rows are
        live; the address/leaf columns for those rows are pulled in two
        fancy-indexed reads instead of a Python loop per bucket.
        """
        buckets, bases = self._rows(leaf)
        counts = self._counts[buckets]
        total = int(counts.sum())
        if not total:
            return []
        # Slot rows of the occupied prefix of every path bucket.
        rows = np.concatenate(
            [
                np.arange(base, base + count)
                for base, count in zip(bases.tolist(), counts.tolist())
                if count
            ]
        )
        addresses = self._addresses[rows].tolist()
        leaves = self._leaves[rows].tolist()
        data = self._data
        return [
            Block(address=address, leaf=block_leaf, data=data[row])
            for address, block_leaf, row in zip(addresses, leaves, rows.tolist())
        ]

    def read_path(self, leaf: int) -> list[Block]:
        return self.read_path_blocks(leaf)

    def write_path_levels(self, leaf: int, level_buckets) -> None:
        """Scatter a whole path back into the columns, level-aligned."""
        z = self._z
        for blocks in level_buckets:
            if blocks and len(blocks) > z:
                raise ConfigurationError(f"bucket overfilled: {len(blocks)} > Z={z}")
        buckets, bases = self._rows(leaf)
        counts = self._counts
        addresses = self._addresses
        leaves = self._leaves
        data = self._data
        empty_leaf = self.empty_leaf
        has_payloads = self.has_payloads
        occupancy = self._occupancy
        for bucket_index, base, blocks in zip(
            buckets.tolist(), bases.tolist(), level_buckets
        ):
            old = int(counts[bucket_index])
            if blocks:
                count = len(blocks)
                addresses[base : base + count] = [block.address for block in blocks]
                leaves[base : base + count] = [block.leaf for block in blocks]
                # Scalar stores: a slice assignment would let NumPy coerce a
                # list of equal-length payload lists into a 2-D array.
                for offset, block in enumerate(blocks):
                    payload = block.data
                    data[base + offset] = payload
                    if payload is not None:
                        has_payloads = True
            elif old:
                count = 0
            else:
                continue
            if count < old:
                # Re-pad vacated rows (rows past ``old`` are already empty).
                addresses[base + count : base + old] = _EMPTY
                leaves[base + count : base + old] = empty_leaf
                data[base + count : base + old] = None
            counts[bucket_index] = count
            occupancy += count - old
        self.has_payloads = has_payloads
        self._occupancy = occupancy

    def write_path(self, leaf: int, assignments) -> None:
        path = self.path(leaf)
        self.write_path_levels(
            leaf, [assignments.get(bucket_index) for bucket_index in path]
        )

    def occupancy(self) -> int:
        """Real blocks stored in the tree — an O(1) maintained counter."""
        return self._occupancy

    # ------------------------------------------------------------------
    # Fleet stacking hook
    # ------------------------------------------------------------------
    def adopt_columns(
        self, addresses: np.ndarray, leaves: np.ndarray, counts: np.ndarray
    ) -> None:
        """Re-home the numeric columns into externally owned arrays.

        The fleet engine (:mod:`repro.core.numpy_fleet`) stacks many
        storages' columns as rows of one ``(n_experiments, slots)`` tensor
        so whole grids of path operations run as batched gathers/scatters.
        The provided arrays (typically views of such a tensor) receive a
        copy of the current column contents and become authoritative: every
        later read or write through this storage — including the scalar
        :class:`~repro.core.numpy_engine.ColumnEngine` fallback — operates
        on the shared tensor.  Shapes and dtypes must match the columns
        exactly; the payload column stays per-instance (it is an object
        column the batched ops never touch).
        """
        if (
            addresses.shape != self._addresses.shape
            or leaves.shape != self._leaves.shape
            or counts.shape != self._counts.shape
            or addresses.dtype != np.int64
            or leaves.dtype != np.int64
            or counts.dtype != np.int64
        ):
            raise ConfigurationError(
                "adopt_columns needs int64 arrays matching the storage's "
                f"column shapes {self._addresses.shape}/{self._counts.shape}"
            )
        addresses[:] = self._addresses
        leaves[:] = self._leaves
        counts[:] = self._counts
        self._addresses = addresses
        self._leaves = leaves
        self._counts = counts

    # ------------------------------------------------------------------
    # Introspection used by tests
    # ------------------------------------------------------------------
    def column_nbytes(self) -> int:
        """Bytes held by the numeric columns (excludes the payload column)."""
        return self._counts.nbytes + self._addresses.nbytes + self._leaves.nbytes
