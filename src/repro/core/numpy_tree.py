"""NumPy slot-array tree storage (the ``numpy-flat`` stack).

:class:`NumpyFlatTreeStorage` keeps the ORAM tree as *columns* instead of a
list of Python objects: per-bucket occupancy counts plus per-slot address
and leaf labels live in preallocated int64 ndarrays, and only the opaque
payloads stay in a Python list.  Whole-path reads gather the path's slot
rows with one precomputed fancy-index per leaf, and the flattened
write-back scatters counts and slot columns back with slice assignments —
the ndarray version of :class:`~repro.core.tree.FlatTreeStorage`'s batched
path operations.

The protocol still works on :class:`~repro.core.types.Block` objects (the
stash retargets them in place between read and write-back), so path reads
materialise Block shells from the columns and path writes decompose them
again.  That round-trip keeps the stack bit-identical to the list-backed
flat storage — the differential property tests enforce it — while the
tree's bulk state is numeric and compact: a 4 GB-class tree's metadata fits
in three ndarrays instead of millions of Python objects, which is what the
design-space sweeps at the paper's full scale need.

This module must only be imported when NumPy is available;
:mod:`repro.backends` guards the import and simply does not register the
``numpy-flat`` stack otherwise, so the pure-Python suite keeps passing
without NumPy installed.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ORAMConfig
from repro.core.tree import TreeStorage
from repro.core.types import Block
from repro.errors import ConfigurationError

#: Column value marking an empty slot (addresses are >= 1, dummies are 0).
_EMPTY = -1


class NumpyFlatTreeStorage(TreeStorage):
    """Column-oriented bucket store backed by NumPy slot arrays.

    Layout: bucket ``i`` owns slot rows ``[i*Z, (i+1)*Z)`` of the
    ``address`` and ``leaf`` columns; ``counts[i]`` is authoritative for
    how many leading rows hold real blocks (rows past the count are stale
    and never read, exactly like the flat storage's count slots).
    """

    def __init__(self, config: ORAMConfig) -> None:
        super().__init__(config)
        self._z = config.z
        num_buckets = config.num_buckets
        self._counts = np.zeros(num_buckets, dtype=np.int64)
        self._addresses = np.full(num_buckets * config.z, _EMPTY, dtype=np.int64)
        self._leaves = np.full(num_buckets * config.z, _EMPTY, dtype=np.int64)
        # Payloads are arbitrary Python objects (None, bytes, label lists);
        # they ride in a plain list column aligned with the slot rows.
        self._data: list[object] = [None] * (num_buckets * config.z)
        self._occupancy = 0
        # Per-leaf cache of the path's bucket indices as an ndarray plus the
        # flat slot-row base offsets (bucket * Z), for gather/scatter.
        self._path_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Bucket interface
    # ------------------------------------------------------------------
    def read_bucket(self, bucket_index: int) -> list[Block]:
        count = int(self._counts[bucket_index])
        if not count:
            return []
        row = bucket_index * self._z
        addresses = self._addresses
        leaves = self._leaves
        data = self._data
        return [
            Block(
                address=int(addresses[slot]),
                leaf=int(leaves[slot]),
                data=data[slot],
            )
            for slot in range(row, row + count)
        ]

    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        count = len(blocks)
        if count > self._z:
            raise ConfigurationError(
                f"bucket {bucket_index} overfilled: {count} > Z={self._z}"
            )
        row = bucket_index * self._z
        addresses = self._addresses
        leaves = self._leaves
        data = self._data
        for offset, block in enumerate(blocks):
            slot = row + offset
            addresses[slot] = block.address
            leaves[slot] = block.leaf
            data[slot] = block.data
        old = int(self._counts[bucket_index])
        self._counts[bucket_index] = count
        self._occupancy += count - old

    # ------------------------------------------------------------------
    # Batched path operations: gathers and scatters over the columns
    # ------------------------------------------------------------------
    def _rows(self, leaf: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._path_rows.get(leaf)
        if cached is None:
            buckets = np.asarray(self.path(leaf), dtype=np.int64)
            cached = self._path_rows[leaf] = (buckets, buckets * self._z)
        return cached

    def read_path_blocks(self, leaf: int) -> list[Block]:
        """Materialise every real block on the path from the columns.

        One gather of the path's count column decides which slot rows are
        live; the address/leaf columns for those rows are pulled in two
        fancy-indexed reads instead of a Python loop per bucket.
        """
        buckets, bases = self._rows(leaf)
        counts = self._counts[buckets]
        total = int(counts.sum())
        if not total:
            return []
        # Slot rows of the occupied prefix of every path bucket.
        rows = np.concatenate(
            [
                np.arange(base, base + count)
                for base, count in zip(bases.tolist(), counts.tolist())
                if count
            ]
        )
        addresses = self._addresses[rows].tolist()
        leaves = self._leaves[rows].tolist()
        data = self._data
        return [
            Block(address=address, leaf=block_leaf, data=data[row])
            for address, block_leaf, row in zip(addresses, leaves, rows.tolist())
        ]

    def read_path(self, leaf: int) -> list[Block]:
        return self.read_path_blocks(leaf)

    def write_path_levels(self, leaf: int, level_buckets) -> None:
        """Scatter a whole path back into the columns, level-aligned."""
        z = self._z
        for blocks in level_buckets:
            if blocks and len(blocks) > z:
                raise ConfigurationError(f"bucket overfilled: {len(blocks)} > Z={z}")
        buckets, bases = self._rows(leaf)
        counts = self._counts
        addresses = self._addresses
        leaves = self._leaves
        data = self._data
        occupancy = self._occupancy
        for bucket_index, base, blocks in zip(
            buckets.tolist(), bases.tolist(), level_buckets
        ):
            old = int(counts[bucket_index])
            if blocks:
                count = len(blocks)
                addresses[base : base + count] = [block.address for block in blocks]
                leaves[base : base + count] = [block.leaf for block in blocks]
                data[base : base + count] = [block.data for block in blocks]
            elif old:
                count = 0
            else:
                continue
            counts[bucket_index] = count
            occupancy += count - old
        self._occupancy = occupancy

    def write_path(self, leaf: int, assignments) -> None:
        path = self.path(leaf)
        self.write_path_levels(
            leaf, [assignments.get(bucket_index) for bucket_index in path]
        )

    def occupancy(self) -> int:
        """Real blocks stored in the tree — an O(1) maintained counter."""
        return self._occupancy

    # ------------------------------------------------------------------
    # Introspection used by tests
    # ------------------------------------------------------------------
    def column_nbytes(self) -> int:
        """Bytes held by the numeric columns (excludes the payload list)."""
        return self._counts.nbytes + self._addresses.nbytes + self._leaves.nbytes
