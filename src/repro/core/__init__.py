"""Path ORAM core: the paper's primary contribution.

The central classes are:

* :class:`repro.core.config.ORAMConfig` — a single Path ORAM's parameters
  (Z, block size, utilization, stash capacity) and every derived quantity
  (tree depth L, bucket size M, eviction threshold, …).
* :class:`repro.core.path_oram.PathORAM` — one Path ORAM with pluggable
  background-eviction policy, optional super blocks and optional encrypted
  tree storage.
* :class:`repro.core.hierarchical.HierarchicalPathORAM` — the recursive
  construction that stores position maps in further ORAMs.
* :class:`repro.core.interface.ORAMMemoryInterface` — the exclusive-ORAM
  front-end a processor's last-level cache talks to.
* :mod:`repro.core.overhead` — analytic storage and access-overhead models
  (Section 2.4 and Equations 1-2).
"""

from repro.core.background_eviction import (
    BackgroundEviction,
    EvictionPolicy,
    InsecureBlockRemapEviction,
    NoEviction,
)
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.interface import ORAMMemoryInterface
from repro.core.path_oram import PathORAM
from repro.core.tree import (
    EncryptedTreeStorage,
    FlatTreeStorage,
    PlainTreeStorage,
    TreeStorage,
)
from repro.core.position_map import PositionMap
from repro.core.stash import Stash
from repro.core.stats import AccessStats
from repro.core.super_block import (
    DynamicSuperBlockMapper,
    StaticSuperBlockMapper,
    SuperBlockMapper,
)
from repro.core.types import DUMMY_ADDRESS, Block, Operation, TraceResult

__all__ = [
    "ORAMConfig",
    "HierarchyConfig",
    "PathORAM",
    "TreeStorage",
    "FlatTreeStorage",
    "PlainTreeStorage",
    "EncryptedTreeStorage",
    "HierarchicalPathORAM",
    "ORAMMemoryInterface",
    "PositionMap",
    "Stash",
    "AccessStats",
    "Block",
    "Operation",
    "TraceResult",
    "DUMMY_ADDRESS",
    "EvictionPolicy",
    "NoEviction",
    "BackgroundEviction",
    "InsecureBlockRemapEviction",
    "SuperBlockMapper",
    "StaticSuperBlockMapper",
    "DynamicSuperBlockMapper",
]
