"""Hierarchical (recursive) Path ORAM (Section 2.3).

``ORAM_1`` holds the program's data blocks; ``ORAM_2`` holds ``ORAM_1``'s
position map, packed ``k`` leaf labels per block; and so on until the
outermost position map fits on chip.  One logical access therefore walks the
chain outermost-first: each position-map lookup yields the leaf to read in
the next (larger) ORAM and simultaneously installs the fresh leaf that ORAM
is being remapped to.

The chain walk is the hierarchy's fast path: every round draws the whole
stack of fresh leaves into one reused buffer (a single ``getrandbits`` per
ORAM), resolves the per-level ``(block, slot)`` coordinates from a memoised
chain table, and drives each position-map ORAM through
:meth:`PathORAM.access_position_block` — the closure-free combined
lookup/install — so a recursive access costs H path operations and nothing
else.

Background eviction follows Section 3.1.1: whenever *any* stash in the
hierarchy exceeds its threshold, a dummy access is issued to *every* ORAM in
the same order as a normal access (smallest first, data ORAM last), so dummy
rounds are indistinguishable from real accesses.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.core.background_eviction import NoEviction
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.path_oram import PathORAM
from repro.core.position_map import PositionMap
from repro.core.stats import AccessStats
from repro.core.super_block import DynamicSuperBlockMapper, SuperBlockMapper
from repro.core.tree import TreeStorage
from repro.core.types import AccessResult, Operation, TraceResult
from repro.errors import ConfigurationError, ReproError, StashOverflowError

StorageFactory = Callable[[ORAMConfig], TreeStorage]


def _fused_op(oram: PathORAM):
    """The ORAM's fully-inlined fused path op, or ``None``.

    The list engine's classified fast path and the column-native NumPy
    engine share one calling convention (see
    :meth:`PathORAM._fused_single_access`), so the hierarchical chain walk
    treats them interchangeably — a hierarchy may even mix them per level
    (e.g. a columnar data ORAM over list-backed position maps).
    """
    if oram._classified_fast:  # noqa: SLF001
        return oram._fused_single_access  # noqa: SLF001
    engine = oram._column_engine  # noqa: SLF001
    if engine is not None:
        return engine.fused_single_access
    return None


class HierarchicalPathORAM:
    """A chain of Path ORAMs implementing the recursive construction.

    Parameters
    ----------
    hierarchy:
        The :class:`HierarchyConfig` describing every ORAM in the chain.
    rng:
        Shared random source (seed for reproducibility).
    storage_factory:
        Optional callable building a tree-storage back-end per ORAM config
        (e.g. to use encrypted storage); defaults to the functional backend.
    record_path_trace:
        Forwarded to each underlying :class:`PathORAM`.
    livelock_limit:
        Safety cap on dummy rounds per eviction trigger.
    coalesce_position_ops:
        When True, :meth:`access_many` serves consecutive trace accesses
        that resolve through the same position-map block at a level from
        one fused path operation: the first access reads the block in and
        later accesses retarget their labels in the read-in block directly
        instead of issuing one path op per level per access.  Results
        (found blocks, payloads, the position-map chain's consistency) are
        unchanged; the *physical* access sequence shrinks, so per-ORAM
        ``stats.path_reads`` drop and ``stats.coalesced_ops`` counts the
        ops saved.  Off by default because the physical trace differs from
        the per-access protocol (the differential suites pin that shape).
    """

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        rng: random.Random | None = None,
        storage_factory: StorageFactory | None = None,
        record_path_trace: bool = False,
        livelock_limit: int = 100_000,
        coalesce_position_ops: bool = False,
        data_super_block_mapper: SuperBlockMapper | None = None,
    ) -> None:
        self._hierarchy = hierarchy
        self._rng = rng if rng is not None else random.Random()
        self._configs = hierarchy.oram_configs
        self._dynamic_data = isinstance(data_super_block_mapper, DynamicSuperBlockMapper)
        if self._dynamic_data and hierarchy.data_oram.super_block_size != 1:
            raise ConfigurationError(
                "dynamic super-block merging keeps the position map at "
                "per-address granularity; the data ORAM config must use "
                "super_block_size=1 (the mapper's max_group_size bounds "
                "runtime groups instead)"
            )
        self._orams: list[PathORAM] = []
        for index, config in enumerate(self._configs):
            storage = storage_factory(config) if storage_factory is not None else None
            self._orams.append(
                PathORAM(
                    config,
                    storage=storage,
                    eviction_policy=NoEviction(),
                    super_block_mapper=data_super_block_mapper if index == 0 else None,
                    rng=self._rng,
                    create_on_miss=True,
                    record_path_trace=record_path_trace,
                )
            )
        # labels_per_block[i] = how many leaf labels of ORAM i fit in one
        # block of ORAM i+1 (both zero-indexed, data ORAM = 0).
        self._labels_per_block = [
            hierarchy.labels_per_position_block(self._configs[i])
            for i in range(len(self._configs) - 1)
        ]
        self._child_num_leaves = [config.num_leaves for config in self._configs]
        outer = self._configs[-1]
        self._onchip_position_map = PositionMap(
            outer.position_map_entries, outer.num_leaves, rng=self._rng
        )
        self._stats = AccessStats()
        self._livelock_limit = livelock_limit
        # Hot-path caches for the chain walk and the eviction rounds:
        # * one reused buffer of fresh leaves, filled by a single
        #   getrandbits draw per ORAM (leaf counts are powers of two);
        # * the (block, slot) chain per data-ORAM group, memoised — the
        #   divmod ladder is pure arithmetic on the group id;
        # * the on-chip position map's entry list, so the outermost
        #   lookup/install is one list index;
        # * dummy rounds walk the ORAMs smallest-first (the reverse of
        #   construction order) and re-check only stashes with a threshold.
        self._leaf_bits = [(config.num_leaves - 1).bit_length() for config in self._configs]
        self._new_leaves = [0] * len(self._configs)
        self._getrandbits = self._rng.getrandbits
        # Chain memoisation is worth one dict entry per accessed group only
        # while the map stays small (like path_oram's _deepest_table, which
        # is disabled for big trees); past the cutoff the divmod ladder is
        # recomputed per access.
        data_groups = self._orams[0].super_block_mapper.num_groups(
            self._configs[0].working_set_blocks
        )
        self._chain_cache: dict[int, tuple[tuple[int, int], ...]] | None = (
            {} if data_groups <= 1 << 16 else None
        )
        self._data_group_of = self._orams[0].super_block_mapper.group_of
        self._onchip_leaves = self._onchip_position_map.leaves
        self._pending_data_leaf = 0
        self._coalesce = coalesce_position_ops
        self._eviction_order = tuple(reversed(self._orams))
        self._thresholded_orams = tuple(
            (oram, oram.eviction_threshold)
            for oram in self._orams
            if oram.eviction_threshold is not None
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> HierarchyConfig:
        return self._hierarchy

    @property
    def orams(self) -> tuple[PathORAM, ...]:
        """The underlying ORAMs, data ORAM first."""
        return tuple(self._orams)

    @property
    def data_oram(self) -> PathORAM:
        return self._orams[0]

    @property
    def num_orams(self) -> int:
        return len(self._orams)

    @property
    def stats(self) -> AccessStats:
        """Hierarchy-level counters: real accesses and dummy *rounds*."""
        return self._stats

    @property
    def onchip_position_map(self) -> PositionMap:
        return self._onchip_position_map

    @property
    def coalesce_position_ops(self) -> bool:
        """Whether :meth:`access_many` coalesces position-map path ops."""
        return self._coalesce

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(
        self, address: int, op: Operation = Operation.READ, data: Any = None
    ) -> AccessResult:
        """One full hierarchical access (``accessHORAM`` in Section 2.3).

        With a dynamic super-block mapper on the data ORAM, the chain walk
        is performed exactly as usual (same position-map ORAM accesses,
        same fresh-leaf install), but the data ORAM's per-address mirror is
        authoritative for where the block truly is — the chain's stored
        label can be stale for members a merge retargeted while they sat in
        the stash; see :meth:`PathORAM.access_dynamic_path`.
        """
        current_leaf = self._resolve_position_chain(address)
        if self._dynamic_data:
            result = self._orams[0].access_dynamic_path(
                address, self._pending_data_leaf, op, data
            )
        else:
            result = self._orams[0].access_path(
                address, current_leaf, self._pending_data_leaf, op, data
            )
        self._stats.real_accesses += 1
        result.dummy_accesses = self._run_background_eviction()
        return result

    def read(self, address: int) -> AccessResult:
        return self.access(address, Operation.READ)

    def write(self, address: int, data: Any) -> AccessResult:
        return self.access(address, Operation.WRITE, data)

    def access_many(
        self,
        addresses: Any,
        op: Operation = Operation.READ,
        data: Any = None,
    ) -> TraceResult:
        """Consume a whole trace of addresses in one fused chain loop.

        Bit-for-bit identical to ``for a in addresses: self.access(a, op,
        data)``: the position-map chain walk is inlined with every lookup
        hoisted out of the loop, the data-ORAM step takes the single-member
        :meth:`~repro.core.path_oram.PathORAM.access_fixed_leaf` fast path
        when it can (the generic ``access_path`` otherwise, e.g. with super
        blocks), and the per-access over-threshold check reads the stash
        sizes directly — the dummy-round machinery is only entered when a
        stash is actually over its threshold.

        With ``coalesce_position_ops`` the loop additionally skips every
        position-map path operation whose block is still the one most
        recently read at that level: the consecutive accesses share the
        fused path op that read the block in, and only retarget their
        labels inside it (see the constructor's parameter description).
        Logical results are unchanged; the physical op sequence is not.
        """
        orams = self._orams
        data_oram = orams[0]
        outer_index = len(self._configs) - 1
        leaf_bits = self._leaf_bits
        new_leaves = self._new_leaves
        getrandbits = self._getrandbits
        cache = self._chain_cache
        chain_for = self._chain_for
        onchip = self._onchip_leaves
        group_of = self._data_group_of
        labels_per_block = self._labels_per_block
        child_num_leaves = self._child_num_leaves
        # When every ORAM has a fully-inlined fused path op — the list
        # engine's classified fast path or the column-native engine — each
        # level is one direct call with deferred per-ORAM stat counters;
        # otherwise each level goes through its public method.
        fused_ops = [_fused_op(oram) for oram in orams]
        all_fused = data_oram._single_member_groups and all(  # noqa: SLF001
            fused is not None for fused in fused_ops
        )
        if all_fused:
            pm_lists = [oram._pm_leaves for oram in orams]  # noqa: SLF001
            oram_stats = [oram._stats for oram in orams]  # noqa: SLF001
            occ_samplers = [
                (stat.stash_occupancy_samples.append, oram._stash_blocks)  # noqa: SLF001
                if stat.record_occupancy
                else None
                for oram, stat in zip(orams, oram_stats)
            ]
            real_counts = [0] * len(orams)
            d_working_set = data_oram._working_set  # noqa: SLF001
            d_create = data_oram._create_on_miss  # noqa: SLF001
            is_write = op is Operation.WRITE
            # Coalescing state: per position-map ORAM, the block address of
            # the last *physical* path op and a live reference to that
            # block's label vector (payloads ride by reference through the
            # flat slot array and the NumPy object column alike, so
            # retargeting the list retargets the read-in block wherever it
            # currently rests — tree or stash).
            coalesce = self._coalesce and outer_index > 0
            last_block = [0] * (outer_index + 1)
            last_labels: list[list[int] | None] = [None] * (outer_index + 1)
            coalesced_counts = [0] * (outer_index + 1)
        else:
            coalesce = False
            pm_access = [oram.access_position_block for oram in orams]
            if self._dynamic_data:
                dynamic_access = data_oram.access_dynamic_path

                def data_access(address, current_leaf, new_leaf, op, data):
                    # The chain-read leaf is advisory under dynamic merging
                    # (the data ORAM's per-address mirror is authoritative).
                    return dynamic_access(address, new_leaf, op, data)

            else:
                data_access = (
                    data_oram.access_fixed_leaf
                    if data_oram._single_member_groups  # noqa: SLF001
                    else data_oram.access_path
                )
        # (threshold, stash dict) pairs: the per-access check is a len()
        # per thresholded ORAM, with no property or method hops.
        thresholded = tuple(
            (threshold, oram._stash_blocks)  # noqa: SLF001
            for oram, threshold in self._thresholded_orams
        )
        run_eviction = self._run_background_eviction
        stats = self._stats
        real = found_count = rounds_total = 0
        try:
            for address in addresses:
                group = group_of(address)
                for index, bits in enumerate(leaf_bits):
                    new_leaves[index] = getrandbits(bits) if bits else 0
                if cache is None:
                    chain = chain_for(group)
                else:
                    chain = cache.get(group)
                    if chain is None:
                        chain = cache[group] = chain_for(group)
                if not chain:
                    # Single-ORAM hierarchy: on-chip map holds data leaves.
                    current_leaf = onchip[group]
                    onchip[group] = new_leaves[0]
                elif all_fused:
                    # Deepest chain entry still served by the block of the
                    # last physical op at its level.  Matching entries form
                    # a suffix of the chain: a level-k match implies the
                    # level-k+1 blocks agree, because whichever access last
                    # really walked level k+1 also walked level k (real ops
                    # always cover a bottom segment of the chain).
                    divergence = 0
                    if coalesce:
                        while (
                            divergence < outer_index
                            and chain[divergence][0] != last_block[divergence + 1]
                        ):
                            divergence += 1
                    else:
                        divergence = outer_index
                    if divergence < outer_index:
                        # Ops above the boundary touch nothing: their
                        # blocks do not move and their labels still point
                        # at the (unmoved) shared sub-chain.
                        for oram_index in range(divergence + 2, outer_index + 1):
                            coalesced_counts[oram_index] += 1
                        # Boundary op: retarget this access's label inside
                        # the read-in block instead of a fresh path op.
                        boundary = divergence + 1
                        labels = last_labels[boundary]
                        block_address, slot = chain[divergence]
                        current_leaf = labels[slot]
                        labels[slot] = new_leaves[divergence]
                        coalesced_counts[boundary] += 1
                    else:
                        outer_group = chain[-1][0] - 1
                        current_leaf = onchip[outer_group]
                        onchip[outer_group] = new_leaves[outer_index]
                    for oram_index in range(divergence, 0, -1):
                        child_index = oram_index - 1
                        block_address, slot = chain[child_index]
                        pm_lists[oram_index][block_address - 1] = new_leaves[oram_index]
                        current_leaf, labels = fused_ops[oram_index](
                            block_address,
                            current_leaf,
                            new_leaves[oram_index],
                            True,
                            None,
                            False,
                            slot,
                            new_leaves[child_index],
                            labels_per_block[child_index],
                            child_num_leaves[child_index],
                        )
                        if coalesce:
                            last_block[oram_index] = block_address
                            last_labels[oram_index] = labels
                        real_counts[oram_index] += 1
                        sampler = occ_samplers[oram_index]
                        if sampler is not None:
                            sampler[0](len(sampler[1]))
                else:
                    outer_group = chain[-1][0] - 1
                    current_leaf = onchip[outer_group]
                    onchip[outer_group] = new_leaves[outer_index]
                    for oram_index in range(outer_index, 0, -1):
                        child_index = oram_index - 1
                        block_address, slot = chain[child_index]
                        current_leaf = pm_access[oram_index](
                            block_address,
                            current_leaf,
                            new_leaves[oram_index],
                            slot,
                            new_leaves[child_index],
                            labels_per_block[child_index],
                            child_num_leaves[child_index],
                        )
                if all_fused:
                    # Inlined data-ORAM step (access_fixed_leaf minus the
                    # wrapper: same validation, deferred stat counters).
                    if not 1 <= address <= d_working_set:
                        raise ConfigurationError(
                            f"address {address} outside [1, {d_working_set}]"
                        )
                    pm_lists[0][address - 1] = new_leaves[0]
                    _, found = fused_ops[0](
                        address, current_leaf, new_leaves[0],
                        is_write, data, d_create, None, 0, 0, 0,
                    )
                    if found:
                        found_count += 1
                    real_counts[0] += 1
                    sampler = occ_samplers[0]
                    if sampler is not None:
                        sampler[0](len(sampler[1]))
                else:
                    result = data_access(address, current_leaf, new_leaves[0], op, data)
                    found_count += result.found
                real += 1
                for threshold, stash_blocks in thresholded:
                    if len(stash_blocks) > threshold:
                        rounds_total += run_eviction()
                        break
        finally:
            stats.real_accesses += real
            if all_fused:
                for oram_stat, count in zip(oram_stats, real_counts):
                    oram_stat.real_accesses += count
                if coalesce:
                    for oram_index in range(1, outer_index + 1):
                        count = coalesced_counts[oram_index]
                        if count:
                            oram_stats[oram_index].coalesced_ops += count
        return TraceResult(accesses=real, found=found_count, dummy_accesses=rounds_total)

    def extract(self, address: int) -> dict[int, Any]:
        """Exclusive-ORAM fetch: remove the block's super-block group from
        the data ORAM (position-map ORAMs are traversed normally).

        Under dynamic super-block merging the position-map chain is walked
        for its access pattern exactly as usual, but the data ORAM's own
        per-address mirror decides which path holds each member (chain
        labels go stale when the merge policy regroups addresses), so the
        extraction routes through
        :meth:`PathORAM.extract_dynamic_path`, with the chain's fresh data
        leaf used only when the merge plan wants a fresh draw.
        """
        current_leaf = self._resolve_position_chain(address)
        if self._dynamic_data:
            extracted = self._orams[0].extract_dynamic_path(
                address, self._pending_data_leaf
            )
        else:
            extracted = self._orams[0].extract_path(
                address, current_leaf, self._pending_data_leaf
            )
        self._stats.real_accesses += 1
        self._run_background_eviction()
        return extracted

    def insert(self, address: int, data: Any = None) -> int:
        """Exclusive-ORAM write-back of an evicted cache line.

        No path is accessed (Section 3.3.1); the block drops into the data
        ORAM's stash at its group's current leaf, then background eviction
        runs across the hierarchy.
        """
        self._orams[0].insert(address, data)
        return self._run_background_eviction()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _chain_for(self, group: int) -> tuple[tuple[int, int], ...]:
        """For each position-map ORAM (innermost data side first), the
        ``(block_address, slot)`` holding the child's leaf label."""
        chain: list[tuple[int, int]] = []
        identifier = group
        for labels_per_block in self._labels_per_block:
            block_address = identifier // labels_per_block + 1
            chain.append((block_address, identifier % labels_per_block))
            identifier = block_address - 1
        return tuple(chain)

    def _identifier_chain(self, address: int) -> list[tuple[int, int]]:
        """Back-compat view of the chain for ``address`` (tests/tools)."""
        return list(self._chain_for(self._data_group_of(address)))

    def _resolve_position_chain(self, address: int) -> int:
        """Walk the position-map ORAMs outermost-first.

        Returns the data ORAM leaf currently assigned to ``address``'s group
        and leaves the freshly drawn new data-ORAM leaf in
        ``self._pending_data_leaf``.  Every position-map ORAM along the way
        is accessed (and its relevant entry updated to the child's new
        leaf) through :meth:`PathORAM.access_position_block`, exactly as
        ``accessHORAM`` prescribes.
        """
        group = self._data_group_of(address)
        new_leaves = self._new_leaves
        getrandbits = self._getrandbits
        for index, bits in enumerate(self._leaf_bits):
            new_leaves[index] = getrandbits(bits) if bits else 0
        self._pending_data_leaf = new_leaves[0]

        cache = self._chain_cache
        if cache is None:
            chain = self._chain_for(group)
        else:
            chain = cache.get(group)
            if chain is None:
                chain = cache[group] = self._chain_for(group)

        if not chain:
            # Single-ORAM hierarchy: the on-chip map holds data leaves directly.
            onchip = self._onchip_leaves
            current = onchip[group]
            onchip[group] = new_leaves[0]
            return current

        # The outermost position-map ORAM's own leaf comes from the on-chip
        # map (position-map ORAMs always use single-member groups, so the
        # group id is just the block address less one).
        outer_index = len(self._configs) - 1
        onchip = self._onchip_leaves
        outer_group = chain[-1][0] - 1
        current_leaf = onchip[outer_group]
        onchip[outer_group] = new_leaves[outer_index]

        # Walk from the outermost position-map ORAM inwards to ORAM_2.
        orams = self._orams
        labels_per_block = self._labels_per_block
        child_num_leaves = self._child_num_leaves
        for oram_index in range(outer_index, 0, -1):
            child_index = oram_index - 1
            block_address, slot = chain[child_index]
            current_leaf = orams[oram_index].access_position_block(
                block_address,
                current_leaf,
                new_leaves[oram_index],
                slot,
                new_leaves[child_index],
                labels_per_block[child_index],
                child_num_leaves[child_index],
            )
        return current_leaf

    def _run_background_eviction(self) -> int:
        """Issue dummy rounds until every stash is below its threshold."""
        rounds = 0
        while self._any_stash_over_threshold():
            for oram in self._eviction_order:  # smallest ORAM first, data last
                oram.dummy_access()
            rounds += 1
            self._stats.dummy_accesses += 1
            if rounds > self._livelock_limit:
                raise ReproError("hierarchical background eviction livelock")
        if rounds:
            self._check_stash_bounds()
        return rounds

    def _any_stash_over_threshold(self) -> bool:
        for oram, threshold in self._thresholded_orams:
            if oram.stash_occupancy > threshold:
                return True
        return False

    def _check_stash_bounds(self) -> None:
        for oram in self._orams:
            capacity = oram.config.stash_capacity
            if capacity is not None and oram.stash_occupancy > capacity:
                raise StashOverflowError(
                    f"{oram.config.name or 'ORAM'}: stash {oram.stash_occupancy} > {capacity}"
                )

    def total_dummy_rounds(self) -> int:
        """Dummy rounds issued since construction."""
        return self._stats.dummy_accesses

    def total_real_accesses(self) -> int:
        """Real hierarchical accesses since construction."""
        return self._stats.real_accesses
