"""Hierarchical (recursive) Path ORAM (Section 2.3).

``ORAM_1`` holds the program's data blocks; ``ORAM_2`` holds ``ORAM_1``'s
position map, packed ``k`` leaf labels per block; and so on until the
outermost position map fits on chip.  One logical access therefore walks the
chain outermost-first: each position-map lookup yields the leaf to read in
the next (larger) ORAM and simultaneously installs the fresh leaf that ORAM
is being remapped to.

The chain walk is the hierarchy's fast path: every round draws the whole
stack of fresh leaves into one reused buffer (a single ``getrandbits`` per
ORAM), resolves the per-level ``(block, slot)`` coordinates from a memoised
chain table, and drives each position-map ORAM through
:meth:`PathORAM.access_position_block` — the closure-free combined
lookup/install — so a recursive access costs H path operations and nothing
else.

Background eviction follows Section 3.1.1: whenever *any* stash in the
hierarchy exceeds its threshold, a dummy access is issued to *every* ORAM in
the same order as a normal access (smallest first, data ORAM last), so dummy
rounds are indistinguishable from real accesses.
"""

from __future__ import annotations

import random
import warnings
from typing import Any, Callable

from repro.core.background_eviction import NoEviction
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.path_oram import PathORAM
from repro.core.plb import PosMapLookaside
from repro.core.position_map import PositionMap
from repro.core.stats import AccessStats
from repro.core.super_block import DynamicSuperBlockMapper, SuperBlockMapper
from repro.core.tree import TreeStorage
from repro.core.types import AccessResult, Operation, TraceResult
from repro.errors import ConfigurationError, ReproError, StashOverflowError

StorageFactory = Callable[[ORAMConfig], TreeStorage]


def _fused_op(oram: PathORAM):
    """The ORAM's fully-inlined fused path op, or ``None``.

    The list engine's classified fast path and the column-native NumPy
    engine share one calling convention (see
    :meth:`PathORAM._fused_single_access`), so the hierarchical chain walk
    treats them interchangeably — a hierarchy may even mix them per level
    (e.g. a columnar data ORAM over list-backed position maps).
    """
    if oram._classified_fast:  # noqa: SLF001
        return oram._fused_single_access  # noqa: SLF001
    engine = oram._column_engine  # noqa: SLF001
    if engine is not None:
        return engine.fused_single_access
    return None


class HierarchicalPathORAM:
    """A chain of Path ORAMs implementing the recursive construction.

    Parameters
    ----------
    hierarchy:
        The :class:`HierarchyConfig` describing every ORAM in the chain.
    rng:
        Shared random source (seed for reproducibility).
    storage_factory:
        Optional callable building a tree-storage back-end per ORAM config
        (e.g. to use encrypted storage); defaults to the functional backend.
    record_path_trace:
        Forwarded to each underlying :class:`PathORAM`.
    livelock_limit:
        Safety cap on dummy rounds per eviction trigger.
    coalesce_position_ops:
        **Deprecated** — pass ``plb_entries_per_level=1`` instead, which
        reproduces coalescing bit for bit; setting this flag emits a
        ``DeprecationWarning``.
        When True, chain accesses that resolve through the most recently
        operated position-map block at a level are served from that block
        directly instead of issuing one path op per level per access.
        Results (found blocks, payloads, the position-map chain's
        consistency) are unchanged; the *physical* access sequence
        shrinks, so per-ORAM ``stats.path_reads`` drop and
        ``stats.coalesced_ops`` counts the ops saved.  Off by default
        because the physical trace differs from the per-access protocol
        (the differential suites pin that shape).  Since the PLB landed
        this flag is sugar for a capacity-1 lookaside buffer (see below).
    plb_entries_per_level:
        Capacity, in position-map blocks per chain level, of the PosMap
        Lookaside Buffer (:class:`~repro.core.plb.PosMapLookaside`, the
        Freecursive-style generalisation of ``coalesce_position_ops``).
        Every physical position-map path op installs its block's live
        label list; a later access whose chain passes through a cached
        block is served at that level — and every level above is skipped
        entirely — with no extra RNG draws (fresh leaves are drawn up
        front either way, so the stream matches the PLB-off run).  ``0``
        (the default) disables the buffer unless ``coalesce_position_ops``
        requests its capacity-1 degenerate form, which reproduces the
        PR 4 single-op memo bit for bit.  The buffer engages only when
        every position-map ORAM runs a fused (in-place label mutation)
        path op — on generic list/encrypted stacks it stays inert, like
        coalescing always has.  Hits count ``stats.plb_hits`` (on the ORAM
        that served the hit) and ``stats.coalesced_ops`` (on every skipped
        level); physical ops behind a lookup count ``stats.plb_misses``.
    """

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        rng: random.Random | None = None,
        storage_factory: StorageFactory | None = None,
        record_path_trace: bool = False,
        livelock_limit: int = 100_000,
        coalesce_position_ops: bool = False,
        plb_entries_per_level: int = 0,
        data_super_block_mapper: SuperBlockMapper | None = None,
    ) -> None:
        if plb_entries_per_level < 0:
            raise ConfigurationError("plb_entries_per_level must be >= 0")
        if coalesce_position_ops:
            warnings.warn(
                "coalesce_position_ops is deprecated; use "
                "plb_entries_per_level=1 — the capacity-1 PosMap Lookaside "
                "Buffer reproduces coalescing bit for bit",
                DeprecationWarning,
                stacklevel=2,
            )
        self._hierarchy = hierarchy
        self._rng = rng if rng is not None else random.Random()
        self._configs = hierarchy.oram_configs
        self._dynamic_data = isinstance(data_super_block_mapper, DynamicSuperBlockMapper)
        if self._dynamic_data and hierarchy.data_oram.super_block_size != 1:
            raise ConfigurationError(
                "dynamic super-block merging keeps the position map at "
                "per-address granularity; the data ORAM config must use "
                "super_block_size=1 (the mapper's max_group_size bounds "
                "runtime groups instead)"
            )
        self._orams: list[PathORAM] = []
        for index, config in enumerate(self._configs):
            storage = storage_factory(config) if storage_factory is not None else None
            self._orams.append(
                PathORAM(
                    config,
                    storage=storage,
                    eviction_policy=NoEviction(),
                    super_block_mapper=data_super_block_mapper if index == 0 else None,
                    rng=self._rng,
                    create_on_miss=True,
                    record_path_trace=record_path_trace,
                )
            )
        # labels_per_block[i] = how many leaf labels of ORAM i fit in one
        # block of ORAM i+1 (both zero-indexed, data ORAM = 0).
        self._labels_per_block = [
            hierarchy.labels_per_position_block(self._configs[i])
            for i in range(len(self._configs) - 1)
        ]
        self._child_num_leaves = [config.num_leaves for config in self._configs]
        outer = self._configs[-1]
        self._onchip_position_map = PositionMap(
            outer.position_map_entries, outer.num_leaves, rng=self._rng
        )
        self._stats = AccessStats()
        self._livelock_limit = livelock_limit
        # Hot-path caches for the chain walk and the eviction rounds:
        # * one reused buffer of fresh leaves, filled by a single
        #   getrandbits draw per ORAM (leaf counts are powers of two);
        # * the (block, slot) chain per data-ORAM group, memoised — the
        #   divmod ladder is pure arithmetic on the group id;
        # * the on-chip position map's entry list, so the outermost
        #   lookup/install is one list index;
        # * dummy rounds walk the ORAMs smallest-first (the reverse of
        #   construction order) and re-check only stashes with a threshold.
        self._leaf_bits = [(config.num_leaves - 1).bit_length() for config in self._configs]
        self._new_leaves = [0] * len(self._configs)
        self._getrandbits = self._rng.getrandbits
        # Chain memoisation is worth one dict entry per accessed group only
        # while the map stays small (like path_oram's _deepest_table, which
        # is disabled for big trees); past the cutoff the divmod ladder is
        # recomputed per access.
        data_groups = self._orams[0].super_block_mapper.num_groups(
            self._configs[0].working_set_blocks
        )
        self._chain_cache: dict[int, tuple[tuple[int, int], ...]] | None = (
            {} if data_groups <= 1 << 16 else None
        )
        self._data_group_of = self._orams[0].super_block_mapper.group_of
        self._onchip_leaves = self._onchip_position_map.leaves
        self._pending_data_leaf = 0
        self._coalesce = coalesce_position_ops
        # PosMap Lookaside Buffer: coalesce_position_ops is its capacity-1
        # degenerate form, so the two knobs share one engine.  The buffer
        # only engages when every position-map level has a fused path op
        # (in-place label mutation keeps cached references live); on
        # generic stacks it stays allocated-but-inert, mirroring how
        # coalescing has always silently no-opped there.
        self._plb_entries = plb_entries_per_level
        capacity = max(plb_entries_per_level, 1 if coalesce_position_ops else 0)
        self._plb: PosMapLookaside | None = (
            PosMapLookaside(len(self._configs), capacity)
            if capacity and len(self._configs) > 1
            else None
        )
        self._plb_active = self._plb is not None and all(
            _fused_op(oram) is not None for oram in self._orams[1:]
        )
        self._install_plb_observers()
        self._eviction_order = tuple(reversed(self._orams))
        self._thresholded_orams = tuple(
            (oram, oram.eviction_threshold)
            for oram in self._orams
            if oram.eviction_threshold is not None
        )

    def _install_plb_observers(self) -> None:
        """(Re-)install the PLB coherence closures on the chain's ORAMs.

        Shared by construction and :meth:`__setstate__`: the observers are
        closures over the PLB (unpicklable by design), so a snapshot strips
        them from every child ORAM and a restore re-installs them here.
        """
        if not self._plb_active:
            return
        plb = self._plb
        for level, oram in enumerate(self._orams[1:], start=1):

            def _observe(address, labels, _level=level, _plb=plb):
                # access_position_block coherence hook: a fused op hands
                # over the block's live label list (install/refresh); a
                # re-materialising op hands None (drop any stale ref).
                if labels is None:
                    _plb.invalidate(_level, address)
                else:
                    _plb.install(_level, address, labels)

            oram._position_block_observer = _observe  # noqa: SLF001
        if self._dynamic_data and self._labels_per_block:
            k = self._labels_per_block[0]

            def _retarget(lo, hi, _plb=plb, _k=k):
                # A dynamic cohort move re-leafed [lo, hi) behind the
                # chain's back: drop every level-1 position-map block
                # covering the span before a stale label can be served.
                _plb.invalidate_range(1, (lo - 1) // _k + 1, (hi - 2) // _k + 1)

            self._orams[0]._retarget_observer = _retarget  # noqa: SLF001

    # ------------------------------------------------------------------
    # Checkpoint/resume
    # ------------------------------------------------------------------
    #: Envelope kind tag written by :meth:`snapshot` (see repro.core.snapshot).
    SNAPSHOT_KIND = "hierarchical-path-oram"

    def __setstate__(self, state: dict) -> None:
        # The child ORAMs' __getstate__ stripped the PLB observer closures;
        # everything else (shared RNG, the PLB's live label-list references
        # into the chain's blocks, the memoised chain tables) round-trips
        # through the pickle memo with aliasing intact.
        self.__dict__.update(state)
        self._install_plb_observers()

    def snapshot(self) -> dict:
        """Capture the whole chain's state in a versioned envelope.

        Covers every ORAM in the chain (storage, stash, position map,
        stats), the on-chip position map, the PLB contents and the shared
        ``random.Random`` state, so a :meth:`restore`'d hierarchy continues
        bit-identically to this one.
        """
        from repro.core.snapshot import make_snapshot

        return make_snapshot(self, self.SNAPSHOT_KIND)

    @classmethod
    def restore(cls, snapshot: dict) -> "HierarchicalPathORAM":
        """Reconstruct a hierarchy from a :meth:`snapshot` envelope.

        Raises :class:`~repro.errors.CheckpointError` on version, format or
        kind mismatches.
        """
        from repro.core.snapshot import load_snapshot

        return load_snapshot(snapshot, cls.SNAPSHOT_KIND, cls)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> HierarchyConfig:
        return self._hierarchy

    @property
    def orams(self) -> tuple[PathORAM, ...]:
        """The underlying ORAMs, data ORAM first."""
        return tuple(self._orams)

    @property
    def data_oram(self) -> PathORAM:
        return self._orams[0]

    @property
    def num_orams(self) -> int:
        return len(self._orams)

    @property
    def stats(self) -> AccessStats:
        """Hierarchy-level counters: real accesses and dummy *rounds*."""
        return self._stats

    @property
    def onchip_position_map(self) -> PositionMap:
        return self._onchip_position_map

    @property
    def coalesce_position_ops(self) -> bool:
        """Whether :meth:`access_many` coalesces position-map path ops."""
        return self._coalesce

    @property
    def plb(self) -> PosMapLookaside | None:
        """The PosMap Lookaside Buffer (None when disabled).

        Allocated whenever ``plb_entries_per_level`` or the legacy
        ``coalesce_position_ops`` knob requests capacity; *served* only
        when every position-map level runs a fused path op (see
        :attr:`plb_active`).
        """
        return self._plb

    @property
    def plb_active(self) -> bool:
        """Whether chain walks are actually served from the PLB."""
        return self._plb_active

    @property
    def plb_entries_per_level(self) -> int:
        """The requested PLB capacity (0 = legacy/off; the effective
        capacity of :attr:`plb` also counts ``coalesce_position_ops``)."""
        return self._plb_entries

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(
        self, address: int, op: Operation = Operation.READ, data: Any = None
    ) -> AccessResult:
        """One full hierarchical access (``accessHORAM`` in Section 2.3).

        With a dynamic super-block mapper on the data ORAM, the chain walk
        is performed exactly as usual (same position-map ORAM accesses,
        same fresh-leaf install), but the data ORAM's per-address mirror is
        authoritative for where the block truly is — the chain's stored
        label can be stale for members a merge retargeted while they sat in
        the stash; see :meth:`PathORAM.access_dynamic_path`.
        """
        current_leaf = self._resolve_position_chain(address)
        if self._dynamic_data:
            result = self._orams[0].access_dynamic_path(
                address, self._pending_data_leaf, op, data
            )
            self._plb_dynamic_recheck(address)
        else:
            result = self._orams[0].access_path(
                address, current_leaf, self._pending_data_leaf, op, data
            )
        self._stats.real_accesses += 1
        result.dummy_accesses = self._run_background_eviction()
        return result

    def read(self, address: int) -> AccessResult:
        return self.access(address, Operation.READ)

    def write(self, address: int, data: Any) -> AccessResult:
        return self.access(address, Operation.WRITE, data)

    def access_many(
        self,
        addresses: Any,
        op: Operation = Operation.READ,
        data: Any = None,
    ) -> TraceResult:
        """Consume a whole trace of addresses in one fused chain loop.

        Bit-for-bit identical to ``for a in addresses: self.access(a, op,
        data)``: the position-map chain walk is inlined with every lookup
        hoisted out of the loop, the data-ORAM step takes the single-member
        :meth:`~repro.core.path_oram.PathORAM.access_fixed_leaf` fast path
        when it can (the generic ``access_path`` otherwise, e.g. with super
        blocks), and the per-access over-threshold check reads the stash
        sizes directly — the dummy-round machinery is only entered when a
        stash is actually over its threshold.

        With the PosMap Lookaside Buffer (``plb_entries_per_level``, or
        its capacity-1 ``coalesce_position_ops`` form) the loop
        additionally skips every position-map path operation whose block
        is still in the per-level label cache: the access that physically
        read the block in shares its fused path op with every later access
        that resolves through it, which only retargets its label inside
        the cached block (see the constructor's parameter descriptions).
        Logical results are unchanged; the physical op sequence is not.
        """
        orams = self._orams
        data_oram = orams[0]
        outer_index = len(self._configs) - 1
        leaf_bits = self._leaf_bits
        new_leaves = self._new_leaves
        getrandbits = self._getrandbits
        cache = self._chain_cache
        chain_for = self._chain_for
        onchip = self._onchip_leaves
        group_of = self._data_group_of
        labels_per_block = self._labels_per_block
        child_num_leaves = self._child_num_leaves
        # When every ORAM has a fully-inlined fused path op — the list
        # engine's classified fast path or the column-native engine — each
        # level is one direct call with deferred per-ORAM stat counters;
        # otherwise each level goes through its public method.
        fused_ops = [_fused_op(oram) for oram in orams]
        all_fused = data_oram._single_member_groups and all(  # noqa: SLF001
            fused is not None for fused in fused_ops
        )
        if all_fused:
            pm_lists = [oram._pm_leaves for oram in orams]  # noqa: SLF001
            oram_stats = [oram._stats for oram in orams]  # noqa: SLF001
            occ_samplers = [
                (stat.stash_occupancy_samples.append, oram._stash_blocks)  # noqa: SLF001
                if stat.record_occupancy
                else None
                for oram, stat in zip(orams, oram_stats)
            ]
            real_counts = [0] * len(orams)
            d_working_set = data_oram._working_set  # noqa: SLF001
            d_create = data_oram._create_on_miss  # noqa: SLF001
            is_write = op is Operation.WRITE
            # Lookaside state: per position-map ORAM, the PLB's dict of
            # recently operated block addresses mapped to live references
            # to their label vectors (payloads ride by reference through
            # the flat slot array and the NumPy object column alike, so
            # retargeting a cached list retargets the read-in block
            # wherever it currently rests — tree or stash).  The dict ops
            # are inlined below; per-level hit/miss/coalesced counts are
            # deferred like the real-access counters and flushed once.
            plb = self._plb if self._plb_active else None
            lookaside = plb is not None and outer_index > 0
            if lookaside:
                plb_levels = plb.levels
                plb_capacity = plb.entries_per_level
                coalesced_counts = [0] * (outer_index + 1)
                plb_hit_counts = [0] * (outer_index + 1)
                plb_miss_counts = [0] * (outer_index + 1)
        else:
            lookaside = False
            walk_chain = self._walk_position_chain
            dynamic_recheck = (
                self._plb_dynamic_recheck
                if self._dynamic_data and self._plb_active
                else None
            )
            if self._dynamic_data:
                dynamic_access = data_oram.access_dynamic_path

                def data_access(address, current_leaf, new_leaf, op, data):
                    # The chain-read leaf is advisory under dynamic merging
                    # (the data ORAM's per-address mirror is authoritative).
                    return dynamic_access(address, new_leaf, op, data)

            else:
                data_access = (
                    data_oram.access_fixed_leaf
                    if data_oram._single_member_groups  # noqa: SLF001
                    else data_oram.access_path
                )
        # (threshold, stash dict) pairs: the per-access check is a len()
        # per thresholded ORAM, with no property or method hops.
        thresholded = tuple(
            (threshold, oram._stash_blocks)  # noqa: SLF001
            for oram, threshold in self._thresholded_orams
        )
        run_eviction = self._run_background_eviction
        stats = self._stats
        real = found_count = rounds_total = 0
        try:
            for address in addresses:
                group = group_of(address)
                for index, bits in enumerate(leaf_bits):
                    new_leaves[index] = getrandbits(bits) if bits else 0
                if cache is None:
                    chain = chain_for(group)
                else:
                    chain = cache.get(group)
                    if chain is None:
                        chain = cache[group] = chain_for(group)
                if not chain:
                    # Single-ORAM hierarchy: on-chip map holds data leaves.
                    current_leaf = onchip[group]
                    onchip[group] = new_leaves[0]
                elif all_fused:
                    # Deepest chain entry whose position-map block is still
                    # in the lookaside buffer at its level.  A hit is safe
                    # wherever it lands: serving it leaves the cached block
                    # unmoved (no read, no remap), so the label for it one
                    # level up stays accurate and every level above can be
                    # skipped outright.  Scan inner-to-outer; the first hit
                    # wins because it skips the most ops.
                    divergence = 0
                    if lookaside:
                        while divergence < outer_index:
                            level_cache = plb_levels[divergence + 1]
                            hit_labels = level_cache.get(chain[divergence][0])
                            if hit_labels is not None:
                                break
                            divergence += 1
                    else:
                        divergence = outer_index
                    if divergence < outer_index:
                        # Ops above the boundary touch nothing: their
                        # blocks do not move and their labels still point
                        # at the (unmoved) cached block's sub-chain.
                        for oram_index in range(divergence + 2, outer_index + 1):
                            coalesced_counts[oram_index] += 1
                        # Boundary hit: retarget this access's label inside
                        # the cached block instead of a fresh path op, and
                        # MRU-promote the served entry.
                        boundary = divergence + 1
                        block_address, slot = chain[divergence]
                        current_leaf = hit_labels[slot]
                        hit_labels[slot] = new_leaves[divergence]
                        del level_cache[block_address]
                        level_cache[block_address] = hit_labels
                        coalesced_counts[boundary] += 1
                        plb_hit_counts[boundary] += 1
                    else:
                        outer_group = chain[-1][0] - 1
                        current_leaf = onchip[outer_group]
                        onchip[outer_group] = new_leaves[outer_index]
                    for oram_index in range(divergence, 0, -1):
                        child_index = oram_index - 1
                        block_address, slot = chain[child_index]
                        pm_lists[oram_index][block_address - 1] = new_leaves[oram_index]
                        current_leaf, labels = fused_ops[oram_index](
                            block_address,
                            current_leaf,
                            new_leaves[oram_index],
                            True,
                            None,
                            False,
                            slot,
                            new_leaves[child_index],
                            labels_per_block[child_index],
                            child_num_leaves[child_index],
                        )
                        if lookaside:
                            # This level's lookup missed; install the op's
                            # live label list (MRU), evicting the oldest
                            # entry past capacity.
                            level_cache = plb_levels[oram_index]
                            if block_address in level_cache:
                                del level_cache[block_address]
                            elif len(level_cache) >= plb_capacity:
                                del level_cache[next(iter(level_cache))]
                            level_cache[block_address] = labels
                            plb_miss_counts[oram_index] += 1
                        real_counts[oram_index] += 1
                        sampler = occ_samplers[oram_index]
                        if sampler is not None:
                            sampler[0](len(sampler[1]))
                else:
                    current_leaf = walk_chain(chain, new_leaves)
                if all_fused:
                    # Inlined data-ORAM step (access_fixed_leaf minus the
                    # wrapper: same validation, deferred stat counters).
                    if not 1 <= address <= d_working_set:
                        raise ConfigurationError(
                            f"address {address} outside [1, {d_working_set}]"
                        )
                    pm_lists[0][address - 1] = new_leaves[0]
                    _, found = fused_ops[0](
                        address, current_leaf, new_leaves[0],
                        is_write, data, d_create, None, 0, 0, 0,
                    )
                    if found:
                        found_count += 1
                    real_counts[0] += 1
                    sampler = occ_samplers[0]
                    if sampler is not None:
                        sampler[0](len(sampler[1]))
                else:
                    result = data_access(address, current_leaf, new_leaves[0], op, data)
                    found_count += result.found
                    if dynamic_recheck is not None:
                        dynamic_recheck(address)
                real += 1
                for threshold, stash_blocks in thresholded:
                    if len(stash_blocks) > threshold:
                        rounds_total += run_eviction()
                        break
        finally:
            stats.real_accesses += real
            if all_fused:
                for oram_stat, count in zip(oram_stats, real_counts):
                    oram_stat.real_accesses += count
                if lookaside:
                    hits_total = misses_total = 0
                    for oram_index in range(1, outer_index + 1):
                        oram_stat = oram_stats[oram_index]
                        count = coalesced_counts[oram_index]
                        if count:
                            oram_stat.coalesced_ops += count
                        hits = plb_hit_counts[oram_index]
                        if hits:
                            oram_stat.plb_hits += hits
                            hits_total += hits
                        misses = plb_miss_counts[oram_index]
                        if misses:
                            oram_stat.plb_misses += misses
                            misses_total += misses
                    plb.hits += hits_total
                    plb.misses += misses_total
        return TraceResult(accesses=real, found=found_count, dummy_accesses=rounds_total)

    def extract(self, address: int) -> dict[int, Any]:
        """Exclusive-ORAM fetch: remove the block's super-block group from
        the data ORAM (position-map ORAMs are traversed normally).

        Under dynamic super-block merging the position-map chain is walked
        for its access pattern exactly as usual, but the data ORAM's own
        per-address mirror decides which path holds each member (chain
        labels go stale when the merge policy regroups addresses), so the
        extraction routes through
        :meth:`PathORAM.extract_dynamic_path`, with the chain's fresh data
        leaf used only when the merge plan wants a fresh draw.
        """
        current_leaf = self._resolve_position_chain(address)
        if self._dynamic_data:
            extracted = self._orams[0].extract_dynamic_path(
                address, self._pending_data_leaf
            )
            self._plb_dynamic_recheck(address)
        else:
            extracted = self._orams[0].extract_path(
                address, current_leaf, self._pending_data_leaf
            )
        self._stats.real_accesses += 1
        self._run_background_eviction()
        return extracted

    def insert(self, address: int, data: Any = None) -> int:
        """Exclusive-ORAM write-back of an evicted cache line.

        No path is accessed (Section 3.3.1); the block drops into the data
        ORAM's stash at its group's current leaf, then background eviction
        runs across the hierarchy.
        """
        self._orams[0].insert(address, data)
        return self._run_background_eviction()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _chain_for(self, group: int) -> tuple[tuple[int, int], ...]:
        """For each position-map ORAM (innermost data side first), the
        ``(block_address, slot)`` holding the child's leaf label."""
        chain: list[tuple[int, int]] = []
        identifier = group
        for labels_per_block in self._labels_per_block:
            block_address = identifier // labels_per_block + 1
            chain.append((block_address, identifier % labels_per_block))
            identifier = block_address - 1
        return tuple(chain)

    def _identifier_chain(self, address: int) -> list[tuple[int, int]]:
        """Back-compat view of the chain for ``address`` (tests/tools)."""
        return list(self._chain_for(self._data_group_of(address)))

    def _resolve_position_chain(self, address: int) -> int:
        """Walk the position-map ORAMs outermost-first.

        Returns the data ORAM leaf currently assigned to ``address``'s group
        and leaves the freshly drawn new data-ORAM leaf in
        ``self._pending_data_leaf``.  Every position-map ORAM along the way
        is accessed (and its relevant entry updated to the child's new
        leaf) through :meth:`PathORAM.access_position_block`, exactly as
        ``accessHORAM`` prescribes.
        """
        group = self._data_group_of(address)
        new_leaves = self._new_leaves
        getrandbits = self._getrandbits
        for index, bits in enumerate(self._leaf_bits):
            new_leaves[index] = getrandbits(bits) if bits else 0
        self._pending_data_leaf = new_leaves[0]

        cache = self._chain_cache
        if cache is None:
            chain = self._chain_for(group)
        else:
            chain = cache.get(group)
            if chain is None:
                chain = cache[group] = self._chain_for(group)

        if not chain:
            # Single-ORAM hierarchy: the on-chip map holds data leaves directly.
            onchip = self._onchip_leaves
            current = onchip[group]
            onchip[group] = new_leaves[0]
            return current

        return self._walk_position_chain(chain, new_leaves)

    def _walk_position_chain(
        self, chain: tuple[tuple[int, int], ...], new_leaves: list[int]
    ) -> int:
        """One position-map chain walk, outermost-first, PLB-served.

        The shared walk behind the looped :meth:`access` path and the
        non-fused :meth:`access_many` branch (the fully-fused branch
        inlines the same logic with deferred counters).  When the PosMap
        Lookaside Buffer is active, the deepest chain entry whose block is
        cached is served in place of its path op — and every level above
        it is skipped — exactly as in the fused loop; physical ops install
        their blocks through :meth:`PathORAM.access_position_block`'s
        observer hook.  ``new_leaves`` must already hold this access's
        fresh leaf for every level (they are drawn up front either way, so
        a hit consumes no extra randomness).
        """
        orams = self._orams
        outer_index = len(self._configs) - 1
        plb = self._plb if self._plb_active else None
        divergence = outer_index
        if plb is not None:
            plb_levels = plb.levels
            divergence = 0
            while divergence < outer_index:
                level_cache = plb_levels[divergence + 1]
                hit_labels = level_cache.get(chain[divergence][0])
                if hit_labels is not None:
                    break
                divergence += 1
        if divergence < outer_index:
            # Boundary hit: serve this access's label from the cached
            # block (MRU-promoting it); the levels above are skipped.
            boundary = divergence + 1
            block_address, slot = chain[divergence]
            current_leaf = hit_labels[slot]
            hit_labels[slot] = new_leaves[divergence]
            del level_cache[block_address]
            level_cache[block_address] = hit_labels
            plb.hits += 1
            boundary_stats = orams[boundary].stats
            boundary_stats.plb_hits += 1
            boundary_stats.coalesced_ops += 1
            for oram_index in range(divergence + 2, outer_index + 1):
                orams[oram_index].stats.coalesced_ops += 1
        else:
            # The outermost position-map ORAM's own leaf comes from the
            # on-chip map (position-map ORAMs always use single-member
            # groups, so the group id is just the block address less one).
            onchip = self._onchip_leaves
            outer_group = chain[-1][0] - 1
            current_leaf = onchip[outer_group]
            onchip[outer_group] = new_leaves[outer_index]

        # Walk from the boundary (or the outermost ORAM) inwards to ORAM_2;
        # each physical op's observer installs its block into the PLB.
        labels_per_block = self._labels_per_block
        child_num_leaves = self._child_num_leaves
        for oram_index in range(divergence, 0, -1):
            child_index = oram_index - 1
            block_address, slot = chain[child_index]
            current_leaf = orams[oram_index].access_position_block(
                block_address,
                current_leaf,
                new_leaves[oram_index],
                slot,
                new_leaves[child_index],
                labels_per_block[child_index],
                child_num_leaves[child_index],
            )
            if plb is not None:
                plb.misses += 1
                orams[oram_index].stats.plb_misses += 1
        return current_leaf

    def _plb_dynamic_recheck(self, address: int) -> None:
        """Post-data-access coherence check under dynamic super blocks.

        The chain walk installed ``new_leaves[0]`` as ``address``'s label,
        but the dynamic plan may have kept the block on its cohort's
        anchor leaf instead (no cohort *move*, so the retarget observer
        never fired).  If the data ORAM's authoritative mirror disagrees
        with what the chain installed, the level-1 position-map block
        covering ``address`` now holds a stale label — drop it from the
        PLB before it can be served.
        """
        if not self._plb_active or not self._labels_per_block:
            return
        if self._orams[0]._pm_leaves[address - 1] != self._new_leaves[0]:  # noqa: SLF001
            k = self._labels_per_block[0]
            self._plb.invalidate(1, self._data_group_of(address) // k + 1)

    def _run_background_eviction(self) -> int:
        """Issue dummy rounds until every stash is below its threshold."""
        rounds = 0
        while self._any_stash_over_threshold():
            for oram in self._eviction_order:  # smallest ORAM first, data last
                oram.dummy_access()
            rounds += 1
            self._stats.dummy_accesses += 1
            if rounds > self._livelock_limit:
                raise ReproError("hierarchical background eviction livelock")
        if rounds:
            self._check_stash_bounds()
        return rounds

    def _any_stash_over_threshold(self) -> bool:
        for oram, threshold in self._thresholded_orams:
            if oram.stash_occupancy > threshold:
                return True
        return False

    def _check_stash_bounds(self) -> None:
        for oram in self._orams:
            capacity = oram.config.stash_capacity
            if capacity is not None and oram.stash_occupancy > capacity:
                raise StashOverflowError(
                    f"{oram.config.name or 'ORAM'}: stash {oram.stash_occupancy} > {capacity}"
                )

    def total_dummy_rounds(self) -> int:
        """Dummy rounds issued since construction."""
        return self._stats.dummy_accesses

    def total_real_accesses(self) -> int:
        """Real hierarchical accesses since construction."""
        return self._stats.real_accesses
