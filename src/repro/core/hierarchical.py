"""Hierarchical (recursive) Path ORAM (Section 2.3).

``ORAM_1`` holds the program's data blocks; ``ORAM_2`` holds ``ORAM_1``'s
position map, packed ``k`` leaf labels per block; and so on until the
outermost position map fits on chip.  One logical access therefore walks the
chain outermost-first: each position-map lookup yields the leaf to read in
the next (larger) ORAM and simultaneously installs the fresh leaf that ORAM
is being remapped to.

Background eviction follows Section 3.1.1: whenever *any* stash in the
hierarchy exceeds its threshold, a dummy access is issued to *every* ORAM in
the same order as a normal access (smallest first, data ORAM last), so dummy
rounds are indistinguishable from real accesses.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.core.background_eviction import NoEviction
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.path_oram import PathORAM
from repro.core.position_map import PositionMap
from repro.core.stats import AccessStats
from repro.core.tree import TreeStorage
from repro.core.types import AccessResult, Operation
from repro.errors import ReproError, StashOverflowError

StorageFactory = Callable[[ORAMConfig], TreeStorage]


class HierarchicalPathORAM:
    """A chain of Path ORAMs implementing the recursive construction.

    Parameters
    ----------
    hierarchy:
        The :class:`HierarchyConfig` describing every ORAM in the chain.
    rng:
        Shared random source (seed for reproducibility).
    storage_factory:
        Optional callable building a tree-storage back-end per ORAM config
        (e.g. to use encrypted storage); defaults to the functional backend.
    record_path_trace:
        Forwarded to each underlying :class:`PathORAM`.
    livelock_limit:
        Safety cap on dummy rounds per eviction trigger.
    """

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        rng: random.Random | None = None,
        storage_factory: StorageFactory | None = None,
        record_path_trace: bool = False,
        livelock_limit: int = 100_000,
    ) -> None:
        self._hierarchy = hierarchy
        self._rng = rng if rng is not None else random.Random()
        self._configs = hierarchy.oram_configs
        self._orams: list[PathORAM] = []
        for config in self._configs:
            storage = storage_factory(config) if storage_factory is not None else None
            self._orams.append(
                PathORAM(
                    config,
                    storage=storage,
                    eviction_policy=NoEviction(),
                    rng=self._rng,
                    create_on_miss=True,
                    record_path_trace=record_path_trace,
                )
            )
        # labels_per_block[i] = how many leaf labels of ORAM i fit in one
        # block of ORAM i+1 (both zero-indexed, data ORAM = 0).
        self._labels_per_block = [
            hierarchy.labels_per_position_block(self._configs[i])
            for i in range(len(self._configs) - 1)
        ]
        outer = self._configs[-1]
        self._onchip_position_map = PositionMap(
            outer.position_map_entries, outer.num_leaves, rng=self._rng
        )
        self._stats = AccessStats()
        self._livelock_limit = livelock_limit
        # Hot-path caches for the background-eviction rounds: dummy rounds
        # re-check every stash threshold after every round, and each round
        # walks the ORAMs smallest-first (the reverse of construction order).
        self._eviction_order = tuple(reversed(self._orams))
        self._thresholded_orams = tuple(
            (oram, oram.eviction_threshold)
            for oram in self._orams
            if oram.eviction_threshold is not None
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> HierarchyConfig:
        return self._hierarchy

    @property
    def orams(self) -> tuple[PathORAM, ...]:
        """The underlying ORAMs, data ORAM first."""
        return tuple(self._orams)

    @property
    def data_oram(self) -> PathORAM:
        return self._orams[0]

    @property
    def num_orams(self) -> int:
        return len(self._orams)

    @property
    def stats(self) -> AccessStats:
        """Hierarchy-level counters: real accesses and dummy *rounds*."""
        return self._stats

    @property
    def onchip_position_map(self) -> PositionMap:
        return self._onchip_position_map

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def access(self, address: int, op: Operation = Operation.READ, data: Any = None) -> AccessResult:
        """One full hierarchical access (``accessHORAM`` in Section 2.3)."""
        current_leaf = self._resolve_position_chain(address)
        result = self._orams[0].access_path(
            address, current_leaf, self._pending_data_leaf, op, data
        )
        self._stats.record_real_access()
        dummy_rounds = self._run_background_eviction()
        result.dummy_accesses = dummy_rounds
        return result

    def read(self, address: int) -> AccessResult:
        return self.access(address, Operation.READ)

    def write(self, address: int, data: Any) -> AccessResult:
        return self.access(address, Operation.WRITE, data)

    def extract(self, address: int) -> dict[int, Any]:
        """Exclusive-ORAM fetch: remove the block's super-block group from
        the data ORAM (position-map ORAMs are traversed normally)."""
        current_leaf = self._resolve_position_chain(address)
        extracted = self._orams[0].extract_path(address, current_leaf, self._pending_data_leaf)
        self._stats.record_real_access()
        self._run_background_eviction()
        return extracted

    def insert(self, address: int, data: Any = None) -> int:
        """Exclusive-ORAM write-back of an evicted cache line.

        No path is accessed (Section 3.3.1); the block drops into the data
        ORAM's stash at its group's current leaf, then background eviction
        runs across the hierarchy.
        """
        self._orams[0].insert(address, data)
        return self._run_background_eviction()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _identifier_chain(self, address: int) -> list[tuple[int, int]]:
        """For each position-map ORAM (innermost data side first), the
        ``(block_address, slot)`` holding the child's leaf label."""
        chain: list[tuple[int, int]] = []
        identifier = self._orams[0].super_block_mapper.group_of(address)
        for labels_per_block in self._labels_per_block:
            block_address = identifier // labels_per_block + 1
            slot = identifier % labels_per_block
            chain.append((block_address, slot))
            identifier = block_address - 1
        return chain

    def _resolve_position_chain(self, address: int) -> int:
        """Walk the position-map ORAMs outermost-first.

        Returns the data ORAM leaf currently assigned to ``address``'s group
        and leaves the freshly drawn new data-ORAM leaf in
        ``self._pending_data_leaf``.  Every position-map ORAM along the way
        is accessed (and its relevant entry updated to the child's new
        leaf), exactly as ``accessHORAM`` prescribes.
        """
        chain = self._identifier_chain(address)
        new_leaves = [self._rng.randrange(cfg.num_leaves) for cfg in self._configs]
        self._pending_data_leaf = new_leaves[0]

        if not chain:
            # Single-ORAM hierarchy: the on-chip map holds data leaves directly.
            group = self._orams[0].super_block_mapper.group_of(address)
            current = self._onchip_position_map.lookup(group)
            self._onchip_position_map.assign(group, new_leaves[0])
            return current

        # The outermost position-map ORAM's own leaf comes from the on-chip map.
        outer_index = len(self._configs) - 1
        outer_block_address, _ = chain[-1]
        outer_group = self._orams[outer_index].super_block_mapper.group_of(outer_block_address)
        current_leaf = self._onchip_position_map.lookup(outer_group)
        self._onchip_position_map.assign(outer_group, new_leaves[outer_index])

        # Walk from the outermost position-map ORAM inwards to ORAM_2.
        for oram_index in range(outer_index, 0, -1):
            block_address, slot = chain[oram_index - 1]
            child_config = self._configs[oram_index - 1]
            child_new_leaf = new_leaves[oram_index - 1]
            labels_per_block = self._labels_per_block[oram_index - 1]
            captured: dict[str, int] = {}

            def mutate(labels: Any, *,
                       _slot: int = slot,
                       _k: int = labels_per_block,
                       _child_leaves: int = child_config.num_leaves,
                       _new: int = child_new_leaf,
                       _captured: dict[str, int] = captured) -> list[int]:
                if labels is None:
                    labels = [self._rng.randrange(_child_leaves) for _ in range(_k)]
                else:
                    labels = list(labels)
                _captured["current"] = labels[_slot]
                labels[_slot] = _new
                return labels

            self._orams[oram_index].access_path(
                block_address,
                current_leaf,
                new_leaves[oram_index],
                Operation.READ,
                None,
                mutate=mutate,
            )
            if "current" not in captured:
                raise ReproError("position-map block mutation did not run")
            current_leaf = captured["current"]
        return current_leaf

    def _run_background_eviction(self) -> int:
        """Issue dummy rounds until every stash is below its threshold."""
        rounds = 0
        while self._any_stash_over_threshold():
            for oram in self._eviction_order:  # smallest ORAM first, data last
                oram.dummy_access()
            rounds += 1
            self._stats.record_dummy_access()
            if rounds > self._livelock_limit:
                raise ReproError("hierarchical background eviction livelock")
        self._check_stash_bounds()
        return rounds

    def _any_stash_over_threshold(self) -> bool:
        for oram, threshold in self._thresholded_orams:
            if oram.stash_occupancy > threshold:
                return True
        return False

    def _check_stash_bounds(self) -> None:
        for oram in self._orams:
            capacity = oram.config.stash_capacity
            if capacity is not None and oram.stash_occupancy > capacity:
                raise StashOverflowError(
                    f"{oram.config.name or 'ORAM'}: stash {oram.stash_occupancy} > {capacity}"
                )

    def total_dummy_rounds(self) -> int:
        """Dummy rounds issued since construction."""
        return self._stats.dummy_accesses

    def total_real_accesses(self) -> int:
        """Real hierarchical accesses since construction."""
        return self._stats.real_accesses
