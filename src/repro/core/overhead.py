"""Analytic storage and access-overhead models (Section 2.4, Equations 1-2).

These functions compute the paper's metrics directly from configurations
(and, when available, measured dummy-access counts), independent of any
simulation.  They back the Figure 8/9/10 benchmark harnesses and the
Table 2 storage columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.stats import AccessStats


def theoretical_access_overhead(config: ORAMConfig) -> float:
    """``2 (L+1) M / B`` — data moved per useful bit, no dummy accesses."""
    return 2 * (config.levels + 1) * config.padded_bucket_bits / config.block_bits


def measured_access_overhead(config: ORAMConfig, stats: AccessStats) -> float:
    """Equation 1: the theoretical overhead scaled by ``(RA + DA) / RA``."""
    return stats.access_overhead(config.levels, config.padded_bucket_bits, config.block_bits)


def bytes_moved_per_access(config: ORAMConfig) -> int:
    """Bytes read plus written for one path access, ``2 (L+1) * bucket_bytes``."""
    return 2 * (config.levels + 1) * config.bucket_bytes


def hierarchy_theoretical_access_overhead(hierarchy: HierarchyConfig) -> float:
    """``sum_i 2 (L_i + 1) M_i / B_1`` — Equation 2 without dummy accesses."""
    data_block_bits = hierarchy.data_oram.block_bits
    total = 0.0
    for config in hierarchy.oram_configs:
        total += 2 * (config.levels + 1) * config.padded_bucket_bits
    return total / data_block_bits


def hierarchy_measured_access_overhead(
    hierarchy: HierarchyConfig, real_accesses: int, dummy_accesses: int
) -> float:
    """Equation 2: the hierarchical overhead scaled by ``(RA + DA) / RA``."""
    theoretical = hierarchy_theoretical_access_overhead(hierarchy)
    if real_accesses == 0:
        return theoretical
    return (real_accesses + dummy_accesses) / real_accesses * theoretical


def hierarchy_overhead_breakdown(hierarchy: HierarchyConfig) -> list[float]:
    """Per-ORAM contribution to Equation 2 (the Figure 10 stacked bars)."""
    data_block_bits = hierarchy.data_oram.block_bits
    return [
        2 * (config.levels + 1) * config.padded_bucket_bits / data_block_bits
        for config in hierarchy.oram_configs
    ]


@dataclass(frozen=True)
class OnChipStorage:
    """On-chip storage requirement of an ORAM interface (Table 2 columns)."""

    stash_bytes: int
    position_map_bytes: int

    @property
    def stash_kilobytes(self) -> float:
        return self.stash_bytes / 1024

    @property
    def position_map_kilobytes(self) -> float:
        return self.position_map_bytes / 1024


def onchip_storage(hierarchy: HierarchyConfig) -> OnChipStorage:
    """Stash and final position-map storage for a hierarchical ORAM."""
    return OnChipStorage(
        stash_bytes=(hierarchy.onchip_stash_bits + 7) // 8,
        position_map_bytes=(hierarchy.onchip_position_map_bits + 7) // 8,
    )


def single_oram_onchip_storage(config: ORAMConfig) -> OnChipStorage:
    """Stash and position-map storage for a single (non-recursive) ORAM."""
    return OnChipStorage(
        stash_bytes=(config.stash_bits + 7) // 8,
        position_map_bytes=(config.position_map_bits + 7) // 8,
    )
