"""The Path ORAM stash (the 'local cache' of the original paper)."""

from __future__ import annotations

from typing import Iterable, Iterator, ItemsView

from repro.core.types import Block
from repro.errors import StashOverflowError


class Stash:
    """Holds up to ``capacity`` real blocks inside the ORAM interface.

    The stash is keyed by program address: Path ORAM never stores two copies
    of the same block, so an address uniquely identifies a stash entry.

    Blocks are additionally indexed by the leaf they are mapped to
    (:meth:`leaf_groups`).  The write-back step of the protocol buckets
    stash blocks by the deepest level they may legally occupy on the path
    being written, which depends only on a block's leaf; the leaf index lets
    it do that per *distinct leaf* instead of rescanning every block.  The
    index is maintained incrementally by :meth:`add`, :meth:`pop` and
    :meth:`retarget` — code outside this class must never assign
    ``block.leaf`` directly for a block that sits in the stash.

    Parameters
    ----------
    capacity:
        Maximum number of blocks, or ``None`` for an unbounded stash (used
        when studying failure probability with no background eviction).
    """

    def __init__(self, capacity: int | None = None) -> None:
        self._blocks: dict[int, Block] = {}
        self._by_leaf: dict[int, dict[int, Block]] = {}
        self._capacity = capacity
        self._max_occupancy = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, address: int) -> bool:
        return address in self._blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    @property
    def capacity(self) -> int | None:
        """Configured capacity (``None`` = unbounded)."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Current number of blocks held."""
        return len(self._blocks)

    @property
    def max_occupancy(self) -> int:
        """High-water mark of :attr:`occupancy` since construction."""
        return self._max_occupancy

    def add(self, block: Block) -> None:
        """Insert (or overwrite) a block.

        Raises
        ------
        StashOverflowError
            If the stash has a finite capacity and this insertion would
            exceed it.  With background eviction enabled the ORAM never
            lets this happen.
        """
        if block.is_dummy():
            return
        address = block.address
        previous = self._blocks.get(address)
        if (
            self._capacity is not None
            and previous is None
            and len(self._blocks) >= self._capacity
        ):
            raise StashOverflowError(
                f"stash overflow: capacity {self._capacity} exceeded"
            )
        if previous is not None and previous.leaf != block.leaf:
            self._drop_from_leaf_index(address, previous.leaf)
        self._blocks[address] = block
        group = self._by_leaf.get(block.leaf)
        if group is None:
            self._by_leaf[block.leaf] = {address: block}
        else:
            group[address] = block
        if len(self._blocks) > self._max_occupancy:
            self._max_occupancy = len(self._blocks)

    def remove_placed(self, blocks: Iterable[Block]) -> None:
        """Batch-remove blocks the write-back placed into the tree.

        Equivalent to :meth:`pop` per block, minus the per-call overhead —
        the protocol calls this once per path write-back.
        """
        stash = self._blocks
        by_leaf = self._by_leaf
        for block in blocks:
            address = block.address
            if stash.pop(address, None) is not None:
                group = by_leaf.get(block.leaf)
                if group is not None:
                    group.pop(address, None)
                    if not group:
                        del by_leaf[block.leaf]

    def get(self, address: int) -> Block | None:
        """Return the block at ``address`` (or ``None``) without removing it."""
        return self._blocks.get(address)

    def pop(self, address: int) -> Block | None:
        """Remove and return the block at ``address`` (or ``None``)."""
        block = self._blocks.pop(address, None)
        if block is not None:
            self._drop_from_leaf_index(address, block.leaf)
        return block

    def retarget(self, address: int, new_leaf: int) -> Block | None:
        """Point the block at ``address`` at ``new_leaf``, keeping the leaf
        index consistent.  Returns the block, or ``None`` if absent."""
        block = self._blocks.get(address)
        if block is None:
            return None
        if block.leaf != new_leaf:
            self._drop_from_leaf_index(address, block.leaf)
            block.leaf = new_leaf
            group = self._by_leaf.get(new_leaf)
            if group is None:
                self._by_leaf[new_leaf] = {address: block}
            else:
                group[address] = block
        return block

    def leaf_groups(self) -> ItemsView[int, dict[int, Block]]:
        """``(leaf, {address: block})`` pairs for every distinct leaf that
        currently has stash-resident blocks.  Do not mutate the stash while
        iterating."""
        return self._by_leaf.items()

    def blocks(self) -> list[Block]:
        """Snapshot list of all blocks currently in the stash."""
        return list(self._blocks.values())

    def addresses(self) -> list[int]:
        """Snapshot list of all addresses currently in the stash."""
        return list(self._blocks.keys())

    def clear(self) -> None:
        """Remove every block (used when resetting experiments)."""
        self._blocks.clear()
        self._by_leaf.clear()

    def _drop_from_leaf_index(self, address: int, leaf: int) -> None:
        group = self._by_leaf.get(leaf)
        if group is not None:
            group.pop(address, None)
            if not group:
                del self._by_leaf[leaf]
