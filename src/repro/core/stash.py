"""The Path ORAM stash (the 'local cache' of the original paper)."""

from __future__ import annotations

from typing import ItemsView, Iterable, Iterator

from repro.core.types import Block
from repro.errors import StashOverflowError


class Stash:
    """Holds up to ``capacity`` real blocks inside the ORAM interface.

    The stash is keyed by program address: Path ORAM never stores two copies
    of the same block, so an address uniquely identifies a stash entry.

    Blocks are additionally indexed by the leaf they are mapped to
    (:meth:`leaf_groups`).  The write-back step of the protocol buckets
    stash blocks by the deepest level they may legally occupy on the path
    being written, which depends only on a block's leaf; the leaf index lets
    it do that per *distinct leaf* instead of rescanning every block.  The
    same index makes the super-block operations batched: all members of a
    super block share one leaf, so an entire group can be retargeted or
    extracted by splitting one leaf bucket (:meth:`retarget_range`,
    :meth:`pop_range`) instead of touching the index once per member.

    The index is maintained incrementally by :meth:`add`, :meth:`pop` and
    :meth:`retarget` — code outside this class must never assign
    ``block.leaf`` directly for a block that sits in the stash.  Within a
    leaf bucket blocks are unordered (removal swaps with the last entry).

    Parameters
    ----------
    capacity:
        Maximum number of blocks, or ``None`` for an unbounded stash (used
        when studying failure probability with no background eviction).
    """

    def __init__(self, capacity: int | None = None) -> None:
        self._blocks: dict[int, Block] = {}
        self._by_leaf: dict[int, list[Block]] = {}
        self._capacity = capacity
        self._max_occupancy = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, address: int) -> bool:
        return address in self._blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    @property
    def capacity(self) -> int | None:
        """Configured capacity (``None`` = unbounded)."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Current number of blocks held."""
        return len(self._blocks)

    @property
    def max_occupancy(self) -> int:
        """High-water mark of :attr:`occupancy` since construction."""
        return self._max_occupancy

    def add(self, block: Block) -> None:
        """Insert (or overwrite) a block.

        Raises
        ------
        StashOverflowError
            If the stash has a finite capacity and this insertion would
            exceed it.  With background eviction enabled the ORAM never
            lets this happen.
        """
        if block.is_dummy():
            return
        address = block.address
        previous = self._blocks.get(address)
        if (
            self._capacity is not None
            and previous is None
            and len(self._blocks) >= self._capacity
        ):
            raise StashOverflowError(
                f"stash overflow: capacity {self._capacity} exceeded"
            )
        if previous is not None:
            self._drop_from_leaf_index(previous, previous.leaf)
        self._blocks[address] = block
        bucket = self._by_leaf.get(block.leaf)
        if bucket is None:
            self._by_leaf[block.leaf] = [block]
        else:
            bucket.append(block)
        if len(self._blocks) > self._max_occupancy:
            self._max_occupancy = len(self._blocks)

    def remove_placed(self, blocks: Iterable[Block]) -> None:
        """Batch-remove blocks the write-back placed into the tree.

        Equivalent to :meth:`pop` per block, minus the per-call overhead —
        the protocol calls this once per path write-back.
        """
        stash = self._blocks
        for block in blocks:
            if stash.pop(block.address, None) is not None:
                self._drop_from_leaf_index(block, block.leaf)

    def get(self, address: int) -> Block | None:
        """Return the block at ``address`` (or ``None``) without removing it."""
        return self._blocks.get(address)

    def pop(self, address: int) -> Block | None:
        """Remove and return the block at ``address`` (or ``None``)."""
        block = self._blocks.pop(address, None)
        if block is not None:
            self._drop_from_leaf_index(block, block.leaf)
        return block

    def retarget(self, address: int, new_leaf: int) -> Block | None:
        """Point the block at ``address`` at ``new_leaf``, keeping the leaf
        index consistent.  Returns the block, or ``None`` if absent."""
        block = self._blocks.get(address)
        if block is None:
            return None
        if block.leaf != new_leaf:
            self._drop_from_leaf_index(block, block.leaf)
            block.leaf = new_leaf
            bucket = self._by_leaf.get(new_leaf)
            if bucket is None:
                self._by_leaf[new_leaf] = [block]
            else:
                bucket.append(block)
        return block

    # ------------------------------------------------------------------
    # Batched super-block operations
    # ------------------------------------------------------------------
    def retarget_range(self, leaf: int, lo: int, hi: int, new_leaf: int) -> int:
        """Retarget every stash block with address in ``[lo, hi)`` currently
        mapped to ``leaf`` onto ``new_leaf``, in one split of the leaf bucket.

        This is the super-block remap: all stash-resident members of a group
        share the group's leaf, so one pass over that leaf's bucket moves the
        whole group.  Returns the number of blocks moved.
        """
        return len(self.retarget_range_collect(leaf, lo, hi, new_leaf))

    def retarget_range_collect(
        self, leaf: int, lo: int, hi: int, new_leaf: int
    ) -> list[Block]:
        """Like :meth:`retarget_range`, but returns the moved blocks.

        The dynamic super-block protocol needs the identities of the moved
        members (their per-address position-map entries must follow), so the
        one-bucket-split retarget also collects what it moved.
        """
        if leaf == new_leaf:
            return []
        bucket = self._by_leaf.get(leaf)
        if bucket is None:
            return []
        moved = [block for block in bucket if lo <= block.address < hi]
        if not moved:
            return []
        staying = [block for block in bucket if not lo <= block.address < hi]
        target = self._by_leaf.get(new_leaf)
        if target is None:
            target = self._by_leaf[new_leaf] = []
        for block in moved:
            block.leaf = new_leaf
            target.append(block)
        if staying:
            self._by_leaf[leaf] = staying
        else:
            del self._by_leaf[leaf]
        return moved

    def pop_range(self, leaf: int, lo: int, hi: int) -> list[Block]:
        """Remove and return every stash block with address in ``[lo, hi)``
        currently mapped to ``leaf`` — one split of the leaf bucket instead of
        a :meth:`pop` per super-block member."""
        bucket = self._by_leaf.get(leaf)
        if bucket is None:
            return []
        extracted = [block for block in bucket if lo <= block.address < hi]
        if not extracted:
            return []
        staying = [block for block in bucket if not lo <= block.address < hi]
        if staying:
            self._by_leaf[leaf] = staying
        else:
            del self._by_leaf[leaf]
        blocks = self._blocks
        for block in extracted:
            del blocks[block.address]
        return extracted

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def leaf_groups(self) -> ItemsView[int, list[Block]]:
        """``(leaf, [blocks])`` pairs for every distinct leaf that currently
        has stash-resident blocks.  Do not mutate the stash while
        iterating."""
        return self._by_leaf.items()

    def blocks(self) -> list[Block]:
        """Snapshot list of all blocks currently in the stash."""
        return list(self._blocks.values())

    def addresses(self) -> list[int]:
        """Snapshot list of all addresses currently in the stash."""
        return list(self._blocks.keys())

    def fingerprint(self) -> tuple:
        """Deterministic ``(address, leaf)`` view of the stash contents.

        Sorted by address so two stashes holding the same blocks compare
        equal regardless of insertion order; used by the checkpoint/resume
        tests to pin bit-identical restored state.
        """
        return tuple(sorted((block.address, block.leaf) for block in self._blocks.values()))

    def clear(self) -> None:
        """Remove every block (used when resetting experiments)."""
        self._blocks.clear()
        self._by_leaf.clear()

    def _drop_from_leaf_index(self, block: Block, leaf: int) -> None:
        bucket = self._by_leaf.get(leaf)
        if bucket is None:
            return
        for index, candidate in enumerate(bucket):
            if candidate is block:
                last = bucket.pop()
                if last is not block:
                    bucket[index] = last
                break
        if not bucket:
            del self._by_leaf[leaf]
