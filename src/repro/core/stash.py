"""The Path ORAM stash (the 'local cache' of the original paper)."""

from __future__ import annotations

from typing import Iterator

from repro.core.types import Block
from repro.errors import StashOverflowError


class Stash:
    """Holds up to ``capacity`` real blocks inside the ORAM interface.

    The stash is keyed by program address: Path ORAM never stores two copies
    of the same block, so an address uniquely identifies a stash entry.

    Parameters
    ----------
    capacity:
        Maximum number of blocks, or ``None`` for an unbounded stash (used
        when studying failure probability with no background eviction).
    """

    def __init__(self, capacity: int | None = None) -> None:
        self._blocks: dict[int, Block] = {}
        self._capacity = capacity
        self._max_occupancy = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, address: int) -> bool:
        return address in self._blocks

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    @property
    def capacity(self) -> int | None:
        """Configured capacity (``None`` = unbounded)."""
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Current number of blocks held."""
        return len(self._blocks)

    @property
    def max_occupancy(self) -> int:
        """High-water mark of :attr:`occupancy` since construction."""
        return self._max_occupancy

    def add(self, block: Block) -> None:
        """Insert (or overwrite) a block.

        Raises
        ------
        StashOverflowError
            If the stash has a finite capacity and this insertion would
            exceed it.  With background eviction enabled the ORAM never
            lets this happen.
        """
        if block.is_dummy():
            return
        if (
            self._capacity is not None
            and block.address not in self._blocks
            and len(self._blocks) >= self._capacity
        ):
            raise StashOverflowError(
                f"stash overflow: capacity {self._capacity} exceeded"
            )
        self._blocks[block.address] = block
        if len(self._blocks) > self._max_occupancy:
            self._max_occupancy = len(self._blocks)

    def get(self, address: int) -> Block | None:
        """Return the block at ``address`` (or ``None``) without removing it."""
        return self._blocks.get(address)

    def pop(self, address: int) -> Block | None:
        """Remove and return the block at ``address`` (or ``None``)."""
        return self._blocks.pop(address, None)

    def blocks(self) -> list[Block]:
        """Snapshot list of all blocks currently in the stash."""
        return list(self._blocks.values())

    def addresses(self) -> list[int]:
        """Snapshot list of all addresses currently in the stash."""
        return list(self._blocks.keys())

    def clear(self) -> None:
        """Remove every block (used when resetting experiments)."""
        self._blocks.clear()
