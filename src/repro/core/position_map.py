"""The position map: program address (or super-block group) → leaf label."""

from __future__ import annotations

import random

from repro.errors import ConfigurationError


class PositionMap:
    """Maps each of ``num_entries`` identifiers to a leaf in ``[0, num_leaves)``.

    The map is initialised with uniformly random leaves, mirroring the
    paper's initial state where every program address is associated with a
    random leaf before any access is made.

    Parameters
    ----------
    num_entries:
        Number of identifiers to track (blocks, or super-block groups).
    num_leaves:
        Number of leaves in the ORAM tree.
    rng:
        Random source used for the initial assignment and for
        :meth:`remap`.
    """

    def __init__(self, num_entries: int, num_leaves: int, rng: random.Random | None = None) -> None:
        if num_entries < 1:
            raise ConfigurationError("position map needs at least one entry")
        if num_leaves < 1:
            raise ConfigurationError("position map needs at least one leaf")
        self._rng = rng if rng is not None else random.Random()
        self._num_leaves = num_leaves
        # Leaf counts are powers of two for full binary trees, so a uniform
        # draw is a single getrandbits call — much cheaper than randrange
        # on the dummy-access hot path.
        self._leaf_bits = (num_leaves - 1).bit_length() if num_leaves & (num_leaves - 1) == 0 else 0
        self._leaves = [self._rng.randrange(num_leaves) for _ in range(num_entries)]

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def num_leaves(self) -> int:
        """Number of leaves entries may map to."""
        return self._num_leaves

    @property
    def leaves(self) -> list[int]:
        """The live entry list (index = identifier, value = leaf).

        Exposed for the protocol hot path, which turns :meth:`lookup` /
        :meth:`assign` into a plain list index.  Callers writing through
        this list are responsible for keeping leaves in range.
        """
        return self._leaves

    def lookup(self, identifier: int) -> int:
        """Return the leaf currently assigned to ``identifier``."""
        return self._leaves[identifier]

    def assign(self, identifier: int, leaf: int) -> None:
        """Set the leaf for ``identifier`` explicitly."""
        if not 0 <= leaf < self._num_leaves:
            raise ConfigurationError(f"leaf {leaf} out of range [0, {self._num_leaves})")
        self._leaves[identifier] = leaf

    def remap(self, identifier: int) -> tuple[int, int]:
        """Remap ``identifier`` to a fresh uniformly random leaf.

        Returns
        -------
        tuple
            ``(old_leaf, new_leaf)``.
        """
        old_leaf = self._leaves[identifier]
        new_leaf = self._rng.randrange(self._num_leaves)
        self._leaves[identifier] = new_leaf
        return old_leaf, new_leaf

    def random_leaf(self) -> int:
        """Draw a uniformly random leaf (used for dummy accesses)."""
        if self._leaf_bits:
            return self._rng.getrandbits(self._leaf_bits)
        return self._rng.randrange(self._num_leaves)

    def size_bits(self, leaf_bits: int) -> int:
        """Storage required by this map at ``leaf_bits`` bits per entry."""
        return len(self._leaves) * leaf_bits
