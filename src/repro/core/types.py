"""Fundamental value types shared across the Path ORAM implementation."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

#: Program address reserved for dummy blocks (Section 2.1 of the paper).
DUMMY_ADDRESS = 0


class Operation(Enum):
    """The two operations a program can request from the ORAM interface."""

    READ = "read"
    WRITE = "write"


@dataclass(slots=True)
class Block:
    """One data block (cache line) stored in the ORAM tree or stash.

    Attributes
    ----------
    address:
        Program address ``u`` (1-based; 0 is reserved for dummies).
    leaf:
        The leaf label this block is currently mapped to.
    data:
        Payload.  Experiments that only measure stash behaviour leave this as
        ``None``; the encrypted back-end and the processor integration carry
        real bytes (or, for position-map ORAMs, a list of leaf labels).
    """

    address: int
    leaf: int
    data: Any = None

    def is_dummy(self) -> bool:
        """True when this block is a dummy placeholder."""
        return self.address == DUMMY_ADDRESS


@dataclass(slots=True)
class TraceResult:
    """Aggregate outcome of a trace-at-once :meth:`access_many` run.

    The fused loop is bit-identical to calling ``access`` once per trace
    element but does not materialise one :class:`AccessResult` per access;
    this envelope carries the aggregate counters instead.

    Attributes
    ----------
    accesses:
        Number of trace elements executed.
    found:
        How many of them hit a block that existed before the access.
    dummy_accesses:
        Total background-eviction dummy accesses issued during the run.
    """

    accesses: int = 0
    found: int = 0
    dummy_accesses: int = 0


@dataclass(slots=True)
class AccessResult:
    """What a single ORAM access returned to the caller.

    Attributes
    ----------
    address:
        The requested program address.
    data:
        The block payload (``None`` for a miss on a never-written address).
    found:
        Whether the block existed in the ORAM before the access.
    dummy_accesses:
        Number of background-eviction dummy accesses triggered after this
        real access.
    sibling_addresses:
        Addresses of other blocks returned alongside the requested one
        because they shared its super block (empty unless super blocks are
        enabled and the caller used the exclusive interface).
    """

    address: int
    data: Any = None
    found: bool = True
    dummy_accesses: int = 0
    sibling_addresses: tuple[int, ...] = ()
