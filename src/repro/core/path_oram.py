"""The Path ORAM protocol (Section 2.1) with the paper's optimizations.

:class:`PathORAM` implements ``accessORAM`` / ``accessPath`` on top of a
pluggable tree storage back-end, with:

* a pluggable background-eviction policy (Section 3.1),
* optional super blocks via a :class:`SuperBlockMapper` (Section 3.2),
* an exclusive-ORAM API (:meth:`extract` / :meth:`insert`) used by the
  processor integration (Section 3.3.1),
* an ``access_path`` entry point used by the hierarchical construction
  (Section 2.3), and
* an optional adversary-visible trace of accessed leaves, used by the
  common-path-length attack (Section 3.1.3).
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.background_eviction import BackgroundEviction, EvictionPolicy, NoEviction
from repro.core.config import ORAMConfig
from repro.core.position_map import PositionMap
from repro.core.stash import Stash
from repro.core.stats import AccessStats
from repro.core.super_block import StaticSuperBlockMapper, SuperBlockMapper
from repro.core.tree import PlainTreeStorage, TreeStorage
from repro.core.types import AccessResult, Block, Operation
from repro.errors import ConfigurationError, StashOverflowError


def leaf_common_path_length(leaf_a: int, leaf_b: int, levels: int) -> int:
    """Common path length of two leaves, computed from their labels.

    Equivalent to :func:`repro.core.tree.common_path_length` but O(1): two
    paths share ``t + 1`` buckets where ``t`` is the number of common
    leading bits of the two ``L``-bit leaf labels.
    """
    if levels == 0:
        return 1
    diff = leaf_a ^ leaf_b
    if diff == 0:
        return levels + 1
    return levels - diff.bit_length() + 1


class PathORAM:
    """A single Path ORAM.

    Parameters
    ----------
    config:
        The ORAM's parameters.
    storage:
        Tree storage back-end; defaults to the functional
        :class:`PlainTreeStorage`.
    eviction_policy:
        Background-eviction policy; defaults to the paper's
        :class:`BackgroundEviction` when the stash is bounded and
        :class:`NoEviction` when it is unbounded.
    super_block_mapper:
        Super-block grouping policy; defaults to the static mapper with the
        config's ``super_block_size``.
    rng:
        Random source for leaf assignment (seed it for reproducibility).
    create_on_miss:
        When True (default), a read of an address that was never written
        materialises the block with an empty payload, modelling a secure
        processor whose entire address space logically exists.
    record_path_trace:
        When True, every accessed leaf (real and dummy) is appended to
        :attr:`path_trace` — the adversary's view used by the CPL attack.
    """

    def __init__(
        self,
        config: ORAMConfig,
        storage: TreeStorage | None = None,
        eviction_policy: EvictionPolicy | None = None,
        super_block_mapper: SuperBlockMapper | None = None,
        rng: random.Random | None = None,
        create_on_miss: bool = True,
        record_path_trace: bool = False,
    ) -> None:
        self._config = config
        self._rng = rng if rng is not None else random.Random()
        self._storage = storage if storage is not None else PlainTreeStorage(config)
        if self._storage.config is not config and self._storage.config != config:
            raise ConfigurationError("storage was built for a different configuration")
        self._mapper = (
            super_block_mapper
            if super_block_mapper is not None
            else StaticSuperBlockMapper(config.super_block_size)
        )
        num_groups = self._mapper.num_groups(config.working_set_blocks)
        self._position_map = PositionMap(num_groups, config.num_leaves, rng=self._rng)
        self._stash = Stash(capacity=None)
        if eviction_policy is not None:
            self._eviction = eviction_policy
        elif config.stash_capacity is None:
            self._eviction = NoEviction()
        else:
            self._eviction = BackgroundEviction()
        self._stats = AccessStats()
        self._create_on_miss = create_on_miss
        self._record_path_trace = record_path_trace
        self._path_trace: list[int] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> ORAMConfig:
        return self._config

    @property
    def stats(self) -> AccessStats:
        return self._stats

    @property
    def position_map(self) -> PositionMap:
        return self._position_map

    @property
    def storage(self) -> TreeStorage:
        return self._storage

    @property
    def super_block_mapper(self) -> SuperBlockMapper:
        return self._mapper

    @property
    def eviction_policy(self) -> EvictionPolicy:
        return self._eviction

    @property
    def stash_occupancy(self) -> int:
        """Number of real blocks currently in the stash."""
        return self._stash.occupancy

    @property
    def max_stash_occupancy(self) -> int:
        """High-water mark of the stash occupancy."""
        return self._stash.max_occupancy

    @property
    def path_trace(self) -> list[int]:
        """Sequence of accessed leaves as visible to an adversary."""
        return self._path_trace

    def stash_addresses(self) -> list[int]:
        """Addresses of blocks currently in the stash."""
        return self._stash.addresses()

    def contains(self, address: int) -> bool:
        """True when ``address`` currently has a block in the stash or tree."""
        if address in self._stash:
            return True
        group = self._mapper.group_of(address)
        leaf = self._position_map.lookup(group)
        return any(block.address == address for block in self._storage.read_path(leaf))

    def total_blocks_stored(self) -> int:
        """Real blocks across the stash and the tree (invariant checking)."""
        return self._stash.occupancy + self._storage.occupancy()

    # ------------------------------------------------------------------
    # The ORAM protocol
    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        op: Operation = Operation.READ,
        data: Any = None,
    ) -> AccessResult:
        """Perform one ORAM access (``accessORAM`` in the paper).

        Looks up the position map, reads the mapped path, remaps the block's
        super-block group to a fresh random leaf, writes the path back, and
        finally lets the background-eviction policy issue dummy accesses.
        """
        self._check_address(address)
        group = self._mapper.group_of(address)
        old_leaf = self._position_map.lookup(group)
        new_leaf = self._position_map.random_leaf()
        self._position_map.assign(group, new_leaf)
        result = self._access_path(address, group, old_leaf, new_leaf, op, data)
        self._stats.record_real_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)
        dummy_count = self._eviction.after_access(self)
        self._check_stash_bound()
        result.dummy_accesses = dummy_count
        return result

    def read(self, address: int) -> AccessResult:
        """Convenience wrapper for a read access."""
        return self.access(address, Operation.READ)

    def write(self, address: int, data: Any) -> AccessResult:
        """Convenience wrapper for a write access."""
        return self.access(address, Operation.WRITE, data)

    def access_path(
        self,
        address: int,
        current_leaf: int,
        new_leaf: int,
        op: Operation = Operation.READ,
        data: Any = None,
        mutate: Any = None,
    ) -> AccessResult:
        """``accessPath`` (steps 2-5 of Section 2.1) with externally supplied
        leaves, as required by the hierarchical construction where the leaf
        comes from the parent position-map ORAM.

        ``mutate``, when given, is a callable applied to the block's payload
        while the block sits in the stash (read-modify-write); the
        hierarchical ORAM uses it to swap one leaf label inside a
        position-map block.
        """
        self._check_address(address)
        group = self._mapper.group_of(address)
        self._position_map.assign(group, new_leaf)
        result = self._access_path(address, group, current_leaf, new_leaf, op, data, mutate)
        self._stats.record_real_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)
        result.dummy_accesses = 0
        return result

    def extract_path(self, address: int, current_leaf: int, new_leaf: int) -> dict[int, Any]:
        """Exclusive-ORAM extraction with externally supplied leaves.

        Like :meth:`extract`, but the current and new leaves come from the
        caller (the hierarchical ORAM's position-map chain) instead of this
        ORAM's own position map.
        """
        self._check_address(address)
        group = self._mapper.group_of(address)
        self._position_map.assign(group, new_leaf)
        self._read_path_into_stash(current_leaf)
        extracted = self._collect_group(address, group)
        self._write_back_path(current_leaf)
        self._stats.record_real_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)
        return extracted

    def _collect_group(self, address: int, group: int) -> dict[int, Any]:
        """Remove the requested super-block group from the stash.

        With ``create_on_miss`` (the secure-processor setting, where the
        whole address space logically lives in the ORAM) members that have
        never been written are still returned, with an empty payload, so
        super-block prefetching moves the entire group into the cache as
        Section 3.2 prescribes.
        """
        extracted: dict[int, Any] = {}
        for member in self._mapper.addresses_in_group(group):
            if member > self._config.working_set_blocks:
                continue
            block = self._stash.pop(member)
            if block is not None:
                extracted[member] = block.data
            elif self._create_on_miss:
                extracted[member] = None
        if address not in extracted and self._create_on_miss:
            extracted[address] = None
        return extracted

    def dummy_access(self) -> None:
        """A background-eviction dummy access (Section 3.1.1).

        Reads a uniformly random path and writes back as many blocks as
        possible; no block is remapped, so the stash cannot grow.
        """
        leaf = self._position_map.random_leaf()
        self._read_path_into_stash(leaf)
        self._write_back_path(leaf)
        self._stats.record_dummy_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)

    def remap_access(self, address: int) -> None:
        """Access-and-remap used by the *insecure* eviction scheme.

        The accessed path is the victim block's current leaf — which is what
        correlates consecutive accesses and leaks (Section 3.1.3).  Counted
        as a dummy access in the statistics.
        """
        group = self._mapper.group_of(address)
        old_leaf = self._position_map.lookup(group)
        new_leaf = self._position_map.random_leaf()
        self._position_map.assign(group, new_leaf)
        self._read_path_into_stash(old_leaf)
        self._retarget_group(group, new_leaf)
        self._write_back_path(old_leaf)
        self._stats.record_dummy_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)

    # ------------------------------------------------------------------
    # Exclusive-ORAM API used by the processor integration
    # ------------------------------------------------------------------
    def extract(self, address: int) -> dict[int, Any]:
        """Remove the requested block's entire super-block group from the
        ORAM and return ``{address: payload}`` for every member found.

        The group is remapped so that members re-inserted later (on cache
        eviction) share a fresh path.  Background eviction runs afterwards.
        """
        self._check_address(address)
        group = self._mapper.group_of(address)
        old_leaf = self._position_map.lookup(group)
        new_leaf = self._position_map.random_leaf()
        self._position_map.assign(group, new_leaf)
        self._read_path_into_stash(old_leaf)
        extracted = self._collect_group(address, group)
        self._write_back_path(old_leaf)
        self._stats.record_real_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)
        self._eviction.after_access(self)
        self._check_stash_bound()
        return extracted

    def insert(self, address: int, data: Any = None) -> int:
        """Put a block back into the ORAM stash without a path access
        (exclusive ORAM, Section 3.3.1), then run background eviction.

        Returns the number of dummy accesses issued.
        """
        self._check_address(address)
        group = self._mapper.group_of(address)
        leaf = self._position_map.lookup(group)
        self._stash.add(Block(address=address, leaf=leaf, data=data))
        dummy_count = self._eviction.after_access(self)
        self._check_stash_bound()
        return dummy_count

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_address(self, address: int) -> None:
        if not 1 <= address <= self._config.working_set_blocks:
            raise ConfigurationError(
                f"address {address} outside [1, {self._config.working_set_blocks}]"
            )

    def _check_stash_bound(self) -> None:
        capacity = self._config.stash_capacity
        if capacity is not None and self._stash.occupancy > capacity:
            raise StashOverflowError(
                f"Path ORAM failure: stash holds {self._stash.occupancy} blocks, "
                f"capacity is {capacity}"
            )

    def _access_path(
        self,
        address: int,
        group: int,
        current_leaf: int,
        new_leaf: int,
        op: Operation,
        data: Any,
        mutate: Any = None,
    ) -> AccessResult:
        self._read_path_into_stash(current_leaf)
        block = self._stash.get(address)
        found = block is not None
        if block is None:
            if op is Operation.WRITE or mutate is not None or self._create_on_miss:
                block = Block(address=address, leaf=new_leaf, data=None)
                self._stash.add(block)
        if block is not None and op is Operation.WRITE:
            block.data = data
        if block is not None and mutate is not None:
            block.data = mutate(block.data)
        self._retarget_group(group, new_leaf)
        result_data = block.data if block is not None else None
        self._write_back_path(current_leaf)
        return AccessResult(address=address, data=result_data, found=found)

    def _retarget_group(self, group: int, new_leaf: int) -> None:
        """Point every stash-resident member of ``group`` at ``new_leaf``.

        By the super-block invariant all members share a leaf, so after the
        path read every member still stored in the ORAM is in the stash.
        """
        for member in self._mapper.addresses_in_group(group):
            member_block = self._stash.get(member)
            if member_block is not None:
                member_block.leaf = new_leaf

    def _read_path_into_stash(self, leaf: int) -> None:
        if self._record_path_trace:
            self._path_trace.append(leaf)
        blocks = self._storage.read_path(leaf)
        for block in blocks:
            self._stash.add(block)
        self._stats.record_path_read(len(blocks))
        # The blocks now live in the stash; the write-back step rewrites
        # every bucket on this path, so no explicit clearing is needed.

    def _write_back_path(self, leaf: int) -> None:
        """Greedy eviction: place stash blocks as deep as possible on ``leaf``'s path."""
        levels = self._config.levels
        z = self._config.z
        path = self._storage.path(leaf)

        # Group stash blocks by the deepest level they may occupy on this path.
        by_deepest: list[list[Block]] = [[] for _ in range(levels + 1)]
        for block in self._stash:
            deepest = leaf_common_path_length(block.leaf, leaf, levels) - 1
            by_deepest[deepest].append(block)

        assignments: dict[int, list[Block]] = {}
        written = 0
        available: list[Block] = []
        for level in range(levels, -1, -1):
            # Blocks whose deepest legal level is exactly `level` become
            # available here and remain candidates for shallower levels.
            available.extend(by_deepest[level])
            bucket: list[Block] = []
            while available and len(bucket) < z:
                bucket.append(available.pop())
            if bucket:
                assignments[path[level]] = bucket
                written += len(bucket)
                for block in bucket:
                    self._stash.pop(block.address)
        self._storage.write_path(leaf, assignments)
        self._stats.record_path_write(written)
