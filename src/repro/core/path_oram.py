"""The Path ORAM protocol (Section 2.1) with the paper's optimizations.

:class:`PathORAM` implements ``accessORAM`` / ``accessPath`` on top of a
pluggable tree storage back-end, with:

* a pluggable background-eviction policy (Section 3.1),
* optional super blocks via a :class:`SuperBlockMapper` (Section 3.2),
* an exclusive-ORAM API (:meth:`extract` / :meth:`insert`) used by the
  processor integration (Section 3.3.1),
* an ``access_path`` entry point used by the hierarchical construction
  (Section 2.3) plus a closure-free :meth:`access_position_block` fast path
  for the recursive position-map chain, and
* an optional adversary-visible trace of accessed leaves, used by the
  common-path-length attack (Section 3.1.3).

The write-back is a single flattened pass: candidates are bucketed once by
the deepest level they may occupy (one precomputed-table lookup per distinct
stash leaf and per path-buffer block) and then, when the back-end is the
array-backed :class:`FlatTreeStorage`, placed directly into its slot array —
no intermediate per-level bucket lists and no second walk over the path.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.background_eviction import BackgroundEviction, EvictionPolicy, NoEviction
from repro.core.config import ORAMConfig
from repro.core.position_map import PositionMap
from repro.core.stash import Stash
from repro.core.stats import AccessStats
from repro.core.super_block import (
    DynamicSuperBlockMapper,
    StaticSuperBlockMapper,
    SuperBlockMapper,
)
from repro.core.tree import FlatTreeStorage, TreeStorage
from repro.core.types import AccessResult, Block, Operation, TraceResult
from repro.errors import ConfigurationError, StashOverflowError

#: Upper bound on the per-ORAM :class:`Block` free-list.  Recycled blocks
#: only accumulate through the exclusive-ORAM extract path, so the pool
#: stays tiny in practice; the cap bounds memory if a workload extracts
#: far more blocks than it ever re-creates.
_BLOCK_POOL_LIMIT = 4096


def leaf_common_path_length(leaf_a: int, leaf_b: int, levels: int) -> int:
    """Common path length of two leaves, computed from their labels.

    Equivalent to :func:`repro.core.tree.common_path_length` but O(1): two
    paths share ``t + 1`` buckets where ``t`` is the number of common
    leading bits of the two ``L``-bit leaf labels.
    """
    if levels == 0:
        return 1
    diff = leaf_a ^ leaf_b
    if diff == 0:
        return levels + 1
    return levels - diff.bit_length() + 1


class PathORAM:
    """A single Path ORAM.

    Parameters
    ----------
    config:
        The ORAM's parameters.
    storage:
        Tree storage back-end; defaults to the fast array-backed
        :class:`FlatTreeStorage`.
    eviction_policy:
        Background-eviction policy; defaults to the paper's
        :class:`BackgroundEviction` when the stash is bounded and
        :class:`NoEviction` when it is unbounded.
    super_block_mapper:
        Super-block grouping policy; defaults to the static mapper with the
        config's ``super_block_size``.
    rng:
        Random source for leaf assignment (seed it for reproducibility).
    create_on_miss:
        When True (default), a read of an address that was never written
        materialises the block with an empty payload, modelling a secure
        processor whose entire address space logically exists.
    record_path_trace:
        When True, every accessed leaf (real and dummy) is appended to
        :attr:`path_trace` — the adversary's view used by the CPL attack.
    """

    def __init__(
        self,
        config: ORAMConfig,
        storage: TreeStorage | None = None,
        eviction_policy: EvictionPolicy | None = None,
        super_block_mapper: SuperBlockMapper | None = None,
        rng: random.Random | None = None,
        create_on_miss: bool = True,
        record_path_trace: bool = False,
    ) -> None:
        self._config = config
        self._rng = rng if rng is not None else random.Random()
        self._storage = storage if storage is not None else FlatTreeStorage(config)
        if self._storage.config is not config and self._storage.config != config:
            raise ConfigurationError("storage was built for a different configuration")
        # Hot-path caches: the protocol reads these once per path operation,
        # so they must not go through the derived-property machinery.
        self._levels = config.levels
        self._z = config.z
        self._working_set = config.working_set_blocks
        self._eviction_threshold = config.eviction_threshold
        # The fused read/write-back fast paths talk straight to
        # FlatTreeStorage's slot array (friend access to _slots, _bases and
        # _occupancy).  Subclasses of the flat storage may intercept path
        # operations, so only the exact type takes the fused paths.
        self._fused = type(self._storage) is FlatTreeStorage
        # Per-leaf (bases, reversed bases) pairs: one dict lookup serves the
        # root-first read walk and the deepest-first placement walk (the
        # bases tuples are shared with the storage's own cache by reference).
        # Like the deepest-level table below, the cache is only kept for
        # moderate trees; huge ones re-reverse the bases tuple per read
        # instead of holding one extra tuple per distinct leaf.
        self._slots = self._storage._slots if self._fused else None  # noqa: SLF001
        # Lazily filled, leaf-indexed: a list beats a dict on the hot path
        # (one bounds-checked index instead of a hash probe).
        self._path_pairs: list[tuple[tuple[int, ...], tuple[int, ...]] | None] | None = (
            [None] * config.num_leaves if config.num_leaves <= 1 << 16 else None
        )
        # Scratch lists reused by every write-back: candidate blocks from
        # the stash and from the pending path buffer, bucketed by the
        # deepest level they may occupy on the path being written.
        self._by_deepest_stash: list[list[Block]] = [[] for _ in range(self._levels + 1)]
        self._by_deepest_buffer: list[list[Block]] = [[] for _ in range(self._levels + 1)]
        # The same class lists in deepest-first order, so the placement walk
        # can zip over (path bucket, buffer class, stash class) triples
        # without indexing three lists per level.
        self._by_buffer_rev = list(reversed(self._by_deepest_buffer))
        self._by_stash_rev = list(reversed(self._by_deepest_stash))
        # Levels 0..d can hold at most Z(d+1) blocks in total, so at most
        # Z(d+1) candidates of deepest-class d can ever be placed; stash
        # bucketing stops collecting a class once it holds that many, which
        # skips most of the (shallow-classed) stash when the stash is full.
        self._class_cap = [config.z * (d + 1) for d in range(self._levels + 1)]
        # deepest legal level = levels - bit_length(leaf_a XOR leaf_b); for
        # moderate trees a lookup table turns that into one list index on
        # the write-back hot path (64K leaves = 512 KB, a wash for bigger
        # trees, so those fall back to bit_length).
        if self._levels <= 16:
            self._deepest_table: list[int] | None = [self._levels] + [
                self._levels - diff.bit_length()
                for diff in range(1, 1 << self._levels)
            ]
        else:
            self._deepest_table = None
        # The classified fast path (single-pass read + classification, see
        # _read_path_classified) needs the exact flat storage and the
        # moderate-tree lookup tables.  The two cutoffs coincide: levels
        # <= 16 implies both the deepest-level table and the path-pair
        # cache exist.
        self._classified_fast = self._fused and self._deepest_table is not None
        # Blocks read from the current path live here between the path read
        # and the path write-back.  Most of them go straight back into the
        # tree, so keeping them out of the stash's indexes until the
        # write-back decides they must stay avoids two index updates per
        # pass-through block.  Consumed by every write-back (a shared tuple
        # sentinel marks the no-pending-path state without an allocation).
        self._path_buffer: list[Block] | tuple[Block, ...] = ()
        self._path_rbases: tuple[int, ...] = ()
        self._transient_peak = 0
        self._mapper = (
            super_block_mapper
            if super_block_mapper is not None
            else StaticSuperBlockMapper(config.super_block_size)
        )
        self._single_member_groups = self._mapper.group_size == 1
        # Dynamic super-block merging: the mapper keeps the position map at
        # per-address granularity and drives runtime merge/split decisions;
        # accesses route through the dedicated _access_dynamic path.
        self._dynamic = isinstance(self._mapper, DynamicSuperBlockMapper)
        self._group_of = self._mapper.group_of
        num_groups = self._mapper.num_groups(config.working_set_blocks)
        self._position_map = PositionMap(num_groups, config.num_leaves, rng=self._rng)
        # Friend access for the per-access hot path: lookup/assign become a
        # plain list index, and leaf draws a cached bound method (same RNG
        # stream as PositionMap.random_leaf).
        self._pm_leaves = self._position_map.leaves
        self._random_leaf = self._position_map.random_leaf
        # Leaf counts are powers of two (full binary trees), so a fresh leaf
        # is one getrandbits call — the same stream PositionMap.random_leaf
        # draws from, without the method-call hop.
        self._draw_bits = (config.num_leaves - 1).bit_length()
        self._getrandbits = self._rng.getrandbits
        self._stash = Stash(capacity=None)
        # Friend views of the stash's two dicts for the per-access hot path
        # (`len`, membership and leaf-group iteration without method hops).
        # Stash.clear() empties but never replaces them.  Subclasses that
        # swap in a different stash implementation must override the methods
        # that use these views.
        self._stash_blocks = self._stash._blocks  # noqa: SLF001
        self._stash_by_leaf = self._stash._by_leaf  # noqa: SLF001
        if eviction_policy is not None:
            self._eviction = eviction_policy
        elif config.stash_capacity is None:
            self._eviction = NoEviction()
        else:
            self._eviction = BackgroundEviction()
        self._stats = AccessStats()
        # Free-list of recycled Block shells: miss-creation in the fused
        # trace loop and the recursive position-map fast path draws from it
        # instead of allocating; the exclusive-ORAM extract path feeds it.
        self._block_pool: list[Block] = []
        self._create_on_miss = create_on_miss
        self._record_path_trace = record_path_trace
        self._path_trace: list[int] = []
        # When the policy is threshold-gated, the access fast path can skip
        # the policy call entirely while the stash sits below the threshold
        # (the policy would immediately return 0 anyway).
        self._eviction_gate = (
            self._eviction_threshold
            if isinstance(self._eviction, BackgroundEviction)
            and self._eviction_threshold is not None
            else None
        )
        # Column-native execution over the NumPy slot-array storage: the
        # engine runs whole path operations on the int64 columns without
        # materialising Block shells.  The ``columnar`` marker only exists
        # on NumpyFlatTreeStorage (and its subclasses), so the guarded
        # import can never run without NumPy installed;
        # ColumnEngine.for_oram returns None for configurations it cannot
        # serve bit-identically (wrapper subclasses, grouped super blocks,
        # single-leaf trees).
        self._column_engine = None
        if getattr(type(self._storage), "columnar", False):
            from repro.core.numpy_engine import ColumnEngine

            self._column_engine = ColumnEngine.for_oram(self)
        # PLB coherence hooks, set by HierarchicalPathORAM when a PosMap
        # Lookaside Buffer caches this ORAM's blocks (see repro.core.plb).
        # _position_block_observer(address, labels) fires at the end of
        # every access_position_block with the block's live label list
        # (None when the op path re-materialises payloads, which severs the
        # cached reference); _retarget_observer(lo, hi) fires whenever a
        # dynamic super-block cohort move re-assigns the leaves of the
        # address range [lo, hi) behind the position-map chain's back.
        self._position_block_observer = None
        self._retarget_observer = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> ORAMConfig:
        return self._config

    @property
    def stats(self) -> AccessStats:
        return self._stats

    @property
    def position_map(self) -> PositionMap:
        return self._position_map

    @property
    def storage(self) -> TreeStorage:
        return self._storage

    @property
    def super_block_mapper(self) -> SuperBlockMapper:
        return self._mapper

    @property
    def eviction_policy(self) -> EvictionPolicy:
        return self._eviction

    @property
    def eviction_threshold(self) -> int | None:
        """Cached ``C - Z(L+1)`` (``None`` = unbounded stash)."""
        return self._eviction_threshold

    @property
    def stash_occupancy(self) -> int:
        """Number of real blocks currently in the stash."""
        return self._stash.occupancy

    @property
    def max_stash_occupancy(self) -> int:
        """High-water mark of the stash occupancy.

        Includes the transient peak while a path's blocks are held between
        read and write-back, matching the on-chip buffering the paper's
        stash models.
        """
        return max(self._stash.max_occupancy, self._transient_peak)

    @property
    def path_trace(self) -> list[int]:
        """Sequence of accessed leaves as visible to an adversary."""
        return self._path_trace

    def stash_addresses(self) -> list[int]:
        """Addresses of blocks currently in the stash."""
        return self._stash.addresses()

    def contains(self, address: int) -> bool:
        """True when ``address`` currently has a block in the stash or tree."""
        if address in self._stash:
            return True
        group = self._mapper.group_of(address)
        leaf = self._position_map.lookup(group)
        return any(block.address == address for block in self._storage.read_path(leaf))

    def total_blocks_stored(self) -> int:
        """Real blocks across the stash and the tree (invariant checking)."""
        return self._stash.occupancy + self._storage.occupancy()

    # ------------------------------------------------------------------
    # Checkpoint/resume
    # ------------------------------------------------------------------
    #: Envelope kind tag written by :meth:`snapshot` (see repro.core.snapshot).
    SNAPSHOT_KIND = "path-oram"

    def __getstate__(self) -> dict:
        # Everything in the instance dict pickles — including the bound RNG
        # methods and the friend views into the storage, stash and position
        # map, whose aliasing the pickle memo preserves exactly — except:
        # the PLB observer closures (installed by HierarchicalPathORAM,
        # which re-installs them on restore) and the column engine (ndarray
        # aliases into the storage; rebuilt from the restored columns).
        state = self.__dict__.copy()
        state["_position_block_observer"] = None
        state["_retarget_observer"] = None
        state["_column_engine"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if getattr(type(self._storage), "columnar", False):
            from repro.core.numpy_engine import ColumnEngine

            self._column_engine = ColumnEngine.for_oram(self)

    def snapshot(self) -> dict:
        """Capture the full simulation state in a versioned envelope.

        The snapshot covers the tree storage (list or NumPy columns), the
        stash, the position map, the super-block mapper's runtime counters,
        the ``random.Random`` state and the statistics — everything needed
        for :meth:`restore` to produce an ORAM whose subsequent accesses
        are bit-identical to this one's.
        """
        from repro.core.snapshot import make_snapshot

        return make_snapshot(self, self.SNAPSHOT_KIND)

    @classmethod
    def restore(cls, snapshot: dict) -> "PathORAM":
        """Reconstruct an ORAM from a :meth:`snapshot` envelope.

        Raises :class:`~repro.errors.CheckpointError` on version, format or
        kind mismatches.
        """
        from repro.core.snapshot import load_snapshot

        return load_snapshot(snapshot, cls.SNAPSHOT_KIND, cls)

    # ------------------------------------------------------------------
    # The ORAM protocol
    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        op: Operation = Operation.READ,
        data: Any = None,
    ) -> AccessResult:
        """Perform one ORAM access (``accessORAM`` in the paper).

        Looks up the position map, reads the mapped path, remaps the block's
        super-block group to a fresh random leaf, writes the path back, and
        finally lets the background-eviction policy issue dummy accesses.
        """
        if self._dynamic:
            return self._access_dynamic(address, op, data)
        if not 1 <= address <= self._working_set:
            raise ConfigurationError(
                f"address {address} outside [1, {self._working_set}]"
            )
        group = address - 1 if self._single_member_groups else self._group_of(address)
        leaves = self._pm_leaves
        old_leaf = leaves[group]
        bits = self._draw_bits
        new_leaf = self._getrandbits(bits) if bits else self._random_leaf()
        leaves[group] = new_leaf
        # Inlined _access_path for the dominant single-member case (the
        # classified single-pass variant when the flat fast path applies);
        # the grouped (super-block) case routes through the shared helper.
        if not self._single_member_groups:
            result = self._access_path(address, group, old_leaf, new_leaf, op, data)
        elif self._classified_fast:
            block = self._stash_blocks.get(address)
            in_stash = block is not None
            rbases, pending, target = self._read_path_classified(
                old_leaf, None if in_stash else address
            )
            if block is None:
                block = target
            found = block is not None
            if block is None:
                if op is Operation.WRITE or self._create_on_miss:
                    block = Block(address=address, leaf=new_leaf, data=None)
                    self._stash.add(block)
                    in_stash = True
            if block is not None:
                if op is Operation.WRITE:
                    block.data = data
                if in_stash:
                    self._stash.retarget(address, new_leaf)
                else:
                    # Freshly read, unindexed: classify under its new leaf
                    # (last in its class pool, the shared tie-break order).
                    block.leaf = new_leaf
                    self._by_deepest_buffer[self._deepest_table[new_leaf ^ old_leaf]].append(block)
                result_data = block.data
            else:
                result_data = None
            self._write_back_classified(old_leaf, rbases, pending)
            result = AccessResult(address, result_data, found)
        elif self._column_engine is not None:
            result_data, found = self._column_engine.fused_single_access(
                address, old_leaf, new_leaf,
                op is Operation.WRITE, data, self._create_on_miss,
                None, 0, 0, 0,
            )
            result = AccessResult(address, result_data, found)
        else:
            self._read_path_into_stash(old_leaf)
            block = self._stash_blocks.get(address)
            in_stash = block is not None
            if block is None:
                buffer = self._path_buffer
                for position, candidate in enumerate(buffer):
                    if candidate.address == address:
                        # Move the accessed block to the end of the buffer
                        # so the write-back classifies it last in its class
                        # pool — the classified fast path's tie-break.
                        block = candidate
                        del buffer[position]
                        buffer.append(candidate)
                        break
            found = block is not None
            if block is None:
                if op is Operation.WRITE or self._create_on_miss:
                    block = Block(address=address, leaf=new_leaf, data=None)
                    self._stash.add(block)
                    in_stash = True
            if block is not None:
                if op is Operation.WRITE:
                    block.data = data
                if in_stash:
                    self._stash.retarget(address, new_leaf)
                else:
                    block.leaf = new_leaf  # buffer blocks are unindexed
                result_data = block.data
            else:
                result_data = None
            self._write_back_path(old_leaf)
            result = AccessResult(address, result_data, found)
        stats = self._stats
        stats.real_accesses += 1
        if stats.record_occupancy:
            stats.stash_occupancy_samples.append(len(self._stash_blocks))
        gate = self._eviction_gate
        if gate is not None and len(self._stash_blocks) <= gate:
            dummy_count = 0
        else:
            dummy_count = self._eviction.after_access(self)
            self._check_stash_bound()
        result.dummy_accesses = dummy_count
        return result

    def read(self, address: int) -> AccessResult:
        """Convenience wrapper for a read access."""
        return self.access(address, Operation.READ)

    def write(self, address: int, data: Any) -> AccessResult:
        """Convenience wrapper for a write access."""
        return self.access(address, Operation.WRITE, data)

    def access_many(
        self,
        addresses: Any,
        op: Operation = Operation.READ,
        data: Any = None,
    ) -> TraceResult:
        """Consume a whole trace of addresses in one fused loop.

        Bit-for-bit identical to ``for a in addresses: self.access(a, op,
        data)`` — same RNG stream, same stash/tree/position-map state, same
        statistics — but with every per-access cost amortised over the
        trace: attribute and method lookups are hoisted once, the path read,
        block lookup, stash retarget and flattened write-back are inlined
        into a single loop body, miss-created blocks come from a pooled
        free-list, and the inlined stat counters are flushed to
        :attr:`stats` once at the end (eviction-issued dummy accesses keep
        updating the live counters, so interleaving is preserved).

        The fused body requires the array-backed flat storage, single-member
        super blocks and the moderate-tree lookup tables; any other
        configuration transparently falls back to a plain ``access`` loop
        with identical semantics.

        One deliberate divergence: the fused loop validates the whole trace
        up front, so an out-of-range address raises *before* any access
        runs, where the equivalent loop would fail mid-trace.  For valid
        traces (the contract the differential tests pin) behaviour is
        exactly identical.
        """
        engine = self._column_engine
        if engine is not None:
            return engine.access_many(addresses, op, data)
        if self._dynamic:
            return self._access_many_dynamic(addresses, op, data)
        table = self._deepest_table
        pairs = self._path_pairs
        if (
            not self._fused
            or not self._single_member_groups
            or table is None
            or pairs is None
            or not self._draw_bits
        ):
            return self._access_many_slow(addresses, op, data)

        # -- hoisted hot-path state (one lookup each for the whole trace) --
        working_set = self._working_set
        leaves = self._pm_leaves
        bits = self._draw_bits
        getrandbits = self._getrandbits
        slots = self._slots
        storage_bases = self._storage._bases  # noqa: SLF001 - friend fast path
        stash = self._stash
        stash_blocks = self._stash_blocks
        by_leaf = self._stash_by_leaf
        by_stash = self._by_deepest_stash
        by_buffer = self._by_deepest_buffer
        by_buffer_rev = self._by_buffer_rev
        caps = self._class_cap
        z = self._z
        pool = self._block_pool
        create = self._create_on_miss
        is_write = op is Operation.WRITE
        gate = self._eviction_gate
        after_access = self._eviction.after_access
        no_eviction = type(self._eviction) is NoEviction
        bounded = self._config.stash_capacity is not None
        check_bound = self._check_stash_bound
        stats = self._stats
        record_occupancy = stats.record_occupancy
        samples_append = stats.stash_occupancy_samples.append
        trace_append = self._path_trace.append if self._record_path_trace else None

        # The whole trace is validated up front (two C-speed passes) so the
        # per-access bounds check drops out of the fused loop; a trace with
        # an out-of-range address therefore fails before any access runs,
        # where the equivalent access loop would fail at that element.
        if type(addresses) is not list:
            addresses = list(addresses)
        if addresses and (min(addresses) < 1 or max(addresses) > working_set):
            bad = next(a for a in addresses if not 1 <= a <= working_set)
            raise ConfigurationError(f"address {bad} outside [1, {working_set}]")

        # -- inlined stat counters, flushed once in the finally block --
        real = found_count = dummy_total = 0
        path_reads = blocks_read = path_writes = blocks_written = 0
        occupancy_total = 0
        transient_peak = self._transient_peak
        max_occ = stash._max_occupancy  # noqa: SLF001

        # Reused placement scratch for the buffer-only walk (the cold
        # with-stash path gets fresh lists from _place_into_slots).
        avail_buffer: list[Block] = []
        try:
            for address in addresses:
                index = address - 1
                leaf = leaves[index]
                new_leaf = getrandbits(bits)
                leaves[index] = new_leaf

                # ---- single-pass path read + classification ----
                # KEEP IN SYNC with _read_path_classified and the copy in
                # _fused_single_access: protocol fixes must land in all
                # three (the copies exist to avoid per-path-op call and
                # attribute-hoisting overhead on this hottest loop).
                block = stash_blocks.get(address)
                in_stash = block is not None
                if trace_append is not None:
                    trace_append(leaf)
                pair = pairs[leaf]
                if pair is None:
                    bases = storage_bases(leaf)
                    pair = pairs[leaf] = (bases, bases[::-1])
                bases, rbases = pair
                pending = 0
                target = None
                if in_stash:
                    for base in bases:
                        count = slots[base]
                        if count:
                            pending += count
                            if count == 1:
                                blk = slots[base + 1]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                            elif count == 2:
                                blk = slots[base + 1]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 2]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                            elif count == 3:
                                blk = slots[base + 1]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 2]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 3]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                            elif count == 4:
                                blk = slots[base + 1]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 2]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 3]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 4]
                                by_buffer[table[blk.leaf ^ leaf]].append(blk)
                            else:
                                for blk in slots[base + 1 : base + 1 + count]:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                else:
                    for base in bases:
                        count = slots[base]
                        if count:
                            pending += count
                            if count == 1:
                                blk = slots[base + 1]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                            elif count == 2:
                                blk = slots[base + 1]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 2]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                            elif count == 3:
                                blk = slots[base + 1]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 2]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 3]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                            elif count == 4:
                                blk = slots[base + 1]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 2]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 3]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                                blk = slots[base + 4]
                                if blk.address == address:
                                    target = blk
                                else:
                                    by_buffer[table[blk.leaf ^ leaf]].append(blk)
                            else:
                                for blk in slots[base + 1 : base + 1 + count]:
                                    if blk.address == address:
                                        target = blk
                                    else:
                                        by_buffer[table[blk.leaf ^ leaf]].append(blk)
                path_reads += 1
                blocks_read += pending
                transient = len(stash_blocks) + pending
                if transient > transient_peak:
                    transient_peak = transient

                # ---- locate (or create) the block, retarget to new_leaf ----
                if in_stash:
                    found_count += 1
                    if is_write:
                        block.data = data
                    old_block_leaf = block.leaf
                    if old_block_leaf != new_leaf:
                        bucket = by_leaf.get(old_block_leaf)
                        if bucket is not None:
                            for position, candidate in enumerate(bucket):
                                if candidate is block:
                                    last = bucket.pop()
                                    if last is not block:
                                        bucket[position] = last
                                    break
                            if not bucket:
                                del by_leaf[old_block_leaf]
                        block.leaf = new_leaf
                        bucket = by_leaf.get(new_leaf)
                        if bucket is None:
                            by_leaf[new_leaf] = [block]
                        else:
                            bucket.append(block)
                elif target is not None:
                    block = target
                    found_count += 1
                    if is_write:
                        block.data = data
                    # Retargeted, then classified last in its class pool
                    # (the shared tie-break order).
                    block.leaf = new_leaf
                    by_buffer[table[new_leaf ^ leaf]].append(block)
                elif is_write or create:
                    if pool:
                        block = pool.pop()
                        block.address = address
                        block.leaf = new_leaf
                        block.data = data if is_write else None
                    else:
                        block = Block(
                            address=address,
                            leaf=new_leaf,
                            data=data if is_write else None,
                        )
                    stash_blocks[address] = block
                    bucket = by_leaf.get(new_leaf)
                    if bucket is None:
                        by_leaf[new_leaf] = [block]
                    else:
                        bucket.append(block)
                    occupancy = len(stash_blocks)
                    if occupancy > max_occ:
                        max_occ = occupancy

                # ---- flattened write-back: bucket stash candidates ----
                has_stash = False
                if by_leaf:
                    base_pending = pending
                    for other_leaf, group in by_leaf.items():
                        deepest = table[other_leaf ^ leaf]
                        ready = by_stash[deepest]
                        if len(ready) < caps[deepest]:
                            ready.extend(group)
                            pending += len(group)
                    has_stash = pending != base_pending

                if has_stash:
                    # Cold path: stash candidates compete for slots too.
                    self._path_rbases = rbases
                    written, placed_stash, spilled = self._place_into_slots(pending)
                    if placed_stash:
                        for placed_block in placed_stash:
                            if stash_blocks.pop(placed_block.address, None) is not None:
                                block_leaf = placed_block.leaf
                                bucket = by_leaf.get(block_leaf)
                                if bucket is not None:
                                    for position, candidate in enumerate(bucket):
                                        if candidate is placed_block:
                                            last = bucket.pop()
                                            if last is not placed_block:
                                                bucket[position] = last
                                            break
                                    if not bucket:
                                        del by_leaf[block_leaf]
                else:
                    # ---- fused buffer-only placement (dominant case) ----
                    # KEEP IN SYNC with _place_buffer_only and the copy in
                    # _fused_single_access.
                    occupancy_delta = 0
                    written = 0
                    nb = 0
                    placement = zip(rbases, by_buffer_rev)
                    for base, b_ready in placement:
                        old = slots[base]
                        if b_ready and not nb:
                            rb = len(b_ready)
                            if rb <= z:
                                slots[base + 1 : base + 1 + rb] = b_ready
                                b_ready.clear()
                                take = rb
                            else:
                                nb = rb - z
                                slots[base + 1 : base + 1 + z] = b_ready[nb:]
                                del b_ready[nb:]
                                avail_buffer.extend(b_ready)
                                b_ready.clear()
                                take = z
                        elif nb:
                            if b_ready:
                                avail_buffer.extend(b_ready)
                                b_ready.clear()
                                nb = len(avail_buffer)
                            take = nb if nb < z else z
                            nb -= take
                            slots[base + 1 : base + 1 + take] = avail_buffer[nb:]
                            del avail_buffer[nb:]
                        else:
                            if old:
                                slots[base] = 0
                                occupancy_delta -= old
                            continue
                        if old != take:
                            slots[base] = take
                            occupancy_delta += take - old
                        written += take
                        if written == pending:
                            # Everything is placed: the remaining (shallower) buckets
                            # only need their counts zeroed.
                            for base, b_ready in placement:
                                old = slots[base]
                                if old:
                                    slots[base] = 0
                                    occupancy_delta -= old
                            break
                    occupancy_total += occupancy_delta
                    spilled = avail_buffer
                path_writes += 1
                blocks_written += written

                # ---- leftover buffer blocks genuinely enter the stash ----
                if spilled:
                    for kept_block in spilled:
                        stash_blocks[kept_block.address] = kept_block
                        bucket = by_leaf.get(kept_block.leaf)
                        if bucket is None:
                            by_leaf[kept_block.leaf] = [kept_block]
                        else:
                            bucket.append(kept_block)
                    if spilled is avail_buffer:
                        avail_buffer.clear()
                    occupancy = len(stash_blocks)
                    if occupancy > max_occ:
                        max_occ = occupancy

                # ---- bookkeeping + background eviction ----
                real += 1
                if record_occupancy:
                    samples_append(len(stash_blocks))
                if gate is not None and len(stash_blocks) <= gate:
                    continue
                if no_eviction:
                    if bounded:
                        check_bound()
                    continue
                dummy_total += after_access(self)
                check_bound()
        finally:
            if transient_peak > self._transient_peak:
                self._transient_peak = transient_peak
            if max_occ > stash._max_occupancy:  # noqa: SLF001
                stash._max_occupancy = max_occ  # noqa: SLF001
            self._storage._occupancy += occupancy_total  # noqa: SLF001
            stats.real_accesses += real
            stats.path_reads += path_reads
            stats.blocks_read += blocks_read
            stats.path_writes += path_writes
            stats.blocks_written += blocks_written
        return TraceResult(accesses=real, found=found_count, dummy_accesses=dummy_total)

    def _access_many_slow(
        self, addresses: Any, op: Operation, data: Any
    ) -> TraceResult:
        """Per-access fallback for configurations the fused loop cannot take
        (wrapper storages, static super blocks, huge trees, single-leaf
        ORAMs)."""
        access = self.access
        real = found_count = dummy_total = 0
        for address in addresses:
            result = access(address, op, data)
            real += 1
            found_count += result.found
            dummy_total += result.dummy_accesses
        return TraceResult(accesses=real, found=found_count, dummy_accesses=dummy_total)

    def _access_many_dynamic(
        self, addresses: Any, op: Operation, data: Any
    ) -> TraceResult:
        """Fused trace loop for the dynamic super-block path.

        Same contract as the flat fused loop: bit-for-bit identical to a
        per-access ``_access_dynamic`` loop (same RNG stream, same mapper
        decisions, same stash/tree state, same statistics), with the
        per-access bookkeeping hoisted out — one attribute lookup per
        trace instead of per access, up-front trace validation, and the
        real-access counter flushed to :attr:`stats` once at the end.
        The path operation itself stays :meth:`_dynamic_path_op`: the
        mapper's merge/split planning is inherently per-access state, so
        the fusion wins come from the loop body around it, not from
        batching path operations.
        """
        working_set = self._working_set
        if type(addresses) is not list:
            addresses = list(addresses)
        if addresses and (min(addresses) < 1 or max(addresses) > working_set):
            bad = next(a for a in addresses if not 1 <= a <= working_set)
            raise ConfigurationError(f"address {bad} outside [1, {working_set}]")
        path_op = self._dynamic_path_op
        stash_blocks = self._stash_blocks
        stats = self._stats
        record_occupancy = stats.record_occupancy
        samples_append = stats.stash_occupancy_samples.append
        gate = self._eviction_gate
        after_access = self._eviction.after_access
        check_bound = self._check_stash_bound
        real = found_count = dummy_total = 0
        try:
            for address in addresses:
                result = path_op(address, op, data, None)
                real += 1
                found_count += result.found
                if record_occupancy:
                    samples_append(len(stash_blocks))
                if gate is not None and len(stash_blocks) <= gate:
                    continue
                dummy_total += after_access(self)
                check_bound()
        finally:
            stats.real_accesses += real
        return TraceResult(accesses=real, found=found_count, dummy_accesses=dummy_total)

    # ------------------------------------------------------------------
    # Dynamic super-block merging (Section 3.2's future work)
    # ------------------------------------------------------------------
    def _dynamic_path_op(
        self,
        address: int,
        op: Operation,
        data: Any,
        fresh_leaf: int | None,
    ) -> AccessResult:
        """One dynamic-super-block path operation (read to write-back).

        The shared body behind :meth:`_access_dynamic` (flat protocol) and
        :meth:`access_dynamic_path` (recursive construction).  Exactly one
        path is read and written, like every other access.  The mapper's
        :meth:`~repro.core.super_block.DynamicSuperBlockMapper.plan_access`
        applies any due merge/split and names the span and target leaf; the
        reachable span members — the stash's ``current_leaf`` bucket, moved
        by one :meth:`~repro.core.stash.Stash.retarget_range_collect`
        split, plus the pending path buffer — follow in one batch, and
        their per-address position-map entries move with them, so a member
        left behind (not in the stash, not on this path) keeps its own
        entry and simply joins the group on its own next access.

        ``fresh_leaf`` is the pre-drawn uniformly random leaf supplied by
        the recursive chain walk (``None`` on the flat protocol, which
        draws lazily — only when the plan calls for a fresh leaf).
        """
        if not 1 <= address <= self._working_set:
            raise ConfigurationError(
                f"address {address} outside [1, {self._working_set}]"
            )
        leaves = self._pm_leaves
        old_leaf = leaves[address - 1]
        mapper = self._mapper
        plan = mapper.plan_access(address, old_leaf, leaves)
        if plan.target_leaf is not None:
            new_leaf = plan.target_leaf
        elif fresh_leaf is not None:
            new_leaf = fresh_leaf
        else:
            bits = self._draw_bits
            new_leaf = self._getrandbits(bits) if bits else self._random_leaf()
        if plan.target_leaf is None:
            mapper.set_anchor(plan.lo, new_leaf)

        self._read_path_into_stash(old_leaf)
        block = self._stash_blocks.get(address)
        buffer = self._path_buffer
        if block is None:
            for position, candidate in enumerate(buffer):
                if candidate.address == address:
                    # Accessed block classifies last in its class pool: the
                    # same tie-break as the other protocol paths.
                    block = candidate
                    del buffer[position]
                    buffer.append(candidate)
                    break
        found = block is not None
        if block is None and (op is Operation.WRITE or self._create_on_miss):
            pool = self._block_pool
            if pool:
                block = pool.pop()
                block.address = address
                block.leaf = new_leaf
                block.data = None
            else:
                block = Block(address=address, leaf=new_leaf, data=None)
            self._stash.add(block)
        if block is not None and op is Operation.WRITE:
            block.data = data

        # Batched group move: one leaf-bucket split for the stash-resident
        # cohort, one scan of the pending path buffer — and every moved
        # member's position-map entry follows, which is what lets members
        # *not* moved here retarget lazily on their own next access.
        lo, hi = plan.lo, plan.hi
        if new_leaf != old_leaf:
            for moved in self._stash.retarget_range_collect(old_leaf, lo, hi, new_leaf):
                leaves[moved.address - 1] = new_leaf
            for candidate in buffer:
                candidate_address = candidate.address
                if lo <= candidate_address < hi:
                    # Covers stragglers that happen to lie on a shared
                    # bucket of this path as well: anything in hand joins
                    # the cohort now instead of on its own next access.
                    candidate.leaf = new_leaf
                    leaves[candidate_address - 1] = new_leaf
            observer = self._retarget_observer
            if observer is not None:
                # The cohort move re-assigned leaves behind the recursive
                # chain's back: the PLB must drop any cached position-map
                # labels covering [lo, hi) before they can be served stale.
                observer(lo, hi)
        leaves[address - 1] = new_leaf

        result_data = block.data if block is not None else None
        self._write_back_path(old_leaf)
        stats = self._stats
        if plan.merged:
            stats.super_block_merges += 1
        if plan.split:
            stats.super_block_splits += 1
        if plan.hit:
            stats.super_block_hits += 1
        return AccessResult(address, result_data, found)

    def _access_dynamic(
        self, address: int, op: Operation, data: Any
    ) -> AccessResult:
        """:meth:`access` for a dynamic super-block mapper."""
        result = self._dynamic_path_op(address, op, data, None)
        stats = self._stats
        stats.real_accesses += 1
        if stats.record_occupancy:
            stats.stash_occupancy_samples.append(len(self._stash_blocks))
        gate = self._eviction_gate
        if gate is not None and len(self._stash_blocks) <= gate:
            dummy_count = 0
        else:
            dummy_count = self._eviction.after_access(self)
            self._check_stash_bound()
        result.dummy_accesses = dummy_count
        return result

    def access_dynamic_path(
        self,
        address: int,
        fresh_leaf: int,
        op: Operation = Operation.READ,
        data: Any = None,
    ) -> AccessResult:
        """The recursive construction's data-ORAM step under dynamic merging.

        The chain walk has already performed its position-map ORAM accesses
        and installed ``fresh_leaf`` for ``address``; this ORAM's own
        per-address position map is the authoritative mirror of where each
        block truly is (architecturally: a small on-chip override table for
        members whose position-map ORAM entry is stale — every entry
        self-clears on the member's next access, when the chain installs
        the leaf actually used).  The path read therefore follows the
        mirror, and ``fresh_leaf`` is used only when the plan calls for a
        fresh uniformly random leaf.
        """
        result = self._dynamic_path_op(address, op, data, fresh_leaf)
        stats = self._stats
        stats.real_accesses += 1
        if stats.record_occupancy:
            stats.stash_occupancy_samples.append(len(self._stash_blocks))
        result.dummy_accesses = 0
        return result

    def access_path(
        self,
        address: int,
        current_leaf: int,
        new_leaf: int,
        op: Operation = Operation.READ,
        data: Any = None,
        mutate: Any = None,
    ) -> AccessResult:
        """``accessPath`` (steps 2-5 of Section 2.1) with externally supplied
        leaves, as required by the hierarchical construction where the leaf
        comes from the parent position-map ORAM.

        ``mutate``, when given, is a callable applied to the block's payload
        while the block sits in the stash (read-modify-write).
        """
        if self._dynamic:
            raise ConfigurationError(
                "dynamic super-block merging routes externally-leafed "
                "accesses through access_dynamic_path"
            )
        self._check_address(address)
        group = self._mapper.group_of(address)
        self._position_map.assign(group, new_leaf)
        result = self._access_path(address, group, current_leaf, new_leaf, op, data, mutate)
        self._stats.record_real_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)
        result.dummy_accesses = 0
        return result

    def access_position_block(
        self,
        address: int,
        current_leaf: int,
        new_leaf: int,
        slot: int,
        child_new_leaf: int,
        labels_per_block: int,
        child_num_leaves: int,
    ) -> int:
        """One position-map ORAM access of the recursive construction.

        Reads the position-map block at ``address`` along ``current_leaf``,
        returns the child leaf stored in ``slot`` and installs
        ``child_new_leaf`` in its place — the combined lookup/update of
        ``accessHORAM`` — then remaps the block to ``new_leaf`` and writes
        the path back.  A block that was never written materialises with
        uniformly random child leaves, mirroring the initial random position
        map.

        The caller (the hierarchical ORAM) guarantees ``new_leaf`` is in
        range and that this ORAM uses single-member groups, so the generic
        ``mutate``-closure path and its per-access allocations are skipped.
        """
        if not 1 <= address <= self._working_set:
            raise ConfigurationError(
                f"address {address} outside [1, {self._working_set}]"
            )
        self._pm_leaves[address - 1] = new_leaf
        stash = self._stash
        # The live label list, when the op path mutates payloads in place
        # (fused/slot mode) so a cached reference stays current.  The
        # generic path below may re-materialise payloads on the next read
        # (encrypted storage), so it reports None and the observer drops
        # any cached entry instead of installing a doomed reference.
        live_labels = None
        if self._classified_fast:
            child_current_leaf, live_labels = self._fused_single_access(
                address, current_leaf, new_leaf, True, None, False,
                slot, child_new_leaf, labels_per_block, child_num_leaves,
            )
        elif self._column_engine is not None:
            child_current_leaf, live_labels = self._column_engine.fused_single_access(
                address, current_leaf, new_leaf, True, None, False,
                slot, child_new_leaf, labels_per_block, child_num_leaves,
            )
        else:
            self._read_path_into_stash(current_leaf)
            block = stash.get(address)
            in_stash = block is not None
            if block is None:
                buffer = self._path_buffer
                for position, candidate in enumerate(buffer):
                    if candidate.address == address:
                        # Classified-path tie-break: accessed block last.
                        block = candidate
                        del buffer[position]
                        buffer.append(candidate)
                        break
            if block is None:
                pool = self._block_pool
                if pool:
                    block = pool.pop()
                    block.address = address
                    block.leaf = new_leaf
                    block.data = None
                else:
                    block = Block(address=address, leaf=new_leaf, data=None)
                stash.add(block)
                in_stash = True
            labels = block.data
            if labels is None:
                randrange = self._rng.randrange
                labels = [randrange(child_num_leaves) for _ in range(labels_per_block)]
                block.data = labels
            child_current_leaf = labels[slot]
            labels[slot] = child_new_leaf
            if in_stash:
                stash.retarget(address, new_leaf)
            else:
                block.leaf = new_leaf  # buffer blocks are unindexed
            self._write_back_path(current_leaf)
        observer = self._position_block_observer
        if observer is not None:
            observer(address, live_labels)
        stats = self._stats
        stats.real_accesses += 1
        if stats.record_occupancy:
            stats.stash_occupancy_samples.append(len(self._stash_blocks))
        return child_current_leaf

    def access_fixed_leaf(
        self,
        address: int,
        current_leaf: int,
        new_leaf: int,
        op: Operation = Operation.READ,
        data: Any = None,
    ) -> AccessResult:
        """Single-member ``access_path`` fast path.

        Bit-identical to :meth:`access_path` when this ORAM uses
        single-member super-block groups (which the caller must guarantee):
        the generic group machinery, the ``mutate`` hook and the per-call
        method hops are skipped.  Used by the hierarchical construction's
        fused trace loop for the data-ORAM step.  Falls back to
        :meth:`access_path` when the classified fast path does not apply.
        """
        if self._dynamic:
            raise ConfigurationError(
                "dynamic super-block merging routes externally-leafed "
                "accesses through access_dynamic_path"
            )
        if self._classified_fast:
            fused_op = self._fused_single_access
        elif self._column_engine is not None:
            fused_op = self._column_engine.fused_single_access
        else:
            return self.access_path(address, current_leaf, new_leaf, op, data)
        if not 1 <= address <= self._working_set:
            raise ConfigurationError(
                f"address {address} outside [1, {self._working_set}]"
            )
        self._pm_leaves[address - 1] = new_leaf
        result_data, found = fused_op(
            address, current_leaf, new_leaf,
            op is Operation.WRITE, data, self._create_on_miss,
            None, 0, 0, 0,
        )
        stats = self._stats
        stats.real_accesses += 1
        if stats.record_occupancy:
            stats.stash_occupancy_samples.append(len(self._stash_blocks))
        return AccessResult(address, result_data, found)

    def extract_path(self, address: int, current_leaf: int, new_leaf: int) -> dict[int, Any]:
        """Exclusive-ORAM extraction with externally supplied leaves.

        Like :meth:`extract`, but the current and new leaves come from the
        caller (the hierarchical ORAM's position-map chain) instead of this
        ORAM's own position map.
        """
        if self._dynamic:
            raise ConfigurationError(
                "the exclusive-ORAM interface with dynamic super blocks is "
                "only supported on the flat protocol (see extract)"
            )
        self._check_address(address)
        group = self._mapper.group_of(address)
        self._position_map.assign(group, new_leaf)
        self._read_path_into_stash(current_leaf)
        extracted = self._collect_group(address, group, current_leaf)
        self._write_back_path(current_leaf)
        self._stats.record_real_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)
        return extracted

    def _collect_group(self, address: int, group: int, current_leaf: int) -> dict[int, Any]:
        """Remove the requested super-block group from the stash.

        By the super-block invariant every stash-resident member sits in the
        ``current_leaf`` bucket of the stash's leaf index, so the whole group
        comes out as one bucket split (:meth:`Stash.pop_range`) plus a single
        pass over the pending path buffer — not one lookup per member.

        With ``create_on_miss`` (the secure-processor setting, where the
        whole address space logically lives in the ORAM) members that have
        never been written are still returned, with an empty payload, so
        super-block prefetching moves the entire group into the cache as
        Section 3.2 prescribes.
        """
        span = self._mapper.group_span(group)
        if span is None:
            return self._collect_group_generic(address, group)
        lo, hi = span
        found: dict[int, Any] = {}
        for block in self._stash.pop_range(current_leaf, lo, hi):
            found[block.address] = block.data
            self._recycle_block(block)
        buffer = self._path_buffer
        kept: list[Block] = []
        keep = kept.append
        for candidate in buffer:
            if lo <= candidate.address < hi:
                found[candidate.address] = candidate.data
                self._recycle_block(candidate)
            else:
                keep(candidate)
        if len(kept) != len(buffer):
            self._path_buffer = kept
        extracted: dict[int, Any] = {}
        create = self._create_on_miss
        for member in range(lo, min(hi, self._working_set + 1)):
            if member in found:
                extracted[member] = found[member]
            elif create:
                extracted[member] = None
        return extracted

    def _collect_group_generic(self, address: int, group: int) -> dict[int, Any]:
        """Member-at-a-time collection for custom (non-contiguous) mappers."""
        extracted: dict[int, Any] = {}
        buffer = self._path_buffer
        for member in self._mapper.addresses_in_group(group):
            if member > self._working_set:
                continue
            block = self._stash.pop(member)
            if block is None:
                for index, candidate in enumerate(buffer):
                    if candidate.address == member:
                        block = candidate
                        if type(buffer) is not list:
                            buffer = self._path_buffer = list(buffer)
                        del buffer[index]
                        break
            if block is not None:
                extracted[member] = block.data
                self._recycle_block(block)
            elif self._create_on_miss:
                extracted[member] = None
        if address not in extracted and self._create_on_miss:
            extracted[address] = None
        return extracted

    def _recycle_block(self, block: Block) -> None:
        """Return an extracted block's shell to the free-list.

        Only blocks that just left the ORAM (popped from the stash or the
        pending path buffer) may be recycled: nothing readable references
        them any more (stale slot-array entries beyond a bucket's count are
        never read), so the shell can be re-initialised by the next
        miss-creation without allocating.
        """
        pool = self._block_pool
        if len(pool) < _BLOCK_POOL_LIMIT:
            block.data = None
            pool.append(block)

    def dummy_access(self) -> None:
        """A background-eviction dummy access (Section 3.1.1).

        Reads a uniformly random path and writes back as many blocks as
        possible; no block is remapped, so the stash cannot grow.
        """
        bits = self._draw_bits
        leaf = self._getrandbits(bits) if bits else self._random_leaf()
        if self._classified_fast:
            rbases, pending, _ = self._read_path_classified(leaf, None)
            self._write_back_classified(leaf, rbases, pending)
        elif self._column_engine is not None:
            self._column_engine.dummy_access(leaf)
        else:
            self._read_path_into_stash(leaf)
            self._write_back_path(leaf)
        stats = self._stats
        stats.dummy_accesses += 1
        if stats.record_occupancy:
            stats.stash_occupancy_samples.append(len(self._stash_blocks))

    def remap_access(self, address: int) -> None:
        """Access-and-remap used by the *insecure* eviction scheme.

        The accessed path is the victim block's current leaf — which is what
        correlates consecutive accesses and leaks (Section 3.1.3).  Counted
        as a dummy access in the statistics.
        """
        if self._dynamic:
            raise ConfigurationError(
                "insecure remap eviction does not compose with dynamic "
                "super-block merging (per-address entries would go stale)"
            )
        group = self._mapper.group_of(address)
        old_leaf = self._position_map.lookup(group)
        new_leaf = self._random_leaf()
        self._position_map.assign(group, new_leaf)
        self._read_path_into_stash(old_leaf)
        self._retarget_group(group, old_leaf, new_leaf)
        self._write_back_path(old_leaf)
        self._stats.record_dummy_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)

    # ------------------------------------------------------------------
    # Exclusive-ORAM API used by the processor integration
    # ------------------------------------------------------------------
    def extract(self, address: int) -> dict[int, Any]:
        """Remove the requested block's entire super-block group from the
        ORAM and return ``{address: payload}`` for every member found.

        The group is remapped so that members re-inserted later (on cache
        eviction) share a fresh path.  Background eviction runs afterwards.
        """
        self._check_address(address)
        if self._dynamic:
            return self._extract_dynamic(address)
        group = self._mapper.group_of(address)
        old_leaf = self._position_map.lookup(group)
        new_leaf = self._random_leaf()
        self._position_map.assign(group, new_leaf)
        self._read_path_into_stash(old_leaf)
        extracted = self._collect_group(address, group, old_leaf)
        self._write_back_path(old_leaf)
        self._stats.record_real_access()
        self._stats.sample_stash_occupancy(self._stash.occupancy)
        self._eviction.after_access(self)
        self._check_stash_bound()
        return extracted

    def _extract_dynamic(self, address: int) -> dict[int, Any]:
        """Exclusive-ORAM extraction under dynamic super-block merging."""
        found = self._extract_dynamic_core(address, None)
        self._eviction.after_access(self)
        self._check_stash_bound()
        return found

    def extract_dynamic_path(self, address: int, fresh_leaf: int) -> dict[int, Any]:
        """Exclusive-ORAM extraction under dynamic merging with an
        externally drawn fresh leaf.

        The recursive construction's counterpart of :meth:`extract_path`:
        the hierarchical chain walk has already performed its position-map
        ORAM accesses and installed ``fresh_leaf`` for ``address``, and
        this ORAM's per-address mirror is authoritative for where each
        member truly is (see :meth:`access_dynamic_path`).  ``fresh_leaf``
        is used only when the plan calls for a fresh uniformly random
        leaf.  Background eviction is the hierarchy's job, so none runs
        here.
        """
        self._check_address(address)
        return self._extract_dynamic_core(address, fresh_leaf)

    def _extract_dynamic_core(
        self, address: int, fresh_leaf: int | None
    ) -> dict[int, Any]:
        """The shared dynamic extraction body (read to stats update).

        Observes the access like any other (so cache-miss streams drive the
        merge/split policy too), reads the accessed member's own path, and
        removes the *reachable* part of the group — the ``current_leaf``
        stash bucket via one :meth:`~repro.core.stash.Stash.pop_range`
        split plus a pass over the pending path buffer.  Members still
        converging elsewhere stay in the ORAM under their own position-map
        entries (they are only ever reported when actually extracted, never
        fabricated, since their blocks still live on other paths); the
        extracted members' entries move to the group's next leaf so a later
        :meth:`insert` lands them co-resident again.

        ``fresh_leaf`` is the pre-drawn leaf supplied by the recursive
        chain walk (``None`` on the flat protocol, which draws lazily —
        only when the plan calls for a fresh leaf).
        """
        leaves = self._pm_leaves
        old_leaf = leaves[address - 1]
        plan = self._mapper.plan_access(address, old_leaf, leaves)
        if plan.target_leaf is not None:
            new_leaf = plan.target_leaf
        else:
            if fresh_leaf is not None:
                new_leaf = fresh_leaf
            else:
                new_leaf = self._random_leaf()
            self._mapper.set_anchor(plan.lo, new_leaf)
        self._read_path_into_stash(old_leaf)
        lo, hi = plan.lo, plan.hi
        found: dict[int, Any] = {}
        for block in self._stash.pop_range(old_leaf, lo, hi):
            found[block.address] = block.data
            self._recycle_block(block)
        buffer = self._path_buffer
        kept: list[Block] = []
        keep = kept.append
        for candidate in buffer:
            if lo <= candidate.address < hi:
                found[candidate.address] = candidate.data
                self._recycle_block(candidate)
            else:
                keep(candidate)
        if len(kept) != len(buffer):
            self._path_buffer = kept
        for member in found:
            leaves[member - 1] = new_leaf
        leaves[address - 1] = new_leaf
        if new_leaf != old_leaf:
            observer = self._retarget_observer
            if observer is not None:
                # Same coherence rule as _dynamic_path_op: the extracted
                # cohort's members were re-leafed without a chain walk.
                observer(lo, hi)
        if address not in found and self._create_on_miss:
            found[address] = None
        self._write_back_path(old_leaf)
        stats = self._stats
        stats.real_accesses += 1
        if plan.merged:
            stats.super_block_merges += 1
        if plan.split:
            stats.super_block_splits += 1
        if plan.hit:
            stats.super_block_hits += 1
        if stats.record_occupancy:
            stats.stash_occupancy_samples.append(len(self._stash_blocks))
        self._eviction.after_access(self)
        self._check_stash_bound()
        return found

    def insert(self, address: int, data: Any = None) -> int:
        """Put a block back into the ORAM stash without a path access
        (exclusive ORAM, Section 3.3.1), then run background eviction.

        Returns the number of dummy accesses issued.
        """
        self._check_address(address)
        group = self._mapper.group_of(address)
        leaf = self._position_map.lookup(group)
        self._stash.add(Block(address=address, leaf=leaf, data=data))
        dummy_count = self._eviction.after_access(self)
        self._check_stash_bound()
        return dummy_count

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_address(self, address: int) -> None:
        if not 1 <= address <= self._working_set:
            raise ConfigurationError(
                f"address {address} outside [1, {self._working_set}]"
            )

    def _check_stash_bound(self) -> None:
        capacity = self._config.stash_capacity
        if capacity is not None and self._stash.occupancy > capacity:
            raise StashOverflowError(
                f"Path ORAM failure: stash holds {self._stash.occupancy} blocks, "
                f"capacity is {capacity}"
            )

    def _access_path(
        self,
        address: int,
        group: int,
        current_leaf: int,
        new_leaf: int,
        op: Operation,
        data: Any,
        mutate: Any = None,
    ) -> AccessResult:
        self._read_path_into_stash(current_leaf)
        block = self._stash.get(address)
        in_stash = block is not None
        if block is None:
            buffer = self._path_buffer
            for position, candidate in enumerate(buffer):
                if candidate.address == address:
                    # Accessed block classifies last in its class pool: the
                    # same tie-break as the classified single-pass read.
                    block = candidate
                    del buffer[position]
                    buffer.append(candidate)
                    break
        found = block is not None
        if block is None:
            if op is Operation.WRITE or mutate is not None or self._create_on_miss:
                block = Block(address=address, leaf=new_leaf, data=None)
                self._stash.add(block)
                in_stash = True
        if block is not None and op is Operation.WRITE:
            block.data = data
        if block is not None and mutate is not None:
            block.data = mutate(block.data)
        if self._single_member_groups:
            # The accessed block is its whole super-block group.
            if block is not None:
                if in_stash:
                    self._stash.retarget(address, new_leaf)
                else:
                    block.leaf = new_leaf  # buffer blocks are unindexed
        else:
            self._retarget_group(group, current_leaf, new_leaf)
        result_data = block.data if block is not None else None
        self._write_back_path(current_leaf)
        return AccessResult(address, result_data, found)

    def _retarget_group(self, group: int, current_leaf: int, new_leaf: int) -> None:
        """Point every resident member of ``group`` at ``new_leaf``.

        By the super-block invariant all members share ``current_leaf``, so
        the stash-resident part of the group moves as one leaf-bucket split
        (:meth:`Stash.retarget_range`); members still in the pending path
        buffer (just read, not yet written back) are caught by a single scan.
        """
        span = self._mapper.group_span(group)
        if span is not None:
            lo, hi = span
            self._stash.retarget_range(current_leaf, lo, hi, new_leaf)
            for candidate in self._path_buffer:
                if lo <= candidate.address < hi:
                    candidate.leaf = new_leaf
            return
        # Custom (non-contiguous) mappers: member-at-a-time fallback.
        retarget = self._stash.retarget
        buffer = self._path_buffer
        for member in self._mapper.addresses_in_group(group):
            if retarget(member, new_leaf) is None:
                for candidate in buffer:
                    if candidate.address == member:
                        candidate.leaf = new_leaf
                        break

    def _read_path_into_stash(self, leaf: int) -> None:
        """Read the path into the transient buffer (logically, the stash).

        The blocks become part of the protocol's working set immediately,
        but their stash indexing is deferred to the write-back, which
        returns most of them straight to the tree.
        """
        if self._record_path_trace:
            self._path_trace.append(leaf)
        if self._fused:
            pairs = self._path_pairs
            if pairs is None:
                bases = self._storage._bases(leaf)  # noqa: SLF001 - friend fast path
                self._path_rbases = bases[::-1]
            else:
                pair = pairs[leaf]
                if pair is None:
                    bases = self._storage._bases(leaf)  # noqa: SLF001
                    pair = pairs[leaf] = (bases, bases[::-1])
                bases, self._path_rbases = pair
            slots = self._slots
            blocks: list[Block] = []
            append = blocks.append
            extend = blocks.extend
            for base in bases:
                count = slots[base]
                if count:
                    if count == 1:
                        append(slots[base + 1])
                    else:
                        extend(slots[base + 1 : base + 1 + count])
        else:
            blocks = self._storage.read_path_blocks(leaf)
        self._path_buffer = blocks
        count = len(blocks)
        transient = len(self._stash_blocks) + count
        if transient > self._transient_peak:
            self._transient_peak = transient
        stats = self._stats
        stats.path_reads += 1
        stats.blocks_read += count

    def _fused_single_access(
        self,
        address: int,
        leaf: int,
        new_leaf: int,
        is_write: bool,
        data: Any,
        create: bool,
        slot: int | None,
        child_new_leaf: int,
        labels_per_block: int,
        child_num_leaves: int,
    ):
        """One fully-inlined classified path operation (read to write-back).

        The shared hot body behind :meth:`access_position_block` and
        :meth:`access_fixed_leaf`: a single-pass classified read, the
        single-member block update, and the flattened write-back with the
        buffer-only placement walk inlined — one method call per path
        operation, every attribute hoisted exactly once.

        Two modes share the body.  With ``slot`` set (position-map mode,
        ``is_write``/``create`` are ignored and the block always
        materialises) the block's label vector is updated in place and
        ``(displaced_child_leaf, labels)`` is returned — the label list
        rides along so the hierarchical chain can coalesce follow-up
        accesses to the same position-map block without re-reading the
        path.  With ``slot=None`` (data mode) the payload is read or
        written per ``is_write``/``create`` and ``(result_data, found)``
        is returned.

        Only valid when :attr:`_classified_fast` is set; the caller has
        validated ``address`` and updated this ORAM's position map.
        """
        stash_blocks = self._stash_blocks
        by_leaf = self._stash_by_leaf
        slots = self._slots
        table = self._deepest_table
        pools = self._by_deepest_buffer

        block = stash_blocks.get(address)
        in_stash = block is not None

        # ---- single-pass path read + classification ----
        # KEEP IN SYNC with _read_path_classified and the inline copy in
        # access_many.
        if self._record_path_trace:
            self._path_trace.append(leaf)
        pairs = self._path_pairs
        pair = pairs[leaf]
        if pair is None:
            bases = self._storage._bases(leaf)  # noqa: SLF001 - friend fast path
            pair = pairs[leaf] = (bases, bases[::-1])
        bases, rbases = pair
        pending = 0
        target = None
        if in_stash:
            for base in bases:
                count = slots[base]
                if count:
                    pending += count
                    if count == 1:
                        blk = slots[base + 1]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 2:
                        blk = slots[base + 1]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 3:
                        blk = slots[base + 1]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 3]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 4:
                        blk = slots[base + 1]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 3]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 4]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                    else:
                        for blk in slots[base + 1 : base + 1 + count]:
                            pools[table[blk.leaf ^ leaf]].append(blk)
        else:
            for base in bases:
                count = slots[base]
                if count:
                    pending += count
                    if count == 1:
                        blk = slots[base + 1]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 2:
                        blk = slots[base + 1]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 3:
                        blk = slots[base + 1]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 3]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 4:
                        blk = slots[base + 1]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 3]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 4]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                    else:
                        for blk in slots[base + 1 : base + 1 + count]:
                            if blk.address == address:
                                target = blk
                            else:
                                pools[table[blk.leaf ^ leaf]].append(blk)
        transient = len(stash_blocks) + pending
        if transient > self._transient_peak:
            self._transient_peak = transient
        stats = self._stats
        stats.path_reads += 1
        stats.blocks_read += pending

        # ---- locate (or create) the block, retarget to new_leaf ----
        found = True
        if in_stash:
            if block.leaf != new_leaf:
                bucket = by_leaf.get(block.leaf)
                if bucket is not None:
                    for position, candidate in enumerate(bucket):
                        if candidate is block:
                            last = bucket.pop()
                            if last is not block:
                                bucket[position] = last
                            break
                    if not bucket:
                        del by_leaf[block.leaf]
                block.leaf = new_leaf
                bucket = by_leaf.get(new_leaf)
                if bucket is None:
                    by_leaf[new_leaf] = [block]
                else:
                    bucket.append(block)
        elif target is not None:
            block = target
            # Retargeted, then classified last in its class pool (the
            # shared tie-break order).
            block.leaf = new_leaf
            pools[table[new_leaf ^ leaf]].append(block)
        elif slot is not None or is_write or create:
            found = False
            pool = self._block_pool
            if pool:
                block = pool.pop()
                block.address = address
                block.leaf = new_leaf
                block.data = None
            else:
                block = Block(address=address, leaf=new_leaf, data=None)
            stash = self._stash
            stash_blocks[address] = block
            bucket = by_leaf.get(new_leaf)
            if bucket is None:
                by_leaf[new_leaf] = [block]
            else:
                bucket.append(block)
            occupancy = len(stash_blocks)
            if occupancy > stash._max_occupancy:  # noqa: SLF001
                stash._max_occupancy = occupancy  # noqa: SLF001
        else:
            found = False
            block = None

        if slot is not None:
            labels = block.data
            if labels is None:
                randrange = self._rng.randrange
                labels = [randrange(child_num_leaves) for _ in range(labels_per_block)]
                block.data = labels
            result = labels[slot]
            labels[slot] = child_new_leaf
        elif block is not None:
            if is_write:
                block.data = data
            result = block.data
        else:
            result = None

        # ---- flattened write-back: bucket stash candidates ----
        has_stash = False
        if by_leaf:
            by_stash = self._by_deepest_stash
            caps = self._class_cap
            base_pending = pending
            for other_leaf, group in by_leaf.items():
                deepest = table[other_leaf ^ leaf]
                ready = by_stash[deepest]
                if len(ready) < caps[deepest]:
                    ready.extend(group)
                    pending += len(group)
            has_stash = pending != base_pending

        if has_stash:
            # Cold path: stash candidates compete for slots too.
            self._path_rbases = rbases
            written, placed_stash, spilled = self._place_into_slots(pending)
            if placed_stash:
                self._stash.remove_placed(placed_stash)
        else:
            # ---- fused buffer-only placement (dominant case) ----
            # KEEP IN SYNC with _place_buffer_only and the inline copy in
            # access_many.
            z = self._z
            by_buffer_rev = self._by_buffer_rev
            spilled = None
            occupancy_delta = 0
            written = 0
            nb = 0
            placement = zip(rbases, by_buffer_rev)
            for base, b_ready in placement:
                old = slots[base]
                if b_ready and not nb:
                    rb = len(b_ready)
                    if rb <= z:
                        slots[base + 1 : base + 1 + rb] = b_ready
                        b_ready.clear()
                        take = rb
                    else:
                        nb = rb - z
                        slots[base + 1 : base + 1 + z] = b_ready[nb:]
                        del b_ready[nb:]
                        if spilled is None:
                            spilled = []
                        spilled.extend(b_ready)
                        b_ready.clear()
                        take = z
                elif nb:
                    if b_ready:
                        spilled.extend(b_ready)
                        b_ready.clear()
                        nb = len(spilled)
                    take = nb if nb < z else z
                    nb -= take
                    slots[base + 1 : base + 1 + take] = spilled[nb:]
                    del spilled[nb:]
                else:
                    if old:
                        slots[base] = 0
                        occupancy_delta -= old
                    continue
                if old != take:
                    slots[base] = take
                    occupancy_delta += take - old
                written += take
                if written == pending:
                    # Everything is placed: the remaining (shallower)
                    # buckets only need their counts zeroed.
                    for base, b_ready in placement:
                        old = slots[base]
                        if old:
                            slots[base] = 0
                            occupancy_delta -= old
                    break
            self._storage._occupancy += occupancy_delta  # noqa: SLF001

        if spilled:
            add = self._stash.add
            for kept_block in spilled:
                add(kept_block)
        stats.path_writes += 1
        stats.blocks_written += written

        if slot is not None:
            return result, labels
        return result, found

    def _read_path_classified(
        self, leaf: int, address: int | None
    ) -> tuple[tuple[int, ...], int, Block | None]:
        """Single-pass path read for the classified fast path.

        Reads the path to ``leaf`` and classifies every block by the
        deepest level it may occupy on that same path, straight into the
        by-buffer class pools — fusing the path read with the write-back's
        classification pass, with no intermediate path-buffer list.  When
        ``address`` is given (the accessed block is not in the stash), the
        matching block is *not* classified but returned as ``target``; the
        caller classifies it after retargeting, so the freshly remapped
        block always sits last in its class pool — the same tie-break the
        buffer-based generic path applies by moving the accessed block to
        the end of the path buffer.

        Only valid when :attr:`_classified_fast` is set.  Returns
        ``(rbases, count, target)``: the deepest-first bucket bases for the
        placement walk, the number of real blocks read, and the matched
        block (``None`` when absent or not asked for).

        This is the canonical copy of the single-pass read; for per-call
        overhead reasons :meth:`access_many` and
        :meth:`_fused_single_access` inline the same body — keep all three
        in sync.
        """
        if self._record_path_trace:
            self._path_trace.append(leaf)
        pairs = self._path_pairs
        pair = pairs[leaf]
        if pair is None:
            bases = self._storage._bases(leaf)  # noqa: SLF001 - friend fast path
            pair = pairs[leaf] = (bases, bases[::-1])
        bases, rbases = pair
        slots = self._slots
        table = self._deepest_table
        pools = self._by_deepest_buffer
        pending = 0
        target: Block | None = None
        if address is None:
            for base in bases:
                count = slots[base]
                if count:
                    pending += count
                    if count == 1:
                        blk = slots[base + 1]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 2:
                        blk = slots[base + 1]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 3:
                        blk = slots[base + 1]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 3]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 4:
                        blk = slots[base + 1]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 3]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 4]
                        pools[table[blk.leaf ^ leaf]].append(blk)
                    else:
                        for blk in slots[base + 1 : base + 1 + count]:
                            pools[table[blk.leaf ^ leaf]].append(blk)
        else:
            for base in bases:
                count = slots[base]
                if count:
                    pending += count
                    if count == 1:
                        blk = slots[base + 1]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 2:
                        blk = slots[base + 1]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 3:
                        blk = slots[base + 1]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 3]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                    elif count == 4:
                        blk = slots[base + 1]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 2]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 3]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                        blk = slots[base + 4]
                        if blk.address == address:
                            target = blk
                        else:
                            pools[table[blk.leaf ^ leaf]].append(blk)
                    else:
                        for blk in slots[base + 1 : base + 1 + count]:
                            if blk.address == address:
                                target = blk
                            else:
                                pools[table[blk.leaf ^ leaf]].append(blk)
        transient = len(self._stash_blocks) + pending
        if transient > self._transient_peak:
            self._transient_peak = transient
        stats = self._stats
        stats.path_reads += 1
        stats.blocks_read += pending
        return rbases, pending, target

    def _write_back_classified(
        self, leaf: int, rbases: tuple[int, ...], pending: int
    ) -> None:
        """Write-back counterpart of :meth:`_read_path_classified`.

        The buffer-side candidates were already classified during the path
        read (plus the retargeted accessed block, appended by the caller);
        this buckets the stash by distinct leaf (capped per class), runs the
        fused deepest-first placement straight into the slot array and
        applies the two remainders to the stash's indexes.
        """
        by_leaf = self._stash_by_leaf
        self._path_rbases = rbases
        if by_leaf:
            by_stash = self._by_deepest_stash
            table = self._deepest_table
            caps = self._class_cap
            base_pending = pending
            for other_leaf, group in by_leaf.items():
                deepest = table[other_leaf ^ leaf]
                ready = by_stash[deepest]
                if len(ready) < caps[deepest]:
                    ready.extend(group)
                    pending += len(group)
            if pending != base_pending:
                written, placed_stash, avail_buffer = self._place_into_slots(pending)
                if placed_stash:
                    self._stash.remove_placed(placed_stash)
                if avail_buffer:
                    add = self._stash.add
                    for block in avail_buffer:
                        add(block)
                stats = self._stats
                stats.path_writes += 1
                stats.blocks_written += written
                return
        written, avail_buffer = self._place_buffer_only(pending)
        if avail_buffer:
            add = self._stash.add
            for block in avail_buffer:
                add(block)
        stats = self._stats
        stats.path_writes += 1
        stats.blocks_written += written

    def _write_back_path(self, leaf: int) -> None:
        """Greedy eviction: place stash blocks as deep as possible on ``leaf``'s path.

        The candidate pool is every stash block plus every block of the
        pending path buffer, bucketed by the deepest level it may occupy on
        this path (one precomputed-table lookup per distinct stash leaf and
        per buffer block).  The two sources are kept in separate pools: when
        a level has room, buffer blocks are placed first (the same tie-break
        as the seed algorithm, where freshly read blocks sat at the pop end
        of the candidate list).  A placed buffer block therefore never
        touches the stash's indexes at all, an unplaced stash block stays
        where it is, and only the two small remainders — placed stash blocks
        and unplaced buffer blocks — pay an index update.

        Against the array-backed :class:`FlatTreeStorage` the placement pass
        writes each level's blocks straight into the slot array as it decides
        them — no per-level bucket lists and no second walk over the path.
        """
        levels = self._levels

        # The stash's leaf index lets grouping run per distinct leaf (one
        # XOR per leaf) instead of rescanning every block; the scratch
        # lists are reused across calls and drained level by level below.
        by_stash = self._by_deepest_stash
        buffer = self._path_buffer
        self._path_buffer = ()
        table = self._deepest_table
        caps = self._class_cap
        pending = len(buffer)
        by_leaf = self._stash_by_leaf
        if table is not None:
            if by_leaf:
                for other_leaf, group in by_leaf.items():
                    deepest = table[other_leaf ^ leaf]
                    ready = by_stash[deepest]
                    if len(ready) < caps[deepest]:
                        ready.extend(group)
                        pending += len(group)
            pools = self._by_deepest_buffer
            for block in buffer:
                pools[table[block.leaf ^ leaf]].append(block)
        else:
            if by_leaf:
                for other_leaf, group in by_leaf.items():
                    diff = other_leaf ^ leaf
                    deepest = levels if not diff else levels - diff.bit_length()
                    ready = by_stash[deepest]
                    if len(ready) < caps[deepest]:
                        ready.extend(group)
                        pending += len(group)
            pools = self._by_deepest_buffer
            for block in buffer:
                diff = block.leaf ^ leaf
                pools[levels if not diff else levels - diff.bit_length()].append(block)

        if self._fused:
            written, placed_stash, avail_buffer = self._place_into_slots(pending)
        else:
            written, placed_stash, avail_buffer = self._place_into_levels(leaf)

        if placed_stash:
            self._stash.remove_placed(placed_stash)
        if avail_buffer:
            # Unplaced buffer blocks now genuinely enter the stash.
            add = self._stash.add
            for block in avail_buffer:
                add(block)
        stats = self._stats
        stats.path_writes += 1
        stats.blocks_written += written

    def _place_into_slots(self, pending: int) -> tuple[int, list[Block], list[Block]]:
        """Fused placement: write levels directly into the flat slot array.

        Walks the path deepest-first exactly once.  Blocks whose deepest
        legal level is the current one join the available pools; each level
        takes up to ``Z`` (buffer blocks first), and the chosen blocks are
        sliced straight into the storage's slots.  The selection is
        identical to :meth:`_place_into_levels` — the two differ only in
        where the chosen blocks land — with two shortcuts: once all
        ``pending`` candidates are placed the remaining (shallower) buckets
        are cleared without consulting the pools, and a level whose ready
        buffer blocks fit entirely skips the pool bookkeeping.  Returns the
        number of blocks written, the placed stash blocks (for the index
        batch-remove) and the leftover buffer blocks (which enter the
        stash).
        """
        z = self._z
        storage = self._storage
        slots = self._slots
        avail_buffer: list[Block] = []
        avail_stash: list[Block] = []
        placed_stash: list[Block] = []
        occupancy_delta = 0
        written = 0
        nb = ns = 0
        # Deepest-first walk: path bucket bases (cached by the preceding
        # read) zipped with the matching buffer/stash class lists.
        for base, b_ready, s_ready in zip(
            self._path_rbases, self._by_buffer_rev, self._by_stash_rev
        ):
            old = slots[base]
            if written == pending:
                # Every candidate is placed; shallower buckets only need
                # their counts zeroed (slots beyond a bucket's count are
                # never read, so stale references need no clearing).
                if old:
                    slots[base] = 0
                    occupancy_delta -= old
                continue
            take = 0
            if b_ready and not nb:
                rb = len(b_ready)
                if rb <= z:
                    # Common case: this level's own buffer blocks all fit.
                    slots[base + 1 : base + 1 + rb] = b_ready
                    b_ready.clear()
                    take = rb
                else:
                    nb = rb - z
                    slots[base + 1 : base + 1 + z] = b_ready[nb:]
                    del b_ready[nb:]
                    avail_buffer.extend(b_ready)
                    b_ready.clear()
                    take = z
            elif nb:
                if b_ready:
                    avail_buffer.extend(b_ready)
                    b_ready.clear()
                    nb = len(avail_buffer)
                take = nb if nb < z else z
                nb -= take
                slots[base + 1 : base + 1 + take] = avail_buffer[nb:]
                del avail_buffer[nb:]
            if s_ready:
                avail_stash.extend(s_ready)
                s_ready.clear()
                ns = len(avail_stash)
            if ns and take < z:
                extra = z - take if z - take < ns else ns
                ns -= extra
                placed = avail_stash[ns:]
                del avail_stash[ns:]
                slots[base + 1 + take : base + 1 + take + extra] = placed
                placed_stash += placed
                take += extra
            if old != take:
                slots[base] = take
                occupancy_delta += take - old
            written += take
        storage._occupancy += occupancy_delta  # noqa: SLF001
        return written, placed_stash, avail_buffer

    def _place_buffer_only(self, pending: int) -> tuple[int, list[Block]]:
        """Fused placement when no stash candidates were collected.

        The dominant steady-state case: the only candidates are the freshly
        read path blocks (plus the retargeted accessed block), so the
        stash-side pools, caps and the placed-stash remainder drop out of
        the walk entirely.  Chooses exactly the blocks
        :meth:`_place_into_slots` would with empty stash classes.  Returns
        the number of blocks written and the leftover buffer blocks (which
        enter the stash).

        This is the canonical copy of the buffer-only walk; for per-call
        overhead reasons :meth:`access_many` and
        :meth:`_fused_single_access` inline the same body — keep all three
        in sync.
        """
        z = self._z
        storage = self._storage
        slots = self._slots
        avail_buffer: list[Block] = []
        occupancy_delta = 0
        written = 0
        nb = 0
        placement = zip(self._path_rbases, self._by_buffer_rev)
        for base, b_ready in placement:
            old = slots[base]
            if b_ready and not nb:
                rb = len(b_ready)
                if rb <= z:
                    slots[base + 1 : base + 1 + rb] = b_ready
                    b_ready.clear()
                    take = rb
                else:
                    nb = rb - z
                    slots[base + 1 : base + 1 + z] = b_ready[nb:]
                    del b_ready[nb:]
                    avail_buffer.extend(b_ready)
                    b_ready.clear()
                    take = z
            elif nb:
                if b_ready:
                    avail_buffer.extend(b_ready)
                    b_ready.clear()
                    nb = len(avail_buffer)
                take = nb if nb < z else z
                nb -= take
                slots[base + 1 : base + 1 + take] = avail_buffer[nb:]
                del avail_buffer[nb:]
            else:
                if old:
                    slots[base] = 0
                    occupancy_delta -= old
                continue
            if old != take:
                slots[base] = take
                occupancy_delta += take - old
            written += take
            if written == pending:
                # Everything is placed: the remaining (shallower) buckets
                # only need their counts zeroed.
                for base, b_ready in placement:
                    old = slots[base]
                    if old:
                        slots[base] = 0
                        occupancy_delta -= old
                break
        storage._occupancy += occupancy_delta  # noqa: SLF001
        return written, avail_buffer

    def _place_into_levels(self, leaf: int) -> tuple[int, list[Block], list[Block]]:
        """Generic placement: build per-level buckets and hand them to the
        storage's batched ``write_path_levels`` (kept for wrapper back-ends
        such as encrypted or integrity-verifying storage, which intercept
        whole-path writes).  Chooses exactly the same blocks per level as
        :meth:`_place_into_slots`."""
        levels = self._levels
        z = self._z
        by_stash = self._by_deepest_stash
        by_buffer = self._by_deepest_buffer
        level_buckets: list[list[Block] | None] = [None] * (levels + 1)
        avail_buffer: list[Block] = []
        avail_stash: list[Block] = []
        placed_stash: list[Block] = []
        written = 0
        nb = ns = 0
        for level in range(levels, -1, -1):
            ready = by_buffer[level]
            if ready:
                avail_buffer.extend(ready)
                ready.clear()
                nb = len(avail_buffer)
            ready = by_stash[level]
            if ready:
                avail_stash.extend(ready)
                ready.clear()
                ns = len(avail_stash)
            if nb:
                take = nb if nb < z else z
                nb -= take
                bucket = avail_buffer[nb:]
                del avail_buffer[nb:]
                if take < z and ns:
                    extra = z - take if z - take < ns else ns
                    ns -= extra
                    placed = avail_stash[ns:]
                    del avail_stash[ns:]
                    bucket += placed
                    placed_stash += placed
                    take += extra
            elif ns:
                take = ns if ns < z else z
                ns -= take
                bucket = avail_stash[ns:]
                del avail_stash[ns:]
                placed_stash += bucket
            else:
                continue
            level_buckets[level] = bucket
            written += take
        self._storage.write_path_levels(leaf, level_buckets)
        return written, placed_stash, avail_buffer
