"""ORAM tree geometry and bucket storage back-ends.

The ORAM tree is a full binary tree of ``L + 1`` levels stored in heap
order: the root is bucket 0 and the children of bucket ``i`` are
``2i + 1`` and ``2i + 2``.  Leaf ``l`` (``0 <= l < 2^L``) lives in bucket
``2^L - 1 + l``.

Two storage back-ends are provided:

* :class:`PlainTreeStorage` keeps buckets as Python lists of
  :class:`~repro.core.types.Block` — the functional back-end used by the
  design-space sweeps, where only stash behaviour and access counts matter.
* :class:`EncryptedTreeStorage` keeps buckets as ciphertext produced by a
  :class:`~repro.crypto.bucket_encryption.BucketCipher`, exercising the full
  randomized-encryption path of Section 2.2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.bucket_codec import BucketCodec
from repro.core.config import ORAMConfig
from repro.core.types import Block
from repro.crypto.bucket_encryption import BucketCipher
from repro.errors import ConfigurationError


def path_indices(leaf: int, levels: int) -> list[int]:
    """Bucket indices on the path from the root to ``leaf``, root first.

    Parameters
    ----------
    leaf:
        Leaf label in ``[0, 2^levels)``.
    levels:
        Tree depth ``L``.
    """
    num_leaves = 1 << levels
    if not 0 <= leaf < num_leaves:
        raise ConfigurationError(f"leaf {leaf} out of range [0, {num_leaves})")
    index = num_leaves - 1 + leaf
    path = [index]
    while index > 0:
        index = (index - 1) // 2
        path.append(index)
    path.reverse()
    return path


def common_path_length(leaf_a: int, leaf_b: int, levels: int) -> int:
    """Number of buckets shared by the paths to two leaves (Section 3.1.3).

    Any two paths share at least the root, so the result is in
    ``[1, L + 1]``.
    """
    path_a = path_indices(leaf_a, levels)
    path_b = path_indices(leaf_b, levels)
    shared = 0
    for bucket_a, bucket_b in zip(path_a, path_b):
        if bucket_a != bucket_b:
            break
        shared += 1
    return shared


def bucket_level(bucket_index: int) -> int:
    """Level of a bucket in heap order (root = level 0)."""
    level = 0
    while bucket_index >= (1 << (level + 1)) - 1:
        level += 1
    return level


class TreeStorage(ABC):
    """Abstract bucket store for one Path ORAM tree."""

    def __init__(self, config: ORAMConfig) -> None:
        self._config = config

    @property
    def config(self) -> ORAMConfig:
        return self._config

    @property
    def num_buckets(self) -> int:
        return self._config.num_buckets

    def path(self, leaf: int) -> list[int]:
        """Bucket indices along the path to ``leaf``, root first."""
        return path_indices(leaf, self._config.levels)

    @abstractmethod
    def read_bucket(self, bucket_index: int) -> list[Block]:
        """Return the real blocks stored in one bucket."""

    @abstractmethod
    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        """Overwrite one bucket with up to ``Z`` real blocks (padded with
        dummies by the back-end as needed)."""

    def read_path(self, leaf: int) -> list[Block]:
        """Read and return all real blocks on the path to ``leaf``."""
        blocks: list[Block] = []
        for bucket_index in self.path(leaf):
            blocks.extend(self.read_bucket(bucket_index))
        return blocks

    def write_path(self, leaf: int, assignments: dict[int, list[Block]]) -> None:
        """Write back a path.

        ``assignments`` maps bucket index → blocks; buckets on the path that
        are missing from the mapping are written empty (all dummies), which
        matches the protocol's requirement that every bucket on the path is
        re-encrypted and rewritten.
        """
        for bucket_index in self.path(leaf):
            self.write_bucket(bucket_index, assignments.get(bucket_index, []))

    def occupancy(self) -> int:
        """Total number of real blocks currently stored in the tree."""
        return sum(len(self.read_bucket(i)) for i in range(self.num_buckets))


class PlainTreeStorage(TreeStorage):
    """Functional bucket store holding :class:`Block` objects directly."""

    def __init__(self, config: ORAMConfig) -> None:
        super().__init__(config)
        self._buckets: list[list[Block]] = [[] for _ in range(config.num_buckets)]

    def read_bucket(self, bucket_index: int) -> list[Block]:
        return list(self._buckets[bucket_index])

    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        if len(blocks) > self._config.z:
            raise ConfigurationError(
                f"bucket {bucket_index} overfilled: {len(blocks)} > Z={self._config.z}"
            )
        self._buckets[bucket_index] = list(blocks)


class EncryptedTreeStorage(TreeStorage):
    """Bucket store that keeps every bucket as randomized ciphertext.

    Each bucket is serialised by :class:`BucketCodec` (real blocks padded
    with dummies up to ``Z``) and encrypted by the supplied cipher, so an
    external observer of this storage sees only ciphertext that changes on
    every write — the property Section 2.2 requires.
    """

    def __init__(self, config: ORAMConfig, cipher: BucketCipher) -> None:
        super().__init__(config)
        self._cipher = cipher
        self._codec = BucketCodec(config)
        self._buckets: list[bytes | None] = [None] * config.num_buckets

    @property
    def cipher(self) -> BucketCipher:
        return self._cipher

    def read_bucket(self, bucket_index: int) -> list[Block]:
        ciphertext = self._buckets[bucket_index]
        if ciphertext is None:
            # Uninitialised DRAM: treated as an empty bucket (the paper's
            # integrity layer handles "never written" buckets explicitly).
            return []
        plaintexts = self._cipher.decrypt(bucket_index, ciphertext)
        return self._codec.decode_blocks(plaintexts)

    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        if len(blocks) > self._config.z:
            raise ConfigurationError(
                f"bucket {bucket_index} overfilled: {len(blocks)} > Z={self._config.z}"
            )
        plaintexts = self._codec.encode_blocks(blocks)
        self._buckets[bucket_index] = self._cipher.encrypt(bucket_index, plaintexts)

    def raw_bucket(self, bucket_index: int) -> bytes | None:
        """Ciphertext of one bucket as an adversary would see it."""
        return self._buckets[bucket_index]
