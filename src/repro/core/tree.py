"""ORAM tree geometry and bucket storage back-ends.

The ORAM tree is a full binary tree of ``L + 1`` levels stored in heap
order: the root is bucket 0 and the children of bucket ``i`` are
``2i + 1`` and ``2i + 2``.  Leaf ``l`` (``0 <= l < 2^L``) lives in bucket
``2^L - 1 + l``.

Three storage back-ends are provided:

* :class:`FlatTreeStorage` keeps every bucket in a contiguous preallocated
  slot array — the fast functional back-end the design-space sweeps run on
  by default.  It implements the batched path fast paths without per-bucket
  list copies and maintains its occupancy counter in O(1).
* :class:`PlainTreeStorage` keeps buckets as Python lists of
  :class:`~repro.core.types.Block` — the straightforward reference back-end
  the fast one is differentially tested against.
* :class:`EncryptedTreeStorage` keeps buckets as ciphertext produced by a
  :class:`~repro.crypto.bucket_encryption.BucketCipher`, exercising the full
  randomized-encryption path of Section 2.2.

:class:`TreeStorage` also defines the batched *path* operations the Path
ORAM protocol drives (:meth:`TreeStorage.read_path_blocks` and
:meth:`TreeStorage.write_path`) with generic per-bucket default
implementations, so wrappers such as the integrity-verifying storage keep
working unchanged while array-backed storage can override them wholesale.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.bucket_codec import BucketCodec
from repro.core.config import ORAMConfig
from repro.core.types import Block
from repro.crypto.bucket_encryption import BucketCipher
from repro.errors import ConfigurationError


def path_indices(leaf: int, levels: int) -> list[int]:
    """Bucket indices on the path from the root to ``leaf``, root first.

    Parameters
    ----------
    leaf:
        Leaf label in ``[0, 2^levels)``.
    levels:
        Tree depth ``L``.
    """
    num_leaves = 1 << levels
    if not 0 <= leaf < num_leaves:
        raise ConfigurationError(f"leaf {leaf} out of range [0, {num_leaves})")
    index = num_leaves - 1 + leaf
    path = [index]
    while index > 0:
        index = (index - 1) // 2
        path.append(index)
    path.reverse()
    return path


def common_path_length(leaf_a: int, leaf_b: int, levels: int) -> int:
    """Number of buckets shared by the paths to two leaves (Section 3.1.3).

    Any two paths share at least the root, so the result is in
    ``[1, L + 1]``.
    """
    path_a = path_indices(leaf_a, levels)
    path_b = path_indices(leaf_b, levels)
    shared = 0
    for bucket_a, bucket_b in zip(path_a, path_b):
        if bucket_a != bucket_b:
            break
        shared += 1
    return shared


def bucket_level(bucket_index: int) -> int:
    """Level of a bucket in heap order (root = level 0)."""
    level = 0
    while bucket_index >= (1 << (level + 1)) - 1:
        level += 1
    return level


class TreeStorage(ABC):
    """Abstract bucket store for one Path ORAM tree."""

    def __init__(self, config: ORAMConfig) -> None:
        self._config = config
        self._path_cache: dict[int, tuple[int, ...]] = {}

    @property
    def config(self) -> ORAMConfig:
        return self._config

    @property
    def num_buckets(self) -> int:
        return self._config.num_buckets

    def path(self, leaf: int) -> tuple[int, ...]:
        """Bucket indices along the path to ``leaf``, root first.

        Paths are memoised per leaf: the protocol touches the same table on
        every read, write-back and dummy access, so after the first access
        to a leaf this is a single dictionary lookup with no
        range-revalidation.
        """
        path = self._path_cache.get(leaf)
        if path is None:
            path = tuple(path_indices(leaf, self._config.levels))
            self._path_cache[leaf] = path
        return path

    @abstractmethod
    def read_bucket(self, bucket_index: int) -> list[Block]:
        """Return the real blocks stored in one bucket."""

    @abstractmethod
    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        """Overwrite one bucket with up to ``Z`` real blocks (padded with
        dummies by the back-end as needed)."""

    def read_path(self, leaf: int) -> list[Block]:
        """Read and return all real blocks on the path to ``leaf``."""
        blocks: list[Block] = []
        for bucket_index in self.path(leaf):
            blocks.extend(self.read_bucket(bucket_index))
        return blocks

    def read_path_blocks(self, leaf: int) -> list[Block]:
        """Batched path read used by the protocol's hot path.

        Semantically identical to :meth:`read_path`; back-ends that can read
        a whole path without per-bucket copies override this.  The default
        delegates to :meth:`read_path` so wrapper storages (e.g. integrity
        verification) that override ``read_path`` keep intercepting protocol
        reads.
        """
        return self.read_path(leaf)

    def write_path(self, leaf: int, assignments: dict[int, list[Block]]) -> None:
        """Write back a path.

        ``assignments`` maps bucket index → blocks; buckets on the path that
        are missing from the mapping are written empty (all dummies), which
        matches the protocol's requirement that every bucket on the path is
        re-encrypted and rewritten.
        """
        for bucket_index in self.path(leaf):
            self.write_bucket(bucket_index, assignments.get(bucket_index, []))

    def write_path_levels(self, leaf: int, level_buckets: list[list[Block] | None]) -> None:
        """Batched path write used by the protocol's hot path.

        ``level_buckets`` is aligned with the path (root first); ``None`` or
        an empty list writes that bucket empty.  The default converts to the
        :meth:`write_path` mapping so wrapper storages that override
        ``write_path`` keep intercepting protocol writes.
        """
        assignments: dict[int, list[Block]] = {}
        for bucket_index, blocks in zip(self.path(leaf), level_buckets):
            if blocks:
                assignments[bucket_index] = blocks
        self.write_path(leaf, assignments)

    def occupancy(self) -> int:
        """Total number of real blocks currently stored in the tree."""
        return sum(len(self.read_bucket(i)) for i in range(self.num_buckets))


class PlainTreeStorage(TreeStorage):
    """Functional bucket store holding :class:`Block` objects directly."""

    def __init__(self, config: ORAMConfig) -> None:
        super().__init__(config)
        self._buckets: list[list[Block]] = [[] for _ in range(config.num_buckets)]

    def read_bucket(self, bucket_index: int) -> list[Block]:
        return list(self._buckets[bucket_index])

    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        if len(blocks) > self._config.z:
            raise ConfigurationError(
                f"bucket {bucket_index} overfilled: {len(blocks)} > Z={self._config.z}"
            )
        self._buckets[bucket_index] = list(blocks)


class FlatTreeStorage(TreeStorage):
    """Array-backed bucket store: the fast functional back-end.

    All ``num_buckets * Z`` block slots live in one preallocated flat list;
    bucket ``i`` owns slots ``[i*Z, (i+1)*Z)`` and its leading count slot
    records how many of them hold real blocks.  The count is authoritative:
    slots past it are never read, so shrinking a bucket only rewrites the
    count (stale block references linger in the array, bounded by its size).
    Compared to :class:`PlainTreeStorage` this avoids a per-bucket list
    allocation on every read and write, reads whole paths in a single pass,
    and maintains :meth:`occupancy` as an O(1) counter instead of rescanning
    the tree.

    Behaviour is bit-identical to :class:`PlainTreeStorage` (the
    differential property test in ``tests/test_core_properties.py`` enforces
    this), so it is the default back-end for functional simulations.
    """

    #: Slot-array stride per bucket: slot 0 holds the bucket's real-block
    #: count, slots 1..Z hold the blocks.  One contiguous array, one index.
    def __init__(self, config: ORAMConfig) -> None:
        super().__init__(config)
        self._z = config.z
        self._stride = config.z + 1
        slots: list[Block | int | None] = [None] * (config.num_buckets * self._stride)
        for bucket_index in range(config.num_buckets):
            slots[bucket_index * self._stride] = 0
        self._slots = slots
        self._occupancy = 0
        # Per-leaf tuple of bucket base offsets (bucket_index * stride),
        # cached like the path table.
        self._base_cache: dict[int, tuple[int, ...]] = {}

    def _bases(self, leaf: int) -> tuple[int, ...]:
        bases = self._base_cache.get(leaf)
        if bases is None:
            stride = self._stride
            bases = tuple(index * stride for index in self.path(leaf))
            self._base_cache[leaf] = bases
        return bases

    def read_bucket(self, bucket_index: int) -> list[Block]:
        base = bucket_index * self._stride
        return self._slots[base + 1 : base + 1 + self._slots[base]]

    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        count = len(blocks)
        if count > self._z:
            raise ConfigurationError(
                f"bucket {bucket_index} overfilled: {count} > Z={self._z}"
            )
        base = bucket_index * self._stride
        slots = self._slots
        old = slots[base]
        slots[base + 1 : base + 1 + count] = blocks
        slots[base] = count
        self._occupancy += count - old

    def read_path_blocks(self, leaf: int) -> list[Block]:
        """Collect every real block on the path in one pass, no copies."""
        slots = self._slots
        blocks: list[Block] = []
        append = blocks.append
        for base in self._bases(leaf):
            count = slots[base]
            if count:
                if count == 1:
                    append(slots[base + 1])
                else:
                    blocks.extend(slots[base + 1 : base + 1 + count])
        return blocks

    def write_path(self, leaf: int, assignments: dict[int, list[Block]]) -> None:
        """Write a whole path directly into the slot array."""
        path = self.path(leaf)
        level_buckets: list[list[Block] | None] = [
            assignments.get(bucket_index) for bucket_index in path
        ]
        self.write_path_levels(leaf, level_buckets)

    def write_path_levels(self, leaf: int, level_buckets: list[list[Block] | None]) -> None:
        """Write a whole path directly into the slot array, level-aligned."""
        slots = self._slots
        z = self._z
        occupancy = self._occupancy
        # Validate before mutating anything so a mid-path overfill cannot
        # leave the slot array and the occupancy counter inconsistent.
        for blocks in level_buckets:
            if blocks and len(blocks) > z:
                raise ConfigurationError(f"bucket overfilled: {len(blocks)} > Z={z}")
        for base, blocks in zip(self._bases(leaf), level_buckets):
            old = slots[base]
            if blocks:
                count = len(blocks)
                slots[base + 1 : base + 1 + count] = blocks
            elif old:
                count = 0
            else:
                continue
            slots[base] = count
            occupancy += count - old
        self._occupancy = occupancy

    def occupancy(self) -> int:
        """Real blocks stored in the tree — an O(1) maintained counter."""
        return self._occupancy


class EncryptedTreeStorage(TreeStorage):
    """Bucket store that keeps every bucket as randomized ciphertext.

    Each bucket is serialised by :class:`BucketCodec` (real blocks padded
    with dummies up to ``Z``) and encrypted by the supplied cipher, so an
    external observer of this storage sees only ciphertext that changes on
    every write — the property Section 2.2 requires.
    """

    def __init__(self, config: ORAMConfig, cipher: BucketCipher) -> None:
        super().__init__(config)
        self._cipher = cipher
        self._codec = BucketCodec(config)
        self._buckets: list[bytes | None] = [None] * config.num_buckets

    @property
    def cipher(self) -> BucketCipher:
        return self._cipher

    def read_bucket(self, bucket_index: int) -> list[Block]:
        ciphertext = self._buckets[bucket_index]
        if ciphertext is None:
            # Uninitialised DRAM: treated as an empty bucket (the paper's
            # integrity layer handles "never written" buckets explicitly).
            return []
        plaintexts = self._cipher.decrypt(bucket_index, ciphertext)
        return self._codec.decode_blocks(plaintexts)

    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        if len(blocks) > self._config.z:
            raise ConfigurationError(
                f"bucket {bucket_index} overfilled: {len(blocks)} > Z={self._config.z}"
            )
        plaintexts = self._codec.encode_blocks(blocks)
        self._buckets[bucket_index] = self._cipher.encrypt(bucket_index, plaintexts)

    def raw_bucket(self, bucket_index: int) -> bytes | None:
        """Ciphertext of one bucket as an adversary would see it."""
        return self._buckets[bucket_index]

    def raw_path(self, leaf: int) -> list[bytes]:
        """Raw ciphertext of every bucket on the path to ``leaf``, root first.

        Never-written buckets read as ``b""``.  This is the one read entry
        point the integrity layer verifies against, and the hook point the
        fault injector (:mod:`repro.faults`) intercepts to model a memory
        device returning corrupted, stale or lost data.
        """
        buckets = self._buckets
        return [buckets[index] or b"" for index in self.path(leaf)]
