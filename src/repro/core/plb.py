"""PosMap Lookaside Buffer: a bounded per-level label cache for the chain.

PR 4's ``coalesce_position_ops`` memoised the *single last* physical op per
chain level, which pays off on sequential streams (the next access usually
lands in the same position-map block) but saves ~0 on pointer-chasing
workloads whose hot set spans a handful of PM blocks.  Freecursive ORAM
(Fletcher et al., ASPLOS 2015) — the source paper group's successor design —
generalises the idea into a small PosMap Lookaside Buffer: a cache of recent
position-map *blocks* per recursion level, hit ⇒ the whole suffix of the
recursive walk above that level is skipped.

:class:`PosMapLookaside` is that cache.  One insertion-ordered dict per chain
level maps a PM block address to the block's **live label list** — the same
list object the fused path ops mutate in place, so a cached entry always
reflects the block's current labels without copying.  Hit safety does not
need the memo's "last op" suffix property: serving a hit leaves the cached
block *unmoved* (it is not read from or written to the tree), so the label
for it stored one level up stays accurate and every level above is untouched.

Determinism: plain dicts, MRU via delete-and-reinsert, eviction of the
oldest entry (``next(iter(d))``) — no clocks, no hashing randomness beyond
int keys (which hash to themselves).  A capacity of 1 reproduces the PR 4
memo bit-for-bit; the legacy ``coalesce_position_ops`` flag now maps to it.

The cache trusts its caller to invalidate: :class:`~repro.core.hierarchical.
HierarchicalPathORAM` routes every ``access_position_block`` result and every
dynamic super-block retarget through :meth:`install` / :meth:`invalidate`
(see the ``_position_block_observer`` / ``_retarget_observer`` hooks on
:class:`~repro.core.path_oram.PathORAM`), so a stale label can never be
served after a cohort move rewrites the data ORAM's leaves.
"""

from __future__ import annotations

__all__ = ["PosMapLookaside"]


class PosMapLookaside:
    """Bounded LRU over position-map block label lists, one dict per level.

    ``levels[i]`` caches blocks of chain ORAM ``i`` (index 0 — the data
    ORAM — is present but never used, keeping level indices aligned with
    ``HierarchicalPathORAM.orams``).  The hot loops index ``levels``
    directly and inline the dict operations; the methods here are the
    reference semantics and serve the non-fused / looped paths.
    """

    __slots__ = ("levels", "entries_per_level", "hits", "misses")

    def __init__(self, num_orams: int, entries_per_level: int) -> None:
        if entries_per_level < 1:
            raise ValueError("entries_per_level must be >= 1")
        #: One insertion-ordered {block_address: labels} dict per chain level.
        self.levels: list[dict[int, list[int]]] = [{} for _ in range(num_orams)]
        self.entries_per_level = entries_per_level
        #: Lifetime lookup outcomes (engine-level; per-ORAM counts live in
        #: ``AccessStats.plb_hits`` / ``plb_misses``).
        self.hits = 0
        self.misses = 0

    def lookup(self, level: int, block_address: int):
        """The cached label list for ``block_address``, MRU-promoted, or None."""
        cache = self.levels[level]
        labels = cache.get(block_address)
        if labels is None:
            self.misses += 1
            return None
        self.hits += 1
        # MRU promotion: reinsert so eviction order tracks recency.
        del cache[block_address]
        cache[block_address] = labels
        return labels

    def install(self, level: int, block_address: int, labels: list[int]) -> None:
        """Cache (or refresh) a block's live label list after a physical op."""
        cache = self.levels[level]
        if block_address in cache:
            del cache[block_address]
        elif len(cache) >= self.entries_per_level:
            del cache[next(iter(cache))]
        cache[block_address] = labels

    def invalidate(self, level: int, block_address: int) -> None:
        """Drop one block's entry (no-op when absent)."""
        self.levels[level].pop(block_address, None)

    def invalidate_range(self, level: int, lo_block: int, hi_block: int) -> None:
        """Drop every cached block in ``[lo_block, hi_block]`` (inclusive)."""
        cache = self.levels[level]
        if not cache:
            return
        for block_address in range(lo_block, hi_block + 1):
            cache.pop(block_address, None)

    def clear(self) -> None:
        """Empty every level (capacity and counters are kept)."""
        for cache in self.levels:
            cache.clear()

    def fingerprint(self) -> tuple:
        """Deterministic copy of the cache contents plus hit/miss counters.

        The cached label lists are *live* references into the chain's
        blocks, so the fingerprint copies them into tuples; insertion order
        (= recency order) is part of the fingerprint because it decides
        future evictions.  Used by the checkpoint/resume tests.
        """
        return (
            self.entries_per_level,
            self.hits,
            self.misses,
            tuple(
                tuple((address, tuple(labels)) for address, labels in cache.items())
                for cache in self.levels
            ),
        )
