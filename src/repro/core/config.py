"""Configuration objects for single and hierarchical Path ORAMs.

:class:`ORAMConfig` captures the free parameters the paper's design-space
exploration sweeps over — bucket size ``Z``, block size ``B``, utilization,
stash capacity ``C``, the encryption scheme — and exposes every derived
quantity used in the paper's formulas (tree depth ``L``, bucket size ``M``,
the background-eviction threshold ``C - Z(L+1)``, on-chip storage, …).

:class:`HierarchyConfig` builds the recursive construction of Section 2.3:
given a data-ORAM configuration and a position-map block size, it derives
the chain of position-map ORAMs needed to shrink the final on-chip position
map below a target size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Literal

from repro.crypto.bucket_encryption import counter_bucket_bits, strawman_bucket_bits
from repro.errors import ConfigurationError

EncryptionScheme = Literal["counter", "strawman", "none"]

#: DRAM access granularity the paper pads buckets to (64 bytes).
DEFAULT_BUCKET_ALIGN_BYTES = 64


@dataclass(frozen=True)
class ORAMConfig:
    """Parameters of a single Path ORAM.

    Parameters
    ----------
    working_set_blocks:
        Number of valid (real) data blocks the ORAM must hold.
    utilization:
        Fraction of the ORAM's total block slots that hold valid data
        (Section 2.5.3 / Figure 8).  ``total_blocks`` is derived as
        ``working_set_blocks / utilization``.
    z:
        Blocks per bucket.
    block_bytes:
        Data block (cache line) size ``B`` in bytes.
    stash_capacity:
        Stash size ``C`` in blocks, or ``None`` for an unbounded stash
        (used by the Figure 3 failure-probability study).
    encryption:
        Which bucket encryption scheme sizes the bucket: ``"counter"``
        (Section 2.2.2, the default), ``"strawman"`` (Section 2.2.1) or
        ``"none"`` (plaintext buckets, functional simulations only —
        sized like ``"counter"`` so overhead numbers stay comparable).
    bucket_align_bytes:
        Buckets are padded up to a multiple of this (DRAM access
        granularity); 64 bytes in the paper.
    super_block_size:
        Number of adjacent blocks statically merged into one super block
        (Section 3.2); 1 disables super blocks.
    name:
        Optional label used in reports.
    """

    working_set_blocks: int
    utilization: float = 0.5
    z: int = 4
    block_bytes: int = 128
    stash_capacity: int | None = 200
    encryption: EncryptionScheme = "counter"
    bucket_align_bytes: int = DEFAULT_BUCKET_ALIGN_BYTES
    super_block_size: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.working_set_blocks < 1:
            raise ConfigurationError("working_set_blocks must be >= 1")
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigurationError("utilization must be in (0, 1]")
        if self.z < 1:
            raise ConfigurationError("z must be >= 1")
        if self.block_bytes < 1:
            raise ConfigurationError("block_bytes must be >= 1")
        if self.bucket_align_bytes < 1:
            raise ConfigurationError("bucket_align_bytes must be >= 1")
        if self.super_block_size < 1:
            raise ConfigurationError("super_block_size must be >= 1")
        if self.encryption not in ("counter", "strawman", "none"):
            raise ConfigurationError(f"unknown encryption scheme: {self.encryption!r}")
        # Cache the derived tree geometry.  ORAMConfig is frozen, so the
        # expensive derived quantities (the tree-depth search in particular)
        # can be computed once; the simulation hot path reads them millions
        # of times per experiment.
        total_blocks = max(1, math.ceil(self.working_set_blocks / self.utilization))
        buckets_needed = math.ceil(total_blocks / self.z)
        level = 0
        while (1 << (level + 1)) - 1 < buckets_needed:
            level += 1
        object.__setattr__(self, "_total_blocks", total_blocks)
        object.__setattr__(self, "_levels", level)
        if self.stash_capacity is not None and self.stash_capacity < self.blocks_per_path:
            raise ConfigurationError(
                "stash_capacity must be at least Z*(L+1) "
                f"({self.blocks_per_path}) so the eviction threshold is non-negative"
            )

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_total_blocks(
        cls, total_blocks: int, utilization: float = 0.5, **kwargs
    ) -> "ORAMConfig":
        """Build a config from the ORAM's total block capacity instead of
        the working set size."""
        working_set = max(1, int(round(total_blocks * utilization)))
        return cls(working_set_blocks=working_set, utilization=utilization, **kwargs)

    @classmethod
    def from_working_set_bytes(
        cls, working_set_bytes: int, block_bytes: int = 128, **kwargs
    ) -> "ORAMConfig":
        """Build a config from a working-set size in bytes."""
        blocks = max(1, math.ceil(working_set_bytes / block_bytes))
        return cls(working_set_blocks=blocks, block_bytes=block_bytes, **kwargs)

    def with_updates(self, **kwargs) -> "ORAMConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Derived tree geometry
    # ------------------------------------------------------------------
    @property
    def total_blocks(self) -> int:
        """Total block slots ``N`` in the ORAM (working set / utilization)."""
        return self._total_blocks

    @property
    def levels(self) -> int:
        """Tree depth ``L`` (the root is level 0, leaves are level L).

        The smallest ``L`` such that ``2^(L+1) - 1 >= ceil(N / Z)``,
        precomputed in ``__post_init__``.
        """
        return self._levels

    @property
    def num_levels(self) -> int:
        """Number of levels in the tree, ``L + 1``."""
        return self.levels + 1

    @property
    def num_leaves(self) -> int:
        """Number of leaves, ``2^L``."""
        return 1 << self.levels

    @property
    def num_buckets(self) -> int:
        """Number of buckets in the full binary tree, ``2^(L+1) - 1``."""
        return (1 << (self.levels + 1)) - 1

    @property
    def capacity_blocks(self) -> int:
        """Block slots actually available in the tree, ``Z * (2^(L+1)-1)``."""
        return self.z * self.num_buckets

    # ------------------------------------------------------------------
    # Bit widths
    # ------------------------------------------------------------------
    @property
    def leaf_bits(self) -> int:
        """Bits needed to store a leaf label (``L``, at least 1)."""
        return max(1, self.levels)

    @property
    def address_bits(self) -> int:
        """Bits needed to store a program address ``U = ceil(log2 N)``."""
        return max(1, math.ceil(math.log2(self.working_set_blocks + 1)))

    @property
    def block_bits(self) -> int:
        """Block payload size ``B`` in bits."""
        return self.block_bytes * 8

    @property
    def bucket_plaintext_bits(self) -> int:
        """Plaintext bits per bucket, ``Z (L + U + B)``."""
        return self.z * (self.leaf_bits + self.address_bits + self.block_bits)

    @property
    def bucket_bits(self) -> int:
        """Encrypted bucket size ``M`` in bits before DRAM alignment."""
        if self.encryption == "strawman":
            return strawman_bucket_bits(self.z, self.leaf_bits, self.address_bits, self.block_bits)
        # "counter" and "none" are sized identically so functional
        # experiments report the same overheads as encrypted ones.
        return counter_bucket_bits(self.z, self.leaf_bits, self.address_bits, self.block_bits)

    @property
    def bucket_bytes(self) -> int:
        """Encrypted bucket size in bytes, padded to the DRAM granularity."""
        raw = math.ceil(self.bucket_bits / 8)
        align = self.bucket_align_bytes
        return math.ceil(raw / align) * align

    @property
    def padded_bucket_bits(self) -> int:
        """Encrypted bucket size ``M`` in bits after DRAM alignment."""
        return self.bucket_bytes * 8

    # ------------------------------------------------------------------
    # Path / stash quantities
    # ------------------------------------------------------------------
    @property
    def blocks_per_path(self) -> int:
        """Maximum real blocks on one path, ``Z (L + 1)``."""
        return self.z * (self.levels + 1)

    @property
    def path_bytes(self) -> int:
        """Bytes moved to read (or write) one full path."""
        return (self.levels + 1) * self.bucket_bytes

    @property
    def eviction_threshold(self) -> int | None:
        """Background eviction threshold ``C - Z(L+1)``, or ``None`` when
        the stash is unbounded."""
        if self.stash_capacity is None:
            return None
        return self.stash_capacity - self.blocks_per_path

    # ------------------------------------------------------------------
    # On-chip storage
    # ------------------------------------------------------------------
    @property
    def position_map_entries(self) -> int:
        """Number of position-map entries (one per super block group)."""
        return math.ceil(self.working_set_blocks / self.super_block_size)

    @property
    def position_map_bits(self) -> int:
        """Size of this ORAM's position map in bits."""
        return self.position_map_entries * self.leaf_bits

    @property
    def stash_bits(self) -> int:
        """On-chip stash storage in bits, ``C (L + U + B)``."""
        capacity = self.stash_capacity if self.stash_capacity is not None else 0
        return capacity * (self.leaf_bits + self.address_bits + self.block_bits)

    @property
    def tree_bytes(self) -> int:
        """External-memory footprint of the ORAM tree in bytes."""
        return self.num_buckets * self.bucket_bytes

    def describe(self) -> str:
        """One-line human-readable summary."""
        label = self.name or "ORAM"
        return (
            f"{label}: Z={self.z}, B={self.block_bytes}B, L={self.levels}, "
            f"N={self.total_blocks} blocks ({self.utilization:.0%} util), "
            f"bucket={self.bucket_bytes}B, stash={self.stash_capacity}"
        )


@dataclass(frozen=True)
class HierarchyConfig:
    """Configuration of a hierarchical (recursive) Path ORAM.

    Parameters
    ----------
    data_oram:
        Configuration of ``ORAM_1``, the data ORAM.
    position_map_block_bytes:
        Block size of every position-map ORAM (Section 3.3.3).
    position_map_z:
        Bucket size ``Z`` of the position-map ORAMs.
    position_map_stash_capacity:
        Stash capacity of each position-map ORAM.
    position_map_utilization:
        Utilization of the position-map ORAMs.
    onchip_position_map_limit_bytes:
        Recursion stops once the outermost position map fits in this many
        bytes of on-chip storage (200 KB in the paper).
    position_map_encryption:
        Encryption scheme for position-map ORAMs.
    compressed_position_map:
        Pack the Freecursive-style compressed label layout into each
        position-map block: instead of ``k`` independent ``L_child``-bit
        leaf labels, the block stores one shared base label plus per-child
        offsets of roughly half the bits, so about twice as many children
        fit per block and the recursive chain gets shallower.  The
        functional simulation keeps exact integer labels either way (the
        compression is a *geometry* model, like ``encryption="none"``
        blocks being sized as if counter-encrypted); only the derived
        ``labels_per_position_block`` fan-out — and with it chain depth —
        changes.
    name:
        Optional label used in reports.
    """

    data_oram: ORAMConfig
    position_map_block_bytes: int = 32
    position_map_z: int = 3
    position_map_stash_capacity: int | None = 200
    position_map_utilization: float = 0.5
    onchip_position_map_limit_bytes: int = 200 * 1024
    position_map_encryption: EncryptionScheme = "counter"
    compressed_position_map: bool = False
    name: str = ""
    _max_orams: int = field(default=16, repr=False)

    def __post_init__(self) -> None:
        if self.position_map_block_bytes < 1:
            raise ConfigurationError("position_map_block_bytes must be >= 1")
        if self.position_map_z < 1:
            raise ConfigurationError("position_map_z must be >= 1")
        if self.onchip_position_map_limit_bytes < 1:
            raise ConfigurationError("onchip_position_map_limit_bytes must be >= 1")

    def labels_per_position_block(self, child: ORAMConfig) -> int:
        """How many leaf labels of ``child`` fit in one position-map block.

        Uncompressed: ``k = floor(B_pmap / L_child)``.  With
        ``compressed_position_map`` the block instead holds one full
        ``L_child``-bit base label plus ``ceil(L_child / 2)``-bit offsets
        (the Freecursive compressed-PosMap layout), so
        ``k = 1 + floor((B_pmap - L_child) / ceil(L_child / 2))`` children
        pack per block when that beats the plain layout.
        """
        block_bits = self.position_map_block_bytes * 8
        k = block_bits // child.leaf_bits
        if self.compressed_position_map:
            offset_bits = (child.leaf_bits + 1) // 2
            if block_bits > child.leaf_bits:
                k = max(k, 1 + (block_bits - child.leaf_bits) // offset_bits)
        if k < 1:
            raise ConfigurationError(
                "position-map block size too small to hold a single leaf label "
                f"({self.position_map_block_bytes} bytes vs {child.leaf_bits} bits)"
            )
        return k

    @property
    def oram_configs(self) -> tuple[ORAMConfig, ...]:
        """The chain of ORAM configurations, data ORAM first.

        ``ORAM_{h+1}`` stores ``ORAM_h``'s position map; recursion stops
        once the outermost position map fits on chip.
        """
        configs: list[ORAMConfig] = [self.data_oram]
        while len(configs) < self._max_orams:
            outermost = configs[-1]
            if outermost.position_map_bits <= self.onchip_position_map_limit_bytes * 8:
                break
            k = self.labels_per_position_block(outermost)
            entries = outermost.position_map_entries
            next_blocks = max(1, math.ceil(entries / k))
            configs.append(
                ORAMConfig(
                    working_set_blocks=next_blocks,
                    utilization=self.position_map_utilization,
                    z=self.position_map_z,
                    block_bytes=self.position_map_block_bytes,
                    stash_capacity=self.position_map_stash_capacity,
                    encryption=self.position_map_encryption,
                    bucket_align_bytes=self.data_oram.bucket_align_bytes,
                    name=f"pmap{len(configs)}",
                )
            )
        return tuple(configs)

    @property
    def num_orams(self) -> int:
        """Number of ORAMs in the hierarchy (``H``)."""
        return len(self.oram_configs)

    @property
    def onchip_position_map_bits(self) -> int:
        """Size of the final (on-chip) position map in bits."""
        return self.oram_configs[-1].position_map_bits

    @property
    def onchip_stash_bits(self) -> int:
        """Total stash storage across the hierarchy in bits."""
        return sum(cfg.stash_bits for cfg in self.oram_configs)

    def describe(self) -> str:
        """Multi-line human-readable summary of the hierarchy."""
        lines = [self.name or "Hierarchical ORAM"]
        for index, cfg in enumerate(self.oram_configs, start=1):
            lines.append(f"  ORAM{index}: {cfg.describe()}")
        lines.append(
            f"  on-chip position map: {self.onchip_position_map_bits / 8 / 1024:.1f} KB, "
            f"stash total: {self.onchip_stash_bits / 8 / 1024:.1f} KB"
        )
        return "\n".join(lines)
