"""Background eviction policies (Section 3.1).

Path ORAM fails when its stash overflows.  The paper's fix is *background
eviction*: once the stash holds more than ``C - Z(L+1)`` blocks, the ORAM
stops serving real requests and issues dummy accesses — reads of a uniformly
random path, written straight back with no remapping — until the stash
drains below the threshold.  Dummy accesses are indistinguishable from real
ones, so the scheme leaks nothing (Section 3.1.2).

Also implemented is the *insecure* block-remapping scheme of Section 3.1.3
(evict by re-accessing a random stash block, which remaps it).  It avoids
livelock but correlates consecutive paths; the CPL attack in
:mod:`repro.attacks.cpl` detects it, reproducing Figure 4.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.path_oram import PathORAM


class EvictionPolicy(ABC):
    """Decides what to do after each real access to keep the stash bounded."""

    @abstractmethod
    def after_access(self, oram: "PathORAM") -> int:
        """Run evictions as needed; return the number of dummy accesses issued."""


def _resolve_threshold(oram: "PathORAM") -> int | None:
    """The ORAM's eviction threshold, or ``None`` for an unbounded stash.

    PathORAM caches the threshold; duck-typed ORAMs (tests) that only carry
    a configuration fall back to the config's derived value.
    """
    threshold = getattr(oram, "eviction_threshold", None)
    if threshold is None:
        threshold = oram.config.eviction_threshold
    return threshold


class NoEviction(EvictionPolicy):
    """Never evict.

    Used with an unbounded stash for the Figure 3 failure-probability study,
    or with a bounded stash to observe genuine Path ORAM failure
    (:class:`~repro.errors.StashOverflowError`).
    """

    def after_access(self, oram: "PathORAM") -> int:
        return 0


class BackgroundEviction(EvictionPolicy):
    """The paper's provably secure dummy-access eviction scheme.

    Parameters
    ----------
    livelock_limit:
        Safety cap on consecutive dummy accesses per trigger.  The paper
        shows livelock probability is astronomically small for realistic
        parameters; the cap exists so that pathological test configurations
        fail loudly instead of hanging.
    """

    def __init__(self, livelock_limit: int = 100_000) -> None:
        if livelock_limit < 1:
            raise ValueError("livelock_limit must be >= 1")
        self._livelock_limit = livelock_limit

    def after_access(self, oram: "PathORAM") -> int:
        threshold = _resolve_threshold(oram)
        if threshold is None:
            return 0
        issued = 0
        while oram.stash_occupancy > threshold:
            oram.dummy_access()
            issued += 1
            if issued > self._livelock_limit:
                raise ReproError(
                    "background eviction livelock: "
                    f"{issued} dummy accesses without draining the stash"
                )
        return issued


class InsecureBlockRemapEviction(EvictionPolicy):
    """The insecure eviction scheme of Section 3.1.3 (for the CPL attack).

    When the stash exceeds the threshold, a random block *currently in the
    stash* is accessed (and therefore remapped).  Blocks gradually escape
    congested paths so livelock cannot occur, but the accessed path is now
    correlated with the previous access — exactly what the common-path-length
    attack exploits.
    """

    def __init__(self, rng: random.Random | None = None, livelock_limit: int = 100_000) -> None:
        self._rng = rng if rng is not None else random.Random()
        self._livelock_limit = livelock_limit

    def after_access(self, oram: "PathORAM") -> int:
        threshold = _resolve_threshold(oram)
        if threshold is None:
            return 0
        issued = 0
        while oram.stash_occupancy > threshold:
            addresses = oram.stash_addresses()
            if not addresses:
                break
            victim = self._rng.choice(addresses)
            oram.remap_access(victim)
            issued += 1
            if issued > self._livelock_limit:
                raise ReproError("insecure eviction failed to drain the stash")
        return issued
