"""Fleet execution: N independent ORAM instances batched into one tensor.

The design-space sweeps are grids of *independent* simulations — dozens of
``(Z, utilization)`` points, each a full Path ORAM replaying its own access
trace.  :class:`FleetEngine` runs a whole grid at once by stacking every
instance's ``numpy-flat`` occupancy/address/leaf columns as rows of one
``(n_experiments, slots)`` int64 tensor (via
:meth:`~repro.core.numpy_tree.NumpyFlatTreeStorage.adopt_columns`) and
executing one access *per instance per step* as batched tensor ops:

* one shared deepest-level classification table serves every instance of
  the batch (members must agree on ``(levels, Z)``, the grouping key the
  runner's fleet executor partitions by);
* the per-step path gather is one fancy index over the flat tensor — the
  per-leaf row grids are rebuilt vectorially from the heap parent walk
  (matching :func:`~repro.core.tree.path_indices` exactly) and offset by
  each member's row base, with the storage's empty-sentinel row expressing
  "empty slot" just like the scalar :class:`~repro.core.numpy_engine.ColumnEngine`;
* classification, the stable class argsort, per-row pool counts (one
  flattened ``bincount``) and the accessed-block locate all run across the
  batch at once;
* the greedy write-back runs *in closed form* for any pool sizes: the
  scalar engine's LIFO span-stack placement consumes every class pool
  tail-first, so its per-level takes and per-class consumption unroll
  into running/windowed minima over pool prefix/suffix sums (derivation
  in ``_step_batch``), and the whole write-back becomes a handful of
  cumulative ops plus one scatter of run-length-expanded source runs.

Accesses outside that envelope — non-empty stash, stash spills, a miss
with no room on the path, payload-carrying trees, path-trace recording —
are executed one at a time
through the member's own scalar :class:`ColumnEngine` ``_path_op``, whose
semantics are the pinned reference.  Either way every member's stash, RNG
and position map stay authoritative Python state, advanced in exactly the
per-access order of the serial ``access_many`` loop, so fleet execution is
**bit-identical to serial execution** member by member (pinned by
``tests/test_fleet.py``).  The only non-mirrored internal is the protocol's
``Block``-shell recycling pool: the fast path never materialises shells, so
pool residency can differ — no observable state (columns, stash contents,
statistics, RNG stream, results) depends on it.

Statistics counters for fast-path accesses accumulate per member and are
flushed into ``AccessStats`` before the member's program observes them (at
every chunk boundary, error and retirement), keeping the counters exact at
every point where serial code could read them.

Members advance through *programs*: generators yielding chunks of
addresses (read accesses, as the sweep drivers issue).  Between chunks a
program may inspect its ORAM (abort checks, ``stats.reset()``) exactly as
the serial driver does between ``access_many`` calls.  A ``ReproError``
raised by the simulation (eviction livelock, stash overflow) is thrown
*into* the generator at the current yield: programs that catch it turn it
into an abort reason (as ``measure_dummy_ratio_window`` does), programs
that do not leave the member failed with a formatted traceback — the same
two outcomes serial execution produces.  A generator's return value is the
abort reason handed to ``finalize(oram, abort_reason)``, which computes the
member's result value.  Members retire from the batch as their programs
finish; the batch shrinks until every member is done.

This module imports NumPy at module level;
:mod:`repro.runner.fleet` imports it lazily and falls back to the
serial/process executors when NumPy is unavailable.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Callable, Iterator

import numpy as np

from repro.core.background_eviction import NoEviction
from repro.core.numpy_engine import ColumnEngine
from repro.core.numpy_tree import NumpyFlatTreeStorage
from repro.errors import ConfigurationError, ReproError
from repro.runner.fleet import FLEET_MAX_LEVELS

#: Column value marking an empty slot (mirrors ``numpy_tree._EMPTY``).
_EMPTY = -1


def _format_exc() -> str:
    return traceback.format_exc(limit=8)


class FleetMember:
    """One ORAM instance riding in a fleet batch.

    Wraps a freshly built ``numpy-flat`` PathORAM, the generator *program*
    driving its accesses, and the ``finalize(oram, abort_reason)`` callable
    producing its result value.  The member caches the protocol's hot
    attributes exactly as the serial ``access_many`` loop does, so the
    per-access bookkeeping mirrors the reference loop statement for
    statement.  Outcome fields (``value`` / ``error`` / ``seconds``) are
    filled when the member retires.
    """

    __slots__ = (
        "key",
        "oram",
        "engine",
        "gen",
        "finalize",
        "chunk",
        "pos",
        "slot",
        "pm",
        "bits",
        "getrandbits",
        "stash_blocks",
        "stash_obj",
        "stats",
        "storage",
        "working_set",
        "create",
        "gate",
        "no_eviction",
        "bounded",
        "check_bound",
        "after_access",
        "evict_skip",
        "record_occupancy",
        "scalar_only",
        "row_base",
        "bucket_base",
        "acc_real",
        "value",
        "error",
        "seconds",
        "retired",
    )

    def __init__(
        self,
        key: Any,
        oram: Any,
        program: Iterator[list[int]],
        finalize: Callable[[Any, str | None], Any],
    ) -> None:
        self.key = key
        self.oram = oram
        self.gen = program
        self.finalize = finalize
        self.engine: ColumnEngine | None = None
        self.chunk: list[int] = []
        self.pos = 0
        # Hot protocol state, cached like the serial access_many loop.
        self.pm = oram._pm_leaves  # noqa: SLF001
        self.bits = oram._draw_bits  # noqa: SLF001
        self.getrandbits = oram._getrandbits  # noqa: SLF001
        self.stash_blocks = oram._stash_blocks  # noqa: SLF001
        self.stash_obj = oram._stash  # noqa: SLF001
        self.stats = oram._stats  # noqa: SLF001
        self.storage = oram.storage
        self.working_set = oram._working_set  # noqa: SLF001
        self.create = oram._create_on_miss  # noqa: SLF001
        self.gate = oram._eviction_gate  # noqa: SLF001
        self.no_eviction = type(oram._eviction) is NoEviction  # noqa: SLF001
        self.bounded = oram.config.stash_capacity is not None
        self.check_bound = oram._check_stash_bound  # noqa: SLF001
        self.after_access = oram._eviction.after_access  # noqa: SLF001
        # With an empty stash the serial loop's eviction gate always takes
        # the `continue` branch when the gate is non-negative; members in
        # that common case skip the post-access block entirely on the fast
        # path.
        self.evict_skip = self.gate is not None and self.gate >= 0
        self.record_occupancy = self.stats.record_occupancy
        self.scalar_only = bool(oram._record_path_trace)  # noqa: SLF001
        self.slot = 0
        self.row_base = 0
        self.bucket_base = 0
        # Deferred scalar-fallback access count (flushed with the engine's
        # tensor accumulators before any observer runs).
        self.acc_real = 0
        # Outcome.
        self.value: Any = None
        self.error: str | None = None
        self.seconds = 0.0
        self.retired = False


class FleetEngine:
    """Batched execution of one shape-compatible group of fleet members.

    All members must share ``(levels, Z)`` — the runner's fleet executor
    groups specs by exactly this shape — and sit on an exact
    :class:`NumpyFlatTreeStorage` accepted by the scalar
    :class:`ColumnEngine` (single-member groups, power-of-two leaf range).
    Construction stacks the members' columns into the shared tensors;
    :meth:`run` drives every program to completion.
    """

    #: Below this batch size a step runs through the scalar engine: the
    #: fixed dispatch cost of a tensor step (~0.5 ms) exceeds a few scalar
    #: reference accesses, so draining groups switch over for their tail.
    _SCALAR_CUTOFF = 6

    def __init__(
        self,
        members: list[FleetMember],
        should_abort: Callable[[], bool] | None = None,
        on_retire: Callable[[FleetMember], None] | None = None,
    ) -> None:
        if not members:
            raise ConfigurationError("a fleet needs at least one member")
        self._members = list(members)
        config = self._members[0].oram.config
        levels = config.levels
        z = config.z
        if levels > FLEET_MAX_LEVELS:
            raise ConfigurationError(
                f"fleet batches share one classification table; levels="
                f"{levels} exceeds the table limit {FLEET_MAX_LEVELS}"
            )
        for member in self._members:
            c = member.oram.config
            if c.levels != levels or c.z != z:
                raise ConfigurationError(
                    "fleet members must share the tree shape (levels, Z): "
                    f"got ({c.levels}, {c.z}) alongside ({levels}, {z})"
                )
        self._levels = levels
        self._z = z
        self._grid = grid = (levels + 1) * z
        self._num_leaves = config.num_leaves
        num_buckets = config.num_buckets
        self._num_buckets = num_buckets
        rows_per = num_buckets * z + 1
        self._rows_per = rows_per
        self._sentinel_local = num_buckets * z
        self._empty_leaf = 1 << levels

        # ---- stack the columns: one (n, slots) tensor per column ----
        n = len(self._members)
        addresses = np.empty((n, rows_per), dtype=np.int64)
        leaves = np.empty((n, rows_per), dtype=np.int64)
        counts = np.empty((n, num_buckets), dtype=np.int64)
        for i, member in enumerate(self._members):
            storage = member.oram.storage
            if type(storage) is not NumpyFlatTreeStorage:
                raise ConfigurationError(
                    "fleet members need the exact NumpyFlatTreeStorage; got "
                    f"{type(storage).__name__}"
                )
            storage.adopt_columns(addresses[i], leaves[i], counts[i])
            # Rebuild the scalar engine so its cached column references
            # point at the adopted views (the scalar fallback then mutates
            # the shared tensor in place).
            engine = ColumnEngine.for_oram(member.oram)
            if engine is None:
                raise ConfigurationError(
                    "fleet members must be accepted by the column engine "
                    "(single-member groups, columnar storage)"
                )
            member.oram._column_engine = engine  # noqa: SLF001
            member.engine = engine
            member.slot = i
            member.row_base = i * rows_per
            member.bucket_base = i * num_buckets
        self._addr_flat = addresses.reshape(-1)
        self._leaf_flat = leaves.reshape(-1)
        self._counts_flat = counts.reshape(-1)

        # Shared classification table — the exact table every member's
        # ColumnEngine builds (deepest legal level of leaf-diff d).  Kept
        # as uint8 (levels is capped at 16) so the stable class sort in
        # _step_batch radix-sorts one byte per key instead of eight.
        diffs = np.arange(1 << (levels + 1), dtype=np.int64)
        bit_length = np.frexp(diffs.astype(np.float64))[1]
        self._table = ((levels - bit_length) % (levels + 2)).astype(np.uint8)
        self._offsets = np.arange(z, dtype=np.int64)
        self._level_arange = np.arange(levels + 1, dtype=np.int64)
        self._shifts = levels - self._level_arange
        # Closed-form write-back scaffolding (see _step_batch): the level
        # axis extended by one virtual terminator row, a lower-triangular
        # window mask for the range-min, and the (d, c) validity mask of
        # the cumulative-consumption matrix K.
        jr = np.arange(levels + 2, dtype=np.int64)
        self._jr = jr
        self._win_mask = jr[None, :] >= jr[:, None]
        self._k_valid = self._level_arange[None, :] >= (jr[:, None] - 1)
        self._big = np.int64(1) << 62
        # Slot-indexed per-member scaffolding: constant flags gathered per
        # batch, and deferred fast-path counters the vectorised bookkeeping
        # scatters into (folded into each member's stats by _flush).
        self._rk = np.arange(n, dtype=np.int64)
        self._intra_base = np.arange(n * (grid + 1), dtype=np.int64)
        self._create_v = np.fromiter((m.create for m in self._members), dtype=bool, count=n)
        self._rec_v = np.fromiter(
            (m.record_occupancy for m in self._members),
            dtype=np.int64,
            count=n,
        )
        skip_v = np.fromiter((m.evict_skip for m in self._members), dtype=bool, count=n)
        self._skip_v = skip_v
        self._all_skip = bool(skip_v.all())
        self._any_rec = bool(self._rec_v.any())
        # Fused fast-path accumulators: every per-step counter the serial
        # loop keeps is derivable from three sums — the fast-access count
        # (real accesses == path ops), the live-block sum (blocks read;
        # blocks written adds the miss count) and the miss count (storage
        # occupancy delta, write surplus, and the stash high-water flag) —
        # plus the occupancy-sample count and the running peak.  _flush
        # derives the full counter set from these.
        self._acc_fast = np.zeros(n, dtype=np.int64)
        self._acc_br = np.zeros(n, dtype=np.int64)
        self._acc_miss = np.zeros(n, dtype=np.int64)
        self._acc_peak = np.zeros(n, dtype=np.int64)
        self._acc_samples = np.zeros(n, dtype=np.int64)
        # Batch-constant gather cache: consecutive steps usually carry the
        # identical member list, so the slot gather and row bases are
        # reused until membership changes.
        self._last_batch: list[FleetMember] = []
        self._last_slot_v = self._rk[:0]
        self._last_row_base = self._rk[:0]

        self._should_abort = should_abort
        self._on_retire = on_retire
        self._t0 = 0.0

    # ------------------------------------------------------------------
    # Driving loop
    # ------------------------------------------------------------------
    def run(self) -> list[FleetMember]:
        """Drive every member's program to completion; returns the members
        (retired, with ``value``/``error``/``seconds`` filled)."""
        self._t0 = time.perf_counter()
        members = self._members
        for member in members:
            if not member.retired:
                self._pump(member, None)
        active = [m for m in members if not m.retired]
        should_abort = self._should_abort
        batch: list[FleetMember] = []
        addr_l: list[int] = []
        leaf_l: list[int] = []
        nl_l: list[int] = []
        while active:
            if should_abort is not None and should_abort():
                for member in active:
                    member.error = "aborted"
                    member.retired = True
                break
            del batch[:]
            del addr_l[:]
            del leaf_l[:]
            del nl_l[:]
            any_retired = False
            for member in active:
                if member.pos >= len(member.chunk):
                    self._pump(member, None)
                    if member.retired:
                        any_retired = True
                        continue
                address = member.chunk[member.pos]
                member.pos += 1
                if member.scalar_only or member.stash_blocks or member.storage.has_payloads:
                    self._scalar_access(member, address)
                    if member.retired:
                        any_retired = True
                else:
                    pm = member.pm
                    index = address - 1
                    leaf = pm[index]
                    new_leaf = member.getrandbits(member.bits)
                    pm[index] = new_leaf
                    batch.append(member)
                    addr_l.append(address)
                    leaf_l.append(leaf)
                    nl_l.append(new_leaf)
            if batch:
                if len(batch) < self._SCALAR_CUTOFF:
                    # A batched step has a fixed tensor-dispatch cost that
                    # dwarfs a handful of scalar accesses; as a group
                    # drains below the cutoff, the reference engine is
                    # faster (and identical by construction).
                    for i, member in enumerate(batch):
                        self._scalar_body(member, addr_l[i], leaf_l[i], nl_l[i])
                        if member.retired:
                            any_retired = True
                elif self._step_batch(batch, addr_l, leaf_l, nl_l):
                    any_retired = True
            if any_retired:
                active = [m for m in active if not m.retired]
        for member in members:
            self._flush(member)
        return members

    # ------------------------------------------------------------------
    # The batched step
    # ------------------------------------------------------------------
    def _step_batch(
        self,
        batch: list[FleetMember],
        addr_l: list[int],
        leaf_l: list[int],
        nl_l: list[int],
    ) -> bool:
        """One access per batch member as tensor ops; returns True when any
        member retired (eviction error surfaced through its program)."""
        k = len(batch)
        levels = self._levels
        z = self._z
        grid = self._grid
        table = self._table
        leaf_v = np.array(leaf_l, dtype=np.int64)
        addr_v = np.array(addr_l, dtype=np.int64)
        nl_v = np.array(nl_l, dtype=np.int64)
        if batch == self._last_batch:
            slot_v = self._last_slot_v
            row_base = self._last_row_base
        else:
            slot_v = np.fromiter((m.slot for m in batch), dtype=np.int64, count=k)
            row_base = slot_v * self._rows_per
            self._last_batch = list(batch)
            self._last_slot_v = slot_v
            self._last_row_base = row_base

        # Root-first path buckets: tree.path_indices in closed form.  The
        # leaf's heap node is num_leaves - 1 + leaf; in 1-based heap
        # numbering ancestors are right-shifts, so the level-l bucket is
        # ((node + 1) >> (levels - l)) - 1.
        buckets = ((leaf_v[:, None] + self._num_leaves) >> self._shifts) - 1

        # Extended gather grid: every path slot row plus the per-member
        # sentinel row, offset into the flat stacked tensor.
        idx = np.empty((k, grid + 1), dtype=np.int64)
        idx[:, :grid] = ((buckets * z)[:, :, None] + self._offsets).reshape(k, grid)
        idx[:, grid] = self._sentinel_local
        idx += row_base[:, None]

        addr_col = self._addr_flat
        leaf_col = self._leaf_flat

        # ---- batched gather + classification (shared table) ----
        rk = self._rk[:k]
        lvs = leaf_col[idx]
        cls = table[lvs ^ leaf_v[:, None]]
        order = np.argsort(cls, axis=1, kind="stable")
        flat_o = order + (rk * (grid + 1))[:, None]
        addrs_s = addr_col[idx.reshape(-1)[flat_o]]
        lvs_s = lvs.reshape(-1)[flat_o]
        cnt = np.bincount(
            (cls + (rk * (levels + 2))[:, None]).ravel(),
            minlength=k * (levels + 2),
        ).reshape(k, levels + 2)
        live = grid + 1 - cnt[:, levels + 1]

        # ---- locate the accessed block (read order) ----
        # The accessed block's stored leaf is the path leaf, so a match is
        # always in the deepest class pool — the address test suffices.
        hit_mat = addrs_s == addr_v[:, None]
        has_hit = hit_mat.any(axis=1)
        tpos = hit_mat.argmax(axis=1)

        # ---- the greedy write-back in closed form ----
        # The scalar engine's placement walk is a LIFO over *class spans*:
        # at level d (deepest first) it pushes class d's pool and pops up
        # to Z elements, class d's own span first, then ascending leftover
        # classes.  Because every span is consumed from its tail, a class
        # pool's remainder is always a *prefix* of the pool — in compacted
        # coordinates (the accessed block removed from the deepest pool)
        # even a hit keeps that invariant.  Both outputs of that walk then
        # have closed forms over the pool-size vector n and the per-level
        # virtual-chunk indicator v:
        #
        # * the cumulative take T(d) = sum of bucket fills at levels >= d
        #   obeys T(d) = min(S(d), T(d+1) + Z) with S the suffix sum of
        #   n + v, which unrolls to a running minimum over S(j) + Z*(j-d);
        # * the cumulative consumption K(d, c) = elements of classes <= c
        #   consumed by levels >= d obeys K(d, c) = min(N(d, c), s(d) +
        #   K(d+1, c)) — greedy ascending-class consumption of the span
        #   need s(d) = take(d) - v(d) — which unrolls to a windowed
        #   minimum of B(j) = -P(j-1) - cs(j) over j in [d, c+1] (P the
        #   pool prefix sum, cs the suffix sum of s).  X[row, d, c], the
        #   number of class-c elements bucket d takes, is K's second
        #   difference.
        #
        # The retargeted accessed block rides as the reference's virtual
        # chunk: pushed above its class pool, so it is consumed at exactly
        # level vc and, after the reference's chunk-reversal, placed last —
        # slot takes[vc] - 1.
        vcls = table[nl_v ^ leaf_v]
        miss_c = ~has_hit & self._create_v[slot_v]
        n = cnt[:, : levels + 1].copy()
        n[has_hit, levels] -= 1
        virt_mat = np.where(has_hit[:, None], vcls[:, None] == self._level_arange, False)
        jr = self._jr
        width = levels + 2
        suffix = np.empty((k, width), dtype=np.int64)
        suffix[:, levels + 1] = 0
        np.cumsum((n + virt_mat)[:, ::-1], axis=1, out=suffix[:, -2::-1])
        cum_take = np.minimum.accumulate((suffix + z * jr)[:, ::-1], axis=1)[:, ::-1] - z * jr
        takes = cum_take[:, : levels + 1] - cum_take[:, 1:]
        span_need = takes - virt_mat
        cs = np.empty((k, width), dtype=np.int64)
        cs[:, levels + 1] = 0
        np.cumsum(span_need[:, ::-1], axis=1, out=cs[:, -2::-1])
        pool_pre = np.cumsum(n, axis=1)
        b = np.empty((k, width), dtype=np.int64)
        b[:, 0] = 0
        b[:, 1:] = pool_pre
        np.negative(b, out=b)
        b -= cs
        win = np.minimum.accumulate(np.where(self._win_mask, b[:, None, :], self._big), axis=2)
        big_k = cs[:, :, None] + pool_pre[:, None, :] + win[:, :, 1:]
        big_k = np.where(self._k_valid, big_k, 0)
        per_level = big_k[:, : levels + 1, :] - big_k[:, 1:, :]
        consumed = np.empty((k, levels + 1, levels + 1), dtype=np.int64)
        consumed[:, :, 0] = per_level[:, :, 0]
        consumed[:, :, 1:] = per_level[:, :, 1:] - per_level[:, :, :-1]
        # Unplaced span elements would spill into the stash (the reference
        # materialises them as Blocks); those rows replay through the
        # scalar engine.  A created block is placed like a stash candidate:
        # deepest level <= vc whose span take left room — none means it
        # stays in the stash, also a scalar case.
        spill = suffix[:, 0] > cum_take[:, 0]
        room = (takes < z) & (self._level_arange <= vcls[:, None])
        has_room = room.any(axis=1)
        dstar = levels - room[:, ::-1].argmax(axis=1)
        fast = ~spill & (~miss_c | has_room)

        fr = np.nonzero(fast)[0]
        retired = False
        if fr.size:
            # ---- empty-fill the fast rows' paths, then scatter back ----
            idx_f = idx[fr]
            grid_rows = idx_f[:, :grid].ravel()
            addr_col[grid_rows] = _EMPTY
            leaf_col[grid_rows] = self._empty_leaf

            kf = fr.size
            x_f = consumed[fr]
            buckets_f = buckets[fr]
            rbase_f = row_base[fr]
            # Class pools are laid out in ascending class order by the
            # stable argsort; the (compacted) run bucket d takes from class
            # c ends at the pool's prefix sum minus what deeper levels
            # already consumed (the suffix-inclusive consumption).
            after = np.cumsum(x_f[:, ::-1, :], axis=1)[:, ::-1, :]
            src_start = pool_pre[fr][:, None, :] - after
            # Within a bucket the reference reverses the popped chunks:
            # deeper-class runs first, ascending positions inside a run —
            # the run offset is the bucket's span need minus its
            # prefix-inclusive consumption.
            off = span_need[fr][:, :, None] - per_level[fr]
            dst_start = (rbase_f[:, None] + buckets_f * z)[:, :, None] + off

            lengths = x_f.reshape(-1)
            total = int(lengths.sum())
            if total:
                src0 = np.repeat(src_start.reshape(-1), lengths)
                dst0 = np.repeat(dst_start.reshape(-1), lengths)
                excl = np.cumsum(lengths) - lengths
                intra = self._intra_base[:total] - np.repeat(excl, lengths)
                dst_rows = dst0 + intra
                src_p = src0 + intra
                row_e = np.repeat(rk[:kf], x_f.reshape(kf, -1).sum(axis=1))
                # Back to real sort positions: behind an extracted hit the
                # deepest pool's positions shift up by one.
                src_p += has_hit[fr][row_e] & (src_p >= tpos[fr][row_e])
                flat = row_e * (grid + 1) + src_p
                addr_col[dst_rows] = addrs_s[fr].reshape(-1)[flat]
                leaf_col[dst_rows] = lvs_s[fr].reshape(-1)[flat]

            # ---- the accessed block and the per-bucket counts ----
            takes_f = takes[fr]
            hidx = np.nonzero(has_hit[fr])[0]
            if hidx.size:
                vc_h = vcls[fr][hidx]
                vslot = takes_f[hidx, vc_h] - 1
                vrows = rbase_f[hidx] + buckets_f[hidx, vc_h] * z + vslot
                addr_col[vrows] = addr_v[fr][hidx]
                leaf_col[vrows] = nl_v[fr][hidx]
            midx = np.nonzero(miss_c[fr])[0]
            if midx.size:
                ds_m = dstar[fr][midx]
                mslot = takes_f[midx, ds_m]
                takes_f[midx, ds_m] += 1
                mrows = rbase_f[midx] + buckets_f[midx, ds_m] * z + mslot
                addr_col[mrows] = addr_v[fr][midx]
                leaf_col[mrows] = nl_v[fr][midx]
            cbase_f = slot_v[fr] * self._num_buckets
            self._counts_flat[cbase_f[:, None] + buckets_f] = takes_f

            # ---- vectorised bookkeeping (deferred statistics) ----
            # The fused accumulators: one scatter each for the fast-access
            # count, the live-block sum and the miss count (batch slots are
            # unique, so fancy in-place ops are exact); every serial-loop
            # counter is derived from these at _flush time.  A created
            # block passes through the stash, so the occupancy high-water
            # mark must see it (derived from the miss count: a monotone
            # flag, so applying it at flush time is order-independent).
            # Fast-path occupancy samples are always 0 (the fast path
            # requires an empty stash) — only their count is deferred, and
            # only when some member records occupancy at all.
            slots_f = slot_v[fr]
            live_f = live[fr]
            miss_f = miss_c[fr]
            self._acc_fast[slots_f] += 1
            self._acc_br[slots_f] += live_f
            self._acc_miss[slots_f] += miss_f
            if self._any_rec:
                self._acc_samples[slots_f] += self._rec_v[slots_f]
            self._acc_peak[slots_f] = np.maximum(self._acc_peak[slots_f], live_f)
            if not self._all_skip:
                for i in fr[~self._skip_v[slots_f]].tolist():
                    member = batch[i]
                    self._flush_samples(member)
                    try:
                        self._post_access(member)
                    except ReproError as exc:
                        self._pump(member, exc)
                        retired = retired or member.retired
                    except Exception:  # noqa: BLE001 - envelope carries it
                        self._retire_error(member)
                        retired = True

        # ---- accesses outside the closed-form envelope: scalar replay ----
        if fr.size != k:
            for i in np.nonzero(~fast)[0].tolist():
                member = batch[i]
                self._scalar_body(member, addr_l[i], leaf_l[i], nl_l[i])
                retired = retired or member.retired
        return retired

    # ------------------------------------------------------------------
    # Scalar fallback (the pinned reference semantics)
    # ------------------------------------------------------------------
    def _scalar_access(self, member: FleetMember, address: int) -> None:
        pm = member.pm
        index = address - 1
        leaf = pm[index]
        new_leaf = member.getrandbits(member.bits)
        pm[index] = new_leaf
        self._scalar_body(member, address, leaf, new_leaf)

    def _scalar_body(self, member: FleetMember, address: int, leaf: int, new_leaf: int) -> None:
        """One access through the member's own ColumnEngine — statement for
        statement the serial ``access_many`` body (read trace, no data)."""
        self._flush_samples(member)
        try:
            member.engine._path_op(  # noqa: SLF001
                address,
                leaf,
                new_leaf,
                False,
                None,
                member.create,
                None,
                0,
                0,
                0,
            )
            member.acc_real += 1
            if member.record_occupancy:
                member.stats.stash_occupancy_samples.append(len(member.stash_blocks))
            self._post_access(member)
        except ReproError as exc:
            self._pump(member, exc)
        except Exception:  # noqa: BLE001 - envelope carries the traceback
            self._retire_error(member)

    def _post_access(self, member: FleetMember) -> None:
        """The serial loop's gate / eviction / bound block for one access."""
        if member.gate is not None and len(member.stash_blocks) <= member.gate:
            return
        if member.no_eviction:
            if member.bounded:
                member.check_bound()
            return
        member.after_access(member.oram)
        member.check_bound()

    # ------------------------------------------------------------------
    # Program plumbing
    # ------------------------------------------------------------------
    def _pump(self, member: FleetMember, exc: BaseException | None) -> None:
        """Advance the member's program to its next non-empty chunk.

        ``exc`` (a ReproError from the simulation) is thrown into the
        generator at the current yield, mirroring the exception escaping a
        serial ``access_many`` call.  Retires the member when the program
        returns (its return value is the abort reason) or fails.
        """
        self._flush(member)
        member.chunk = []
        member.pos = 0
        gen = member.gen
        while True:
            try:
                if exc is not None:
                    chunk = gen.throw(exc)
                    exc = None
                else:
                    chunk = next(gen)
            except StopIteration as stop:
                self._retire_value(member, stop.value)
                return
            except Exception:  # noqa: BLE001 - envelope carries the traceback
                self._retire_error(member)
                return
            if type(chunk) is not list:
                chunk = list(chunk)
            if not chunk:
                continue
            working_set = member.working_set
            if min(chunk) < 1 or max(chunk) > working_set:
                # Same contract (and message) as access_many's validation;
                # a ReproError, so the program decides how to fold it.
                bad = next(a for a in chunk if not 1 <= a <= working_set)
                exc = ConfigurationError(f"address {bad} outside [1, {working_set}]")
                continue
            member.chunk = chunk
            member.pos = 0
            return

    def _flush_samples(self, member: FleetMember) -> None:
        """Append the deferred (all-zero) fast-path occupancy samples.

        Must run before anything that appends samples directly — the
        scalar fallback and per-access eviction — so the sample order
        matches serial execution exactly.
        """
        slot = member.slot
        pending = int(self._acc_samples[slot])
        if pending:
            member.stats.stash_occupancy_samples.extend([0] * pending)
            self._acc_samples[slot] = 0

    def _flush(self, member: FleetMember) -> None:
        """Fold the deferred fast-path counters into the member's stats.

        The full serial counter set is derived from the three fused sums:
        fast accesses (one path read + one path write each), live blocks
        (blocks read) and misses (write surplus, storage occupancy delta,
        and the stash high-water flag for created blocks).
        """
        stats = member.stats
        slot = member.slot
        fast = int(self._acc_fast[slot])
        real = member.acc_real + fast
        if real:
            stats.real_accesses += real
            member.acc_real = 0
        if fast:
            miss = int(self._acc_miss[slot])
            live = int(self._acc_br[slot])
            stats.path_reads += fast
            stats.path_writes += fast
            stats.blocks_read += live
            stats.blocks_written += live + miss
            self._acc_fast[slot] = 0
            self._acc_br[slot] = 0
            if miss:
                member.storage._occupancy += miss  # noqa: SLF001
                self._acc_miss[slot] = 0
                stash = member.stash_obj
                # Created blocks passed through the stash; the occupancy
                # high-water mark must see them (monotone, so deferral is
                # safe).
                if stash._max_occupancy < 1:  # noqa: SLF001
                    stash._max_occupancy = 1  # noqa: SLF001
        peak = int(self._acc_peak[slot])
        if peak:
            oram = member.oram
            if peak > oram._transient_peak:  # noqa: SLF001
                oram._transient_peak = peak  # noqa: SLF001
            self._acc_peak[slot] = 0
        self._flush_samples(member)

    def _retire_value(self, member: FleetMember, abort_reason: Any) -> None:
        self._flush(member)
        try:
            member.value = member.finalize(member.oram, abort_reason)
        except Exception:  # noqa: BLE001 - envelope carries the traceback
            member.error = _format_exc()
        self._finish(member)

    def _retire_error(self, member: FleetMember) -> None:
        self._flush(member)
        member.error = _format_exc()
        self._finish(member)

    def _finish(self, member: FleetMember) -> None:
        member.retired = True
        member.chunk = []
        member.pos = 0
        member.seconds = time.perf_counter() - self._t0
        if self._on_retire is not None:
            self._on_retire(member)
