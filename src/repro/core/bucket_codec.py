"""Serialisation of bucket contents for the encrypted storage back-end.

A bucket holds exactly ``Z`` slots.  Real blocks carry a ``(leaf, address,
payload)`` triplet; unused slots are filled with dummy blocks (address 0)
whose payload is zero bytes, exactly as the protocol requires so that a
bucket's plaintext length never reveals how many real blocks it holds.

Payloads may be ``None`` (functional runs), raw ``bytes`` (processor data)
or a sequence of integers (position-map ORAM blocks holding leaf labels);
each is tagged so decoding restores the original type.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import ORAMConfig
from repro.core.types import DUMMY_ADDRESS, Block
from repro.errors import EncryptionError

_PAYLOAD_NONE = 0
_PAYLOAD_BYTES = 1
_PAYLOAD_LABELS = 2
_PAYLOAD_INT = 3


class BucketCodec:
    """Encode / decode the ``Z`` per-block plaintexts of one bucket."""

    def __init__(self, config: ORAMConfig) -> None:
        self._config = config

    # ------------------------------------------------------------------
    # Per-block encoding
    # ------------------------------------------------------------------
    def encode_block(self, block: Block | None) -> bytes:
        """Serialise one block (``None`` produces a dummy slot)."""
        if block is None or block.is_dummy():
            header = DUMMY_ADDRESS.to_bytes(8, "little") + (0).to_bytes(8, "little")
            return header + bytes([_PAYLOAD_NONE]) + (0).to_bytes(4, "little")
        header = block.address.to_bytes(8, "little") + block.leaf.to_bytes(8, "little")
        payload = block.data
        if payload is None:
            return header + bytes([_PAYLOAD_NONE]) + (0).to_bytes(4, "little")
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
            return header + bytes([_PAYLOAD_BYTES]) + len(body).to_bytes(4, "little") + body
        if isinstance(payload, int) and not isinstance(payload, bool):
            body = payload.to_bytes(16, "little", signed=True)
            return header + bytes([_PAYLOAD_INT]) + len(body).to_bytes(4, "little") + body
        if isinstance(payload, Sequence):
            labels = [int(v) for v in payload]
            body = b"".join(v.to_bytes(8, "little", signed=False) for v in labels)
            return header + bytes([_PAYLOAD_LABELS]) + len(labels).to_bytes(4, "little") + body
        raise EncryptionError(f"unsupported block payload type: {type(payload).__name__}")

    def decode_block(self, plaintext: bytes) -> Block | None:
        """Deserialise one block; dummies decode to ``None``."""
        if len(plaintext) < 21:
            raise EncryptionError("block plaintext too short")
        address = int.from_bytes(plaintext[0:8], "little")
        leaf = int.from_bytes(plaintext[8:16], "little")
        tag = plaintext[16]
        length = int.from_bytes(plaintext[17:21], "little")
        body = plaintext[21:]
        if address == DUMMY_ADDRESS:
            return None
        if tag == _PAYLOAD_NONE:
            data = None
        elif tag == _PAYLOAD_BYTES:
            if len(body) < length:
                raise EncryptionError("block payload truncated")
            data = body[:length]
        elif tag == _PAYLOAD_INT:
            if len(body) < length:
                raise EncryptionError("integer payload truncated")
            data = int.from_bytes(body[:length], "little", signed=True)
        elif tag == _PAYLOAD_LABELS:
            if len(body) < 8 * length:
                raise EncryptionError("label payload truncated")
            data = [int.from_bytes(body[8 * i : 8 * i + 8], "little") for i in range(length)]
        else:
            raise EncryptionError(f"unknown payload tag {tag}")
        return Block(address=address, leaf=leaf, data=data)

    # ------------------------------------------------------------------
    # Per-bucket encoding
    # ------------------------------------------------------------------
    def encode_blocks(self, blocks: list[Block]) -> list[bytes]:
        """Serialise a bucket's real blocks, padding with dummies to ``Z``."""
        slots: list[bytes] = [self.encode_block(block) for block in blocks]
        while len(slots) < self._config.z:
            slots.append(self.encode_block(None))
        return slots

    def decode_blocks(self, plaintexts: list[bytes]) -> list[Block]:
        """Deserialise a bucket, dropping dummy slots."""
        blocks: list[Block] = []
        for plaintext in plaintexts:
            block = self.decode_block(plaintext)
            if block is not None:
                blocks.append(block)
        return blocks
