"""Named configurations from the paper's evaluation, with a scale knob.

The paper's data ORAM is 8 GB at 50% utilization (a 4 GB working set of
128-byte blocks, i.e. 2^25 blocks) — far beyond what a pure-Python
functional simulation can sweep.  Every preset therefore takes a ``scale``
parameter: the working set (and the on-chip position-map budget, so that
the hierarchy keeps a comparable number of levels) is multiplied by it.
``scale=1.0`` reproduces the paper's nominal parameters; the benchmarks
default to much smaller scales and record both in their output.

Presets (Figure 10 / 12 notation):

* ``base_oram`` — the Ascend baseline [Fletcher et al. 2012]: every ORAM in
  the hierarchy uses 128-byte blocks, Z=4, and the strawman encryption.
* ``dz3pb32`` / ``dz4pb32`` — data ORAM Z=3 (or 4), position-map ORAMs with
  32-byte blocks and Z=3, counter-based encryption.
* ``make_hierarchy`` — the general constructor behind all of the above.
"""

from __future__ import annotations

from repro.core.config import HierarchyConfig, ORAMConfig

#: The paper's data-ORAM working set: 4 GB of 128-byte blocks.
PAPER_WORKING_SET_BLOCKS = 1 << 25

#: The paper's on-chip position-map budget (final map smaller than 200 KB).
PAPER_ONCHIP_POSITION_MAP_BYTES = 200 * 1024

#: The paper's default stash capacity (Section 4.1.2).
PAPER_STASH_CAPACITY = 200


def scaled_working_set_blocks(scale: float, minimum: int = 1024) -> int:
    """Working-set size in blocks at the given scale factor."""
    return max(minimum, int(round(PAPER_WORKING_SET_BLOCKS * scale)))


def scaled_position_map_limit_bytes(scale: float, minimum: int = 64) -> int:
    """On-chip position-map budget at the given scale factor."""
    return max(minimum, int(round(PAPER_ONCHIP_POSITION_MAP_BYTES * scale)))


def data_oram_config(
    scale: float = 1.0,
    z: int = 3,
    utilization: float = 0.5,
    block_bytes: int = 128,
    stash_capacity: int | None = PAPER_STASH_CAPACITY,
    encryption: str = "counter",
    super_block_size: int = 1,
    name: str = "",
) -> ORAMConfig:
    """The data ORAM (ORAM_1) at the given scale."""
    return ORAMConfig(
        working_set_blocks=scaled_working_set_blocks(scale),
        utilization=utilization,
        z=z,
        block_bytes=block_bytes,
        stash_capacity=stash_capacity,
        encryption=encryption,  # type: ignore[arg-type]
        super_block_size=super_block_size,
        name=name,
    )


def make_hierarchy(
    scale: float = 1.0,
    data_z: int = 3,
    position_map_block_bytes: int = 32,
    position_map_z: int = 3,
    data_block_bytes: int = 128,
    utilization: float = 0.5,
    stash_capacity: int | None = PAPER_STASH_CAPACITY,
    encryption: str = "counter",
    super_block_size: int = 1,
    name: str = "",
) -> HierarchyConfig:
    """General hierarchical configuration used by Figures 10-12."""
    data = data_oram_config(
        scale=scale,
        z=data_z,
        utilization=utilization,
        block_bytes=data_block_bytes,
        stash_capacity=stash_capacity,
        encryption=encryption,
        super_block_size=super_block_size,
        name=name or f"DZ{data_z}Pb{position_map_block_bytes}",
    )
    return HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=position_map_block_bytes,
        position_map_z=position_map_z,
        position_map_stash_capacity=stash_capacity,
        position_map_utilization=utilization,
        onchip_position_map_limit_bytes=scaled_position_map_limit_bytes(scale),
        position_map_encryption=encryption,  # type: ignore[arg-type]
        name=name or f"DZ{data_z}Pb{position_map_block_bytes}",
    )


def base_oram(scale: float = 1.0, super_block_size: int = 1) -> HierarchyConfig:
    """The baseline configuration of [Fletcher et al. 2012] ("baseORAM").

    All ORAMs use 128-byte blocks, Z = 4, and the strawman encryption
    scheme (Section 2.2.1).
    """
    return make_hierarchy(
        scale=scale,
        data_z=4,
        position_map_block_bytes=128,
        position_map_z=4,
        encryption="strawman",
        super_block_size=super_block_size,
        name="baseORAM",
    )


def dz3pb32(scale: float = 1.0, super_block_size: int = 1) -> HierarchyConfig:
    """DZ3Pb32: data ORAM Z=3, 32-byte position-map blocks (best non-super-block)."""
    return make_hierarchy(scale=scale, data_z=3, position_map_block_bytes=32,
                          super_block_size=super_block_size, name="DZ3Pb32")


def dz4pb32(scale: float = 1.0, super_block_size: int = 1) -> HierarchyConfig:
    """DZ4Pb32: data ORAM Z=4, 32-byte position-map blocks."""
    return make_hierarchy(scale=scale, data_z=4, position_map_block_bytes=32,
                          super_block_size=super_block_size, name="DZ4Pb32")


def dz3pb12(scale: float = 1.0, super_block_size: int = 1) -> HierarchyConfig:
    """DZ3Pb12: data ORAM Z=3, 12-byte position-map blocks."""
    return make_hierarchy(scale=scale, data_z=3, position_map_block_bytes=12,
                          super_block_size=super_block_size, name="DZ3Pb12")


def dz4pb12(scale: float = 1.0, super_block_size: int = 1) -> HierarchyConfig:
    """DZ4Pb12: data ORAM Z=4, 12-byte position-map blocks."""
    return make_hierarchy(scale=scale, data_z=4, position_map_block_bytes=12,
                          super_block_size=super_block_size, name="DZ4Pb12")


#: The configurations Figure 12 evaluates, by display name.
FIGURE12_CONFIGS = {
    "baseORAM": base_oram,
    "DZ3Pb32": dz3pb32,
    "DZ4Pb32": dz4pb32,
}
