"""The exclusive-ORAM memory interface a secure processor talks to.

Section 3.3.1: the ORAM is *exclusive* — a block held in the on-chip cache
is not also in the ORAM.  A last-level-cache miss therefore *extracts* the
block (and its whole super block, if enabled) from the ORAM, and a cache
eviction *inserts* the line back into the ORAM stash without any path
access.

:class:`ORAMMemoryInterface` wraps either a single :class:`PathORAM` or a
:class:`HierarchicalPathORAM` behind this fetch / writeback API and keeps
the counters the processor-level evaluation needs (real accesses, dummy
accesses, lines prefetched by super blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.path_oram import PathORAM

Backend = Union[PathORAM, HierarchicalPathORAM]


@dataclass
class InterfaceStats:
    """Counters accumulated by :class:`ORAMMemoryInterface`."""

    fetches: int = 0
    writebacks: int = 0
    dummy_accesses: int = 0
    prefetched_lines: int = 0
    writeback_path_accesses: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class ORAMMemoryInterface:
    """Exclusive-ORAM front-end (the paper's "ORAM interface").

    Parameters
    ----------
    oram:
        The backing ORAM — a single :class:`PathORAM` or a
        :class:`HierarchicalPathORAM`.
    """

    def __init__(self, oram: Backend) -> None:
        self._oram = oram
        self._stats = InterfaceStats()

    @property
    def oram(self) -> Backend:
        return self._oram

    @property
    def stats(self) -> InterfaceStats:
        return self._stats

    @property
    def super_block_size(self) -> int:
        """Blocks returned per fetch when super blocks are enabled.

        Reads the (data) ORAM's mapper, so a dynamic mapper reports its
        maximum runtime group size rather than the config's static 1.
        """
        if isinstance(self._oram, HierarchicalPathORAM):
            return self._oram.data_oram.super_block_mapper.group_size
        return self._oram.super_block_mapper.group_size

    def fetch(self, address: int) -> dict[int, Any]:
        """Fetch the line at ``address`` (plus super-block siblings).

        The returned mapping contains the requested address and any sibling
        lines that were resident in the ORAM; all of them have been removed
        from the ORAM and now belong to the on-chip cache.
        """
        extracted = self._oram.extract(address)
        self._stats.fetches += 1
        self._stats.prefetched_lines += max(0, len(extracted) - 1)
        self._stats.dummy_accesses = self._backend_dummy_count()
        return extracted

    def writeback(self, address: int, data: Any = None) -> int:
        """Return an evicted cache line to the ORAM (no path access).

        Returns the number of dummy accesses background eviction issued.
        """
        dummies = self._oram.insert(address, data)
        self._stats.writebacks += 1
        self._stats.dummy_accesses = self._backend_dummy_count()
        return dummies

    def real_accesses(self) -> int:
        """ORAM path accesses serving real requests."""
        if isinstance(self._oram, HierarchicalPathORAM):
            return self._oram.stats.real_accesses
        return self._oram.stats.real_accesses

    def dummy_accesses(self) -> int:
        """ORAM dummy accesses (background eviction)."""
        return self._backend_dummy_count()

    def _backend_dummy_count(self) -> int:
        if isinstance(self._oram, HierarchicalPathORAM):
            return self._oram.stats.dummy_accesses
        return self._oram.stats.dummy_accesses
