"""Access statistics and the paper's overhead metrics (Equations 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class AccessStats:
    """Counters accumulated by a :class:`~repro.core.path_oram.PathORAM`.

    The paper's primary metric (Equation 1) is::

        Access_Overhead = (RA + DA) / RA * 2 (L + 1) M / B

    where ``RA`` is the number of real accesses, ``DA`` the number of dummy
    accesses injected by background eviction, ``M`` the (padded) bucket size
    and ``B`` the block size.
    """

    real_accesses: int = 0
    dummy_accesses: int = 0
    path_reads: int = 0
    path_writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    #: Logical accesses served without a physical path operation because the
    #: position-map chain coalesced them into an earlier path op on the same
    #: block (see HierarchicalPathORAM's ``coalesce_position_ops``).
    coalesced_ops: int = 0
    #: PosMap Lookaside Buffer outcomes (see :class:`~repro.core.plb.
    #: PosMapLookaside`): a hit means this ORAM's path op for a recursive
    #: position-map lookup was served from the cached label list (the op —
    #: and every op above it in the chain — was skipped); a miss means the
    #: lookup fell through to a physical path op.  The PR 4 single-entry
    #: memo counts here too (it is the capacity-1 PLB).
    plb_hits: int = 0
    plb_misses: int = 0
    #: Dynamic super-block events (see
    #: :class:`~repro.core.super_block.DynamicSuperBlockMapper`): groups
    #: merged with their buddy, groups split back into halves, and accesses
    #: that found their block co-resident with a multi-member group (the
    #: accesses whose path op carried the whole group — the prefetch wins).
    super_block_merges: int = 0
    super_block_splits: int = 0
    super_block_hits: int = 0
    stash_occupancy_samples: list[int] = field(default_factory=list)
    record_occupancy: bool = False

    def record_real_access(self) -> None:
        self.real_accesses += 1

    def record_dummy_access(self) -> None:
        self.dummy_accesses += 1

    def record_path_read(self, real_blocks: int) -> None:
        self.path_reads += 1
        self.blocks_read += real_blocks

    def record_path_write(self, real_blocks: int) -> None:
        self.path_writes += 1
        self.blocks_written += real_blocks

    def sample_stash_occupancy(self, occupancy: int) -> None:
        if self.record_occupancy:
            self.stash_occupancy_samples.append(occupancy)

    @property
    def total_accesses(self) -> int:
        """Real plus dummy accesses."""
        return self.real_accesses + self.dummy_accesses

    @property
    def dummy_ratio(self) -> float:
        """Dummy accesses per real access (the Figure 7 metric)."""
        if self.real_accesses == 0:
            return 0.0
        return self.dummy_accesses / self.real_accesses

    def access_overhead(self, levels: int, bucket_bits: int, block_bits: int) -> float:
        """Equation 1: data moved per useful bit, including dummy accesses."""
        theoretical = 2 * (levels + 1) * bucket_bits / block_bits
        if self.real_accesses == 0:
            return theoretical
        return (self.real_accesses + self.dummy_accesses) / self.real_accesses * theoretical

    def fingerprint(self) -> tuple:
        """Deterministic tuple of every counter (occupancy samples included).

        Used by the checkpoint/resume tests to assert that a restored run
        ends with bit-identical statistics to an uninterrupted one.
        """
        return (
            self.real_accesses,
            self.dummy_accesses,
            self.path_reads,
            self.path_writes,
            self.blocks_read,
            self.blocks_written,
            self.coalesced_ops,
            self.plb_hits,
            self.plb_misses,
            self.super_block_merges,
            self.super_block_splits,
            self.super_block_hits,
            tuple(self.stash_occupancy_samples),
        )

    def merge(self, other: "AccessStats") -> None:
        """Accumulate ``other`` into this instance."""
        self.real_accesses += other.real_accesses
        self.dummy_accesses += other.dummy_accesses
        self.path_reads += other.path_reads
        self.path_writes += other.path_writes
        self.blocks_read += other.blocks_read
        self.blocks_written += other.blocks_written
        self.coalesced_ops += other.coalesced_ops
        self.plb_hits += other.plb_hits
        self.plb_misses += other.plb_misses
        self.super_block_merges += other.super_block_merges
        self.super_block_splits += other.super_block_splits
        self.super_block_hits += other.super_block_hits
        self.stash_occupancy_samples.extend(other.stash_occupancy_samples)

    def reset(self) -> None:
        """Zero every counter."""
        self.real_accesses = 0
        self.dummy_accesses = 0
        self.path_reads = 0
        self.path_writes = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.coalesced_ops = 0
        self.plb_hits = 0
        self.plb_misses = 0
        self.super_block_merges = 0
        self.super_block_splits = 0
        self.super_block_hits = 0
        self.stash_occupancy_samples.clear()
