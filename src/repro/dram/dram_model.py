"""A transaction-level DRAM timing model.

The model tracks, per bank, the currently open row and the earliest cycle
at which the bank can accept a new column command, and, per channel, the
earliest cycle at which the shared data bus is free.  A transaction pays

* ``tCAS`` when it hits the open row,
* ``tRP + tRCD + tCAS`` when it misses (precharge the old row, activate the
  new one), plus ``tRAS``/``tWR`` constraints on how early the precharge may
  happen,

and then occupies the channel data bus for ``tBURST`` cycles.  Refresh is
charged as an amortised slowdown factor (``tRFC / tREFI``).

This is intentionally simpler than DRAMSim2 (no command-bus contention, no
tFAW/tRRD) but reproduces the first-order effects Figure 11 depends on:
row-buffer locality and channel-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address_mapping import AddressMapping, DRAMLocation
from repro.dram.config import DRAMConfig


@dataclass(slots=True)
class _BankState:
    open_row: int | None = None
    ready_cycle: float = 0.0
    activate_cycle: float = 0.0
    write_recovery_until: float = 0.0


@dataclass(slots=True)
class DRAMStats:
    """Counters accumulated across transactions."""

    transactions: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def row_hit_rate(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.row_hits / self.transactions


@dataclass
class DRAMModel:
    """Stateful DRAM timing simulator.

    Use :meth:`enqueue` to submit burst-sized transactions in program order
    and :meth:`elapsed_cycles` (or the return of :meth:`run`) to read the
    completion time.  :meth:`reset` clears bank and bus state between
    measurements.
    """

    config: DRAMConfig = field(default_factory=DRAMConfig)

    def __post_init__(self) -> None:
        self._mapping = AddressMapping(self.config)
        self.reset()

    @property
    def mapping(self) -> AddressMapping:
        return self._mapping

    @property
    def stats(self) -> DRAMStats:
        return self._stats

    def reset(self) -> None:
        """Clear all bank, bus and statistics state."""
        cfg = self.config
        self._banks = [
            [_BankState() for _ in range(cfg.banks_per_channel)] for _ in range(cfg.channels)
        ]
        self._bus_free = [0.0] * cfg.channels
        self._stats = DRAMStats()
        self._finish_cycle = 0.0

    # ------------------------------------------------------------------
    # Transaction processing
    # ------------------------------------------------------------------
    def enqueue(
        self, location: DRAMLocation, is_write: bool = False, not_before: float = 0.0
    ) -> float:
        """Issue one burst transaction; returns its data completion cycle.

        Column commands to an open row pipeline at ``tBURST`` (= tCCD)
        intervals, so back-to-back row hits stream at full bus bandwidth; a
        row miss pays precharge + activate before its CAS and respects
        ``tRAS`` since the previous activate.
        """
        timing = self.config.timing
        bank = self._banks[location.channel][location.bank]
        command_cycle = max(bank.ready_cycle, not_before)

        if bank.open_row == location.row:
            self._stats.row_hits += 1
        else:
            self._stats.row_misses += 1
            if bank.open_row is not None:
                # Precharge may not start before tRAS after the previous
                # activate, nor before write recovery of the last write.
                command_cycle = max(
                    command_cycle,
                    bank.activate_cycle + timing.t_ras,
                    bank.write_recovery_until,
                )
                command_cycle += timing.t_rp
            command_cycle += timing.t_rcd
            bank.activate_cycle = command_cycle - timing.t_rcd
            bank.open_row = location.row

        data_ready = command_cycle + timing.t_cas
        data_start = max(data_ready, self._bus_free[location.channel])
        data_end = data_start + timing.t_burst
        self._bus_free[location.channel] = data_end
        # Column commands pipeline at one burst (tCCD) per command, for both
        # reads and writes; the write-recovery time only delays a later
        # precharge of this bank, not the next column command.
        bank.ready_cycle = command_cycle + timing.t_burst
        if is_write:
            bank.write_recovery_until = data_end + timing.t_wr
        self._stats.transactions += 1
        self._finish_cycle = max(self._finish_cycle, data_end)
        return data_end

    def enqueue_address(self, byte_address: int, is_write: bool = False) -> float:
        """Issue a transaction for the burst containing ``byte_address``."""
        return self.enqueue(self._mapping.locate(byte_address), is_write=is_write)

    def enqueue_range(self, byte_address: int, length: int, is_write: bool = False) -> float:
        """Issue transactions for a contiguous byte range; returns the last
        completion cycle."""
        end = self._finish_cycle
        for location in self._mapping.split_range(byte_address, length):
            end = self.enqueue(location, is_write=is_write)
        return end

    def elapsed_cycles(self, include_refresh: bool = True) -> float:
        """Completion cycle of the last transaction issued since reset."""
        if not include_refresh:
            return self._finish_cycle
        return self._finish_cycle * (1.0 + self.config.timing.refresh_overhead)

    def peak_cycles_for_bytes(self, nbytes: int) -> float:
        """Idealised latency at peak bandwidth (the 'theoretical' bar)."""
        return self.config.peak_cycles_for_bytes(nbytes)
