"""Physical address → (channel, bank, row, column) mapping.

The paper adopts the interleaving in which adjacent addresses "first differ
in channels, then columns, then banks, and lastly rows" (Section 3.3.4).
Addresses are decomposed at burst granularity (64 bytes): the lowest bits
select the channel, the next bits the column (burst within a row), then the
bank, then the row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DRAMLocation:
    """Where one burst-sized transaction lands in the DRAM system."""

    channel: int
    bank: int
    row: int
    column: int


class AddressMapping:
    """Implements the channel → column → bank → row interleaving."""

    def __init__(self, config: DRAMConfig) -> None:
        self._config = config
        self._granularity = config.access_granularity_bytes
        self._bursts_per_row = config.row_buffer_bytes // self._granularity
        if self._bursts_per_row < 1:
            raise ConfigurationError("row buffer smaller than one burst")

    @property
    def config(self) -> DRAMConfig:
        return self._config

    @property
    def granularity_bytes(self) -> int:
        """Transaction size (one burst)."""
        return self._granularity

    def locate(self, byte_address: int) -> DRAMLocation:
        """Map a byte address to its channel/bank/row/column."""
        if byte_address < 0:
            raise ConfigurationError("byte_address must be non-negative")
        burst = byte_address // self._granularity
        cfg = self._config
        channel = burst % cfg.channels
        burst //= cfg.channels
        column = burst % self._bursts_per_row
        burst //= self._bursts_per_row
        bank = burst % cfg.banks_per_channel
        burst //= cfg.banks_per_channel
        row = burst % cfg.rows_per_bank
        return DRAMLocation(channel=channel, bank=bank, row=row, column=column)

    def split_range(self, byte_address: int, length: int) -> list[DRAMLocation]:
        """Split a contiguous byte range into burst-sized transactions."""
        if length <= 0:
            return []
        first = byte_address // self._granularity
        last = (byte_address + length - 1) // self._granularity
        return [self.locate(burst * self._granularity) for burst in range(first, last + 1)]
