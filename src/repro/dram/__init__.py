"""A DDR3-like DRAM timing model and ORAM-tree memory placement strategies.

The paper evaluates Path ORAM on commodity DRAM with DRAMSim2 (Section 4.2,
Figure 11).  DRAMSim2 is not available here, so :mod:`repro.dram` provides a
timing model that captures the effects Figure 11 depends on:

* row-buffer hits versus misses (activate / precharge / CAS latencies),
* bank-level parallelism within a channel,
* channel-level parallelism and data-bus occupancy,
* the paper's address interleaving (adjacent addresses differ first in
  channel, then column, then bank, then row), and
* an amortised refresh penalty.

On top of the timing model, :mod:`repro.dram.placement` implements the
naive (heap-order) layout of the ORAM tree and the paper's subtree packing
(Section 3.3.4), and :mod:`repro.dram.oram_dram` measures the latency of a
full ORAM (or hierarchical ORAM) access under each.
"""

from repro.dram.address_mapping import AddressMapping, DRAMLocation
from repro.dram.config import DDR3Timing, DRAMConfig
from repro.dram.dram_model import DRAMModel
from repro.dram.oram_dram import HierarchyLatencyResult, ORAMDRAMSimulator
from repro.dram.placement import NaivePlacement, SubtreePlacement, TreePlacement

__all__ = [
    "DDR3Timing",
    "DRAMConfig",
    "AddressMapping",
    "DRAMLocation",
    "DRAMModel",
    "TreePlacement",
    "NaivePlacement",
    "SubtreePlacement",
    "ORAMDRAMSimulator",
    "HierarchyLatencyResult",
]
