"""Memory placement of the ORAM tree onto DRAM (Section 3.3.4).

Two strategies are provided:

* :class:`NaivePlacement` — the ORAM tree stored as a flat heap-order
  array.  Consecutive buckets along a path land in unrelated rows, so a
  path access sees almost no row-buffer locality.
* :class:`SubtreePlacement` — the paper's optimisation: every ``k``-level
  subtree is packed into one contiguous "node" sized to the row buffer
  times the number of channels, turning the ORAM tree into a ``2^k``-ary
  tree of row-sized nodes.  A path then touches one node per ``k`` levels,
  and all buckets within a node enjoy row-buffer hits spread evenly across
  channels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.config import ORAMConfig
from repro.core.tree import path_indices
from repro.dram.config import DRAMConfig
from repro.errors import ConfigurationError


class TreePlacement(ABC):
    """Maps ORAM bucket indices (heap order) to DRAM byte addresses."""

    def __init__(self, oram_config: ORAMConfig, base_address: int = 0) -> None:
        self._oram = oram_config
        self._base = base_address

    @property
    def oram_config(self) -> ORAMConfig:
        return self._oram

    @property
    def base_address(self) -> int:
        """Byte offset of this tree within the DRAM address space."""
        return self._base

    @abstractmethod
    def bucket_address(self, bucket_index: int) -> int:
        """Byte address of the first byte of ``bucket_index``."""

    @abstractmethod
    def total_bytes(self) -> int:
        """Total DRAM footprint of the placed tree (including padding)."""

    def path_addresses(self, leaf: int) -> list[tuple[int, int]]:
        """``(byte_address, length)`` of every bucket on the path to ``leaf``."""
        size = self._oram.bucket_bytes
        return [
            (self.bucket_address(index), size)
            for index in path_indices(leaf, self._oram.levels)
        ]

    def _check_index(self, bucket_index: int) -> None:
        if not 0 <= bucket_index < self._oram.num_buckets:
            raise ConfigurationError(
                f"bucket index {bucket_index} out of range [0, {self._oram.num_buckets})"
            )


class NaivePlacement(TreePlacement):
    """Heap-order array layout: bucket ``i`` at offset ``i * bucket_bytes``."""

    def bucket_address(self, bucket_index: int) -> int:
        self._check_index(bucket_index)
        return self._base + bucket_index * self._oram.bucket_bytes

    def total_bytes(self) -> int:
        return self._oram.num_buckets * self._oram.bucket_bytes


class SubtreePlacement(TreePlacement):
    """Pack each ``k``-level subtree into a row-buffer-sized node.

    Parameters
    ----------
    oram_config:
        The ORAM whose tree is being placed.
    dram_config:
        Determines the node size (row buffer bytes × channels) unless
        ``node_bytes`` overrides it.
    node_bytes:
        Explicit node size; must hold at least one bucket.
    base_address:
        Byte offset of the tree within the DRAM address space.
    """

    def __init__(
        self,
        oram_config: ORAMConfig,
        dram_config: DRAMConfig | None = None,
        node_bytes: int | None = None,
        base_address: int = 0,
    ) -> None:
        super().__init__(oram_config, base_address)
        if node_bytes is None:
            if dram_config is None:
                raise ConfigurationError("provide either dram_config or node_bytes")
            node_bytes = dram_config.subtree_node_bytes
        if node_bytes < oram_config.bucket_bytes:
            raise ConfigurationError("subtree node smaller than one bucket")
        self._node_bytes = node_bytes
        # Largest k with (2^k - 1) buckets fitting in one node.
        k = 1
        while ((1 << (k + 1)) - 1) * oram_config.bucket_bytes <= node_bytes:
            k += 1
        self._k = k
        self._buckets_per_node = (1 << k) - 1
        self._node_slot_bytes = node_bytes
        self._num_subtree_levels = -(-oram_config.num_levels // k)  # ceil division

    @property
    def levels_per_subtree(self) -> int:
        """The packing factor ``k``."""
        return self._k

    @property
    def node_bytes(self) -> int:
        """Size of one subtree node slot (row buffer × channels)."""
        return self._node_slot_bytes

    @property
    def num_subtree_levels(self) -> int:
        """Levels of the resulting ``2^k``-ary tree."""
        return self._num_subtree_levels

    def _num_nodes_above(self, subtree_level: int) -> int:
        """Number of subtree nodes in all levels shallower than ``subtree_level``."""
        k = self._k
        total = 0
        for level in range(subtree_level):
            total += 1 << (k * level)
        return total

    def bucket_address(self, bucket_index: int) -> int:
        self._check_index(bucket_index)
        level = (bucket_index + 1).bit_length() - 1
        position = bucket_index - ((1 << level) - 1)

        subtree_level = level // self._k
        depth_in_subtree = level % self._k
        # The subtree's root is this bucket's ancestor at level subtree_level*k;
        # its position within that level identifies the subtree.
        ancestor_position = position >> depth_in_subtree
        node_id = self._num_nodes_above(subtree_level) + ancestor_position

        position_in_subtree_level = position & ((1 << depth_in_subtree) - 1)
        index_in_subtree = ((1 << depth_in_subtree) - 1) + position_in_subtree_level
        return (
            self._base
            + node_id * self._node_slot_bytes
            + index_in_subtree * self._oram.bucket_bytes
        )

    def total_bytes(self) -> int:
        total_nodes = self._num_nodes_above(self._num_subtree_levels)
        return total_nodes * self._node_slot_bytes
