"""DRAM organisation and DDR3 timing parameters.

Defaults follow the paper's DRAMSim2 setup: the default ``DDR3_micron``
device with 16-bit width, 1024 columns per row, 8 banks and 16384 rows per
chip, assembled into a 64-bit channel (so a row buffer holds
``1024 columns x 8 bytes = 8 KB`` per bank).  Timings are expressed in DRAM
clock cycles (DDR3-1600: 800 MHz memory clock), matching Figure 11's
"latency in DRAM cycles" axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DDR3Timing:
    """DDR3 timing parameters in DRAM clock cycles."""

    t_rcd: int = 10
    """RAS-to-CAS delay: activate a row before a column access."""

    t_rp: int = 10
    """Row precharge time: close a row before activating another."""

    t_cas: int = 10
    """CAS latency: column access to first data."""

    t_burst: int = 4
    """Data-bus occupancy of one burst (BL8 on a DDR bus = 4 clock cycles)."""

    t_ras: int = 24
    """Minimum time a row must stay open after activation."""

    t_wr: int = 12
    """Write recovery time before the row may be precharged."""

    t_rfc: int = 88
    """Refresh cycle time."""

    t_refi: int = 6240
    """Average refresh interval."""

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_rp", "t_cas", "t_burst", "t_ras", "t_wr", "t_rfc", "t_refi"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def row_miss_penalty(self) -> int:
        """Extra cycles a row-buffer miss pays over a hit (precharge + activate)."""
        return self.t_rp + self.t_rcd

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time the DRAM is unavailable due to refresh."""
        return self.t_rfc / self.t_refi


@dataclass(frozen=True)
class DRAMConfig:
    """Organisation of the DRAM system backing the ORAM tree."""

    channels: int = 1
    banks_per_channel: int = 8
    rows_per_bank: int = 16384
    columns_per_row: int = 1024
    device_width_bits: int = 16
    bus_width_bits: int = 64
    burst_length: int = 8
    timing: DDR3Timing = DDR3Timing()

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigurationError("channels must be >= 1")
        if self.banks_per_channel < 1:
            raise ConfigurationError("banks_per_channel must be >= 1")
        if self.rows_per_bank < 1 or self.columns_per_row < 1:
            raise ConfigurationError("rows and columns must be >= 1")
        if self.bus_width_bits % 8 != 0:
            raise ConfigurationError("bus_width_bits must be a multiple of 8")

    @property
    def access_granularity_bytes(self) -> int:
        """Bytes transferred by one burst (64 bytes for a 64-bit DDR3 BL8 bus)."""
        return self.bus_width_bits // 8 * self.burst_length

    @property
    def row_buffer_bytes(self) -> int:
        """Row buffer size per bank: columns * bus width."""
        return self.columns_per_row * self.bus_width_bits // 8

    @property
    def channel_capacity_bytes(self) -> int:
        """Capacity of one channel."""
        return self.banks_per_channel * self.rows_per_bank * self.row_buffer_bytes

    @property
    def total_capacity_bytes(self) -> int:
        """Total DRAM capacity across all channels."""
        return self.channels * self.channel_capacity_bytes

    @property
    def subtree_node_bytes(self) -> int:
        """The paper's subtree node size: row-buffer size times channel count
        (Section 3.3.4: ``ch x 128 x 64`` bytes for the default device)."""
        return self.row_buffer_bytes * self.channels

    def peak_cycles_for_bytes(self, nbytes: int) -> float:
        """Cycles to move ``nbytes`` at peak bandwidth across all channels."""
        bursts = nbytes / self.access_granularity_bytes
        return bursts * self.timing.t_burst / self.channels
