"""Latency of Path ORAM accesses on the DRAM model (Figure 11, Table 2).

:class:`ORAMDRAMSimulator` measures, for a single ORAM or a hierarchy, the
DRAM-cycle latency of a complete access: read every bucket on the accessed
path of every ORAM (position-map ORAMs first, data ORAM last — the
optimised order of Section 3.3.2), then write every one of them back.  The
cycle at which the data ORAM's path read completes is the *return data*
latency; the cycle at which the last write-back burst finishes is the
*finish access* latency.

The ``theoretical`` reference point assumes the DRAM always runs at peak
bandwidth, exactly as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.config import HierarchyConfig, ORAMConfig
from repro.dram.config import DRAMConfig
from repro.dram.dram_model import DRAMModel
from repro.dram.placement import NaivePlacement, SubtreePlacement, TreePlacement

PlacementFactory = Callable[[ORAMConfig, DRAMConfig, int], TreePlacement]


def naive_placement_factory(oram: ORAMConfig, dram: DRAMConfig, base: int) -> TreePlacement:
    """Factory building :class:`NaivePlacement` (heap-order array)."""
    return NaivePlacement(oram, base_address=base)


def subtree_placement_factory(oram: ORAMConfig, dram: DRAMConfig, base: int) -> TreePlacement:
    """Factory building :class:`SubtreePlacement` (the paper's layout)."""
    return SubtreePlacement(oram, dram_config=dram, base_address=base)


@dataclass(frozen=True)
class HierarchyLatencyResult:
    """Average latencies of one hierarchical ORAM access on DRAM."""

    return_data_cycles: float
    finish_access_cycles: float
    theoretical_cycles: float
    row_hit_rate: float
    bytes_moved: int

    def cpu_cycles(self, num_orams: int, cpu_per_dram_cycle: int = 4,
                   decryption_latency_cycles: int = 80) -> tuple[float, float]:
        """Convert to CPU cycles per the paper's model:
        ``latency_CPU = 4 x latency_DRAM + H x latency_decryption``.

        Returns ``(return_data, finish_access)`` in CPU cycles.
        """
        extra = num_orams * decryption_latency_cycles
        return (
            self.return_data_cycles * cpu_per_dram_cycle + extra,
            self.finish_access_cycles * cpu_per_dram_cycle + extra,
        )


class ORAMDRAMSimulator:
    """Measures ORAM access latency on the DRAM timing model."""

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        dram_config: DRAMConfig | None = None,
        placement_factory: PlacementFactory = subtree_placement_factory,
        rng: random.Random | None = None,
    ) -> None:
        self._hierarchy = hierarchy
        self._dram_config = dram_config if dram_config is not None else DRAMConfig()
        self._rng = rng if rng is not None else random.Random()
        self._model = DRAMModel(self._dram_config)
        self._placements = self._build_placements(placement_factory)

    def _build_placements(self, factory: PlacementFactory) -> list[TreePlacement]:
        placements: list[TreePlacement] = []
        base = 0
        # The data ORAM occupies the lowest addresses, position-map ORAMs above it.
        for config in self._hierarchy.oram_configs:
            placement = factory(config, self._dram_config, base)
            placements.append(placement)
            base += placement.total_bytes()
        return placements

    @property
    def placements(self) -> Sequence[TreePlacement]:
        return tuple(self._placements)

    @property
    def dram_model(self) -> DRAMModel:
        return self._model

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def bytes_per_access(self) -> int:
        """Bytes read plus written by one full hierarchical access."""
        total = 0
        for config in self._hierarchy.oram_configs:
            total += 2 * config.num_levels * config.bucket_bytes
        return total

    def theoretical_cycles(self) -> float:
        """Latency at peak DRAM bandwidth (the paper's 'theoretical' bars)."""
        return self._dram_config.peak_cycles_for_bytes(self.bytes_per_access())

    def simulate_access(self, leaves: Sequence[int] | None = None) -> tuple[float, float]:
        """Simulate one access; returns ``(return_data, finish_access)`` cycles.

        ``leaves`` optionally fixes the accessed leaf per ORAM (data ORAM
        first); otherwise uniformly random leaves are drawn.
        """
        configs = self._hierarchy.oram_configs
        if leaves is None:
            leaves = [self._rng.randrange(cfg.num_leaves) for cfg in configs]
        self._model.reset()

        # Read phase: position-map ORAMs first (smallest to largest is the
        # paper's ORAM_H .. ORAM_1 order), data ORAM last.
        read_order = list(range(len(configs) - 1, -1, -1))
        path_chunks: dict[int, list[tuple[int, int]]] = {}
        for index in read_order:
            placement = self._placements[index]
            chunks = placement.path_addresses(leaves[index])
            path_chunks[index] = chunks
            for address, length in chunks:
                self._model.enqueue_range(address, length, is_write=False)
        return_data = self._model.elapsed_cycles()

        # Write phase: same paths, re-encrypted and written back.
        for index in read_order:
            for address, length in path_chunks[index]:
                self._model.enqueue_range(address, length, is_write=True)
        finish_access = self._model.elapsed_cycles()
        return return_data, finish_access

    def measure(self, num_accesses: int = 50) -> HierarchyLatencyResult:
        """Average latency over ``num_accesses`` random path accesses."""
        if num_accesses < 1:
            raise ValueError("num_accesses must be >= 1")
        total_return = 0.0
        total_finish = 0.0
        hits = 0
        transactions = 0
        for _ in range(num_accesses):
            return_data, finish_access = self.simulate_access()
            total_return += return_data
            total_finish += finish_access
            hits += self._model.stats.row_hits
            transactions += self._model.stats.transactions
        return HierarchyLatencyResult(
            return_data_cycles=total_return / num_accesses,
            finish_access_cycles=total_finish / num_accesses,
            theoretical_cycles=self.theoretical_cycles(),
            row_hit_rate=hits / transactions if transactions else 0.0,
            bytes_moved=self.bytes_per_access(),
        )
