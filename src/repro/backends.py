"""The backend/scenario registry: named storage stacks and protocol variants.

Every driver in the repository — the analysis sweeps, the processor model's
ORAM memory backend, the figure benchmarks and the examples — obtains its
ORAM through this module instead of wiring storages, eviction policies and
protocol classes together by hand.  A scenario is an :class:`OramSpec`:
a picklable, frozen description naming

* the **storage stack** (``"flat"`` — the array-backed fast functional
  back-end, ``"plain"`` — the list-of-lists reference, ``"encrypted"`` —
  randomized bucket encryption, ``"integrity"`` — encryption plus the
  mirrored authentication tree), and
* the **protocol variant** (``"flat"`` — a single :class:`PathORAM`,
  ``"hierarchical"`` — the recursive position-map chain of
  :class:`HierarchicalPathORAM`), and
* the **eviction policy** (``"default"``, ``"background"``, ``"none"``,
  ``"insecure"``).

Because specs are plain frozen dataclasses they travel through
:class:`repro.runner.ExperimentSpec` kwargs into process-pool workers, so a
parallel grid can build its backends inside each worker bit-identically to a
serial run.  New storage stacks can be registered with
:func:`register_storage` without touching any driver.
"""

from __future__ import annotations

import itertools
import os
import random
import tempfile
import warnings
from dataclasses import dataclass, replace
from typing import Any, Callable, Union

from repro.core.background_eviction import (
    BackgroundEviction,
    EvictionPolicy,
    InsecureBlockRemapEviction,
    NoEviction,
)
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.interface import ORAMMemoryInterface
from repro.core.path_oram import PathORAM
from repro.core.super_block import DynamicSuperBlockMapper, SuperBlockMapper
from repro.core.tree import (
    EncryptedTreeStorage,
    FlatTreeStorage,
    PlainTreeStorage,
    TreeStorage,
)
from repro.crypto.bucket_encryption import CounterBucketCipher, StrawmanBucketCipher
from repro.crypto.keys import ProcessorKey
from repro.errors import ConfigurationError
from repro.integrity.storage import IntegrityVerifiedStorage

#: A storage factory builds one tree storage for one ORAM of a scenario.
StorageFactory = Callable[[ORAMConfig], TreeStorage]

#: A storage builder turns a spec into a factory (called once per ORAM).
StorageBuilder = Callable[["OramSpec"], StorageFactory]

Backend = Union[PathORAM, HierarchicalPathORAM]

PROTOCOLS = ("flat", "hierarchical")
EVICTION_POLICIES = ("default", "background", "none", "insecure")

_STORAGE_BUILDERS: dict[str, StorageBuilder] = {}


def register_storage(name: str) -> Callable[[StorageBuilder], StorageBuilder]:
    """Register a storage stack under ``name`` (decorator).

    The builder receives the full :class:`OramSpec` and returns a factory
    mapping each ORAM's configuration to a fresh :class:`TreeStorage`.
    """

    def deco(builder: StorageBuilder) -> StorageBuilder:
        _STORAGE_BUILDERS[name] = builder
        return builder

    return deco


def storage_backends() -> tuple[str, ...]:
    """Names of every registered storage stack."""
    return tuple(sorted(_STORAGE_BUILDERS))


@dataclass(frozen=True)
class OramSpec:
    """One named ORAM scenario: protocol + storage stack + eviction policy.

    Parameters
    ----------
    protocol:
        ``"flat"`` (single Path ORAM) or ``"hierarchical"`` (recursive
        position-map chain).
    storage:
        A registered storage stack name; see :func:`storage_backends`.
    eviction:
        ``"default"`` leaves the choice to the protocol (background eviction
        for bounded stashes, none otherwise), ``"background"`` / ``"none"``
        / ``"insecure"`` force a policy.  Hierarchical ORAMs run eviction at
        the hierarchy level and accept only ``"default"``.
    key_seed:
        Seed for the processor key of the encrypted/integrity stacks (kept
        in the spec so pool workers derive identical ciphers).
    create_on_miss / record_path_trace / livelock_limit:
        Forwarded to the protocol object.
    coalesce_position_ops:
        **Deprecated** — use ``plb_entries_per_level=1``, which reproduces
        coalescing bit for bit (pinned in ``tests/test_plb.py`` and
        ``tests/test_api.py``); setting this flag emits a
        ``DeprecationWarning``.  Hierarchical protocol only: let
        ``access_many`` serve consecutive accesses resolving through the
        same position-map block from one fused path op (see
        :class:`~repro.core.hierarchical.HierarchicalPathORAM`).  A pure
        throughput lever for trace replays — logical results are
        unchanged, the physical op sequence is not, so analyses of the
        physical access pattern should leave it off.
    plb_entries_per_level:
        Hierarchical protocol only: capacity (position-map blocks per
        chain level) of the PosMap Lookaside Buffer, the Freecursive-style
        generalisation of ``coalesce_position_ops`` to a real multi-entry
        LRU label cache (see :class:`~repro.core.plb.PosMapLookaside`).
        Serves the looped ``access`` path and ``access_many`` alike; 0
        disables it.  Unlike coalescing it composes with
        ``dynamic_super_blocks`` — the chain's cached labels are kept
        coherent with cohort moves through explicit invalidation hooks.
    compressed_position_map:
        Hierarchical protocol only: pack position-map blocks with the
        Freecursive compressed layout (one base label plus half-width
        per-child offsets), roughly doubling
        ``labels_per_position_block`` and shrinking the recursion depth
        (see :class:`~repro.core.config.HierarchyConfig`).  Applied to the
        hierarchy configuration at build time.
    columnar_min_slots:
        ``numpy-flat`` stack only: an ORAM whose tree has fewer than this
        many block slots falls back to the list-backed
        :class:`FlatTreeStorage`.  NumPy's per-call overhead outweighs the
        column gathers on small trees (short paths), so a hierarchical
        spec can run its big data ORAM column-native while its small
        position-map ORAMs stay on the list engine.  0 (default) keeps
        every ORAM columnar.
    dynamic_super_blocks:
        Enable runtime super-block merging on the (data) ORAM: a
        :class:`~repro.core.super_block.DynamicSuperBlockMapper` observes
        the access stream and merges/splits adjacent-address groups at
        runtime (the paper's Section 3.2 future work).  Requires
        ``super_block_size=1`` in the ORAM configuration — the mapper owns
        the grouping — and is incompatible with ``eviction="insecure"``.
        The remaining ``super_block_*`` knobs parameterise the policy:
        the counter window (accesses between counter halvings), the
        per-buddy co-access count that triggers a merge, the hot-half
        count that triggers a split once the other half decays to zero,
        and the maximum runtime group size (a power of two).
    storage_path:
        ``memmap-flat`` stack only: directory the durable column files are
        created in.  One ``build_oram`` call creates fresh stores there
        (hierarchical ORAMs get one file per level); building the same
        path twice truncates — reattaching to existing stores goes through
        :meth:`repro.core.memmap_tree.MemmapTreeStorage.open` or snapshot
        restore, never the builder.  Empty (default) uses a fresh
        temporary directory per factory.
    memmap_sync / memmap_history:
        ``memmap-flat`` stack only: the journal fsync policy (``"strict"``
        or ``"relaxed"``) and how many generations of undo
        journals/headers to keep for rollback — see
        :mod:`repro.core.memmap_tree`.
    """

    protocol: str = "flat"
    storage: str = "flat"
    eviction: str = "default"
    key_seed: int = 0
    create_on_miss: bool = True
    record_path_trace: bool = False
    livelock_limit: int = 100_000
    coalesce_position_ops: bool = False
    plb_entries_per_level: int = 0
    compressed_position_map: bool = False
    columnar_min_slots: int = 0
    dynamic_super_blocks: bool = False
    super_block_window: int = 512
    super_block_merge_threshold: int = 2
    super_block_split_threshold: int = 4
    super_block_max_size: int = 4
    storage_path: str = ""
    memmap_sync: str = "strict"
    memmap_history: int = 4

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; expected one of {PROTOCOLS}"
            )
        if self.storage not in _STORAGE_BUILDERS:
            raise ConfigurationError(
                f"unknown storage stack {self.storage!r}; "
                f"registered: {storage_backends()}"
            )
        if self.eviction not in EVICTION_POLICIES:
            raise ConfigurationError(
                f"unknown eviction policy {self.eviction!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        if self.protocol == "hierarchical" and self.eviction != "default":
            raise ConfigurationError(
                "hierarchical ORAMs evict at the hierarchy level; "
                "use eviction='default'"
            )
        if self.protocol == "hierarchical" and not self.create_on_miss:
            raise ConfigurationError(
                "the recursive construction materialises missing blocks "
                "(position-map blocks must exist); create_on_miss=False is "
                "only meaningful for the flat protocol"
            )
        if self.protocol == "flat" and self.coalesce_position_ops:
            raise ConfigurationError(
                "coalesce_position_ops batches position-map path ops; the "
                "flat protocol has no position-map chain (use "
                "protocol='hierarchical')"
            )
        if self.coalesce_position_ops:
            warnings.warn(
                "OramSpec(coalesce_position_ops=True) is deprecated; use "
                "plb_entries_per_level=1 — the capacity-1 PosMap Lookaside "
                "Buffer reproduces coalescing bit for bit",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.plb_entries_per_level < 0:
            raise ConfigurationError("plb_entries_per_level must be >= 0")
        if self.protocol == "flat" and self.plb_entries_per_level:
            raise ConfigurationError(
                "plb_entries_per_level caches position-map blocks; the flat "
                "protocol has no position-map chain (use "
                "protocol='hierarchical')"
            )
        if self.protocol == "flat" and self.compressed_position_map:
            raise ConfigurationError(
                "compressed_position_map packs position-map blocks; the "
                "flat protocol has no position-map chain (use "
                "protocol='hierarchical')"
            )
        if self.storage_path and self.storage != "memmap-flat":
            raise ConfigurationError(
                "storage_path homes durable column files; it is only "
                "meaningful for the 'memmap-flat' stack"
            )
        if self.memmap_sync not in ("strict", "relaxed"):
            raise ConfigurationError(
                f"unknown memmap_sync {self.memmap_sync!r}; "
                "expected 'strict' or 'relaxed'"
            )
        if self.memmap_history < 1:
            raise ConfigurationError("memmap_history must be >= 1")
        if self.storage != "memmap-flat" and (
            self.memmap_sync != "strict" or self.memmap_history != 4
        ):
            raise ConfigurationError(
                "memmap_sync/memmap_history tune the durable commit "
                "protocol; they are only meaningful for the 'memmap-flat' "
                f"stack (storage={self.storage!r})"
            )
        if self.dynamic_super_blocks:
            if self.eviction == "insecure":
                raise ConfigurationError(
                    "dynamic super-block merging does not compose with the "
                    "insecure remap eviction scheme"
                )
            if self.coalesce_position_ops:
                raise ConfigurationError(
                    "coalesce_position_ops requires the fused chain walk, "
                    "which needs single-member data groups; it cannot engage "
                    "alongside dynamic_super_blocks (it would be a silent "
                    "no-op)"
                )
            # Knob validation happens eagerly so a bad spec fails at
            # construction, not inside a pool worker.
            DynamicSuperBlockMapper(
                max_group_size=self.super_block_max_size,
                window=self.super_block_window,
                merge_threshold=self.super_block_merge_threshold,
                split_threshold=self.super_block_split_threshold,
            )

    def with_updates(self, **kwargs: Any) -> "OramSpec":
        """Copy of this spec with the given fields replaced."""
        return replace(self, **kwargs)

    @property
    def fleet_eligible(self) -> bool:
        """Whether the fleet executor may batch ORAMs of this spec.

        The batched tensor engine (:mod:`repro.core.numpy_fleet`) drives a
        single flat Path ORAM on plain (unencrypted) columns; it mirrors
        the column engine's single-member fast path, so dynamic super-block
        grouping and path-trace recording — both of which need the scalar
        per-access machinery — disqualify a spec.  ``"flat"`` storage
        counts as eligible because the fleet adapters re-route it onto the
        bit-identical ``numpy-flat`` columns (the same substitution
        :func:`full_scale_spec` performs).  Eligibility is necessary, not
        sufficient: the adapter additionally checks the configuration
        (tree shape limits, single-member groups) per point.
        """
        return (
            self.protocol == "flat"
            and self.storage in ("flat", "numpy-flat")
            and not self.dynamic_super_blocks
            and not self.record_path_trace
        )


# ----------------------------------------------------------------------
# Built-in storage stacks
# ----------------------------------------------------------------------
@register_storage("flat")
def _flat_storage(spec: OramSpec) -> StorageFactory:
    return FlatTreeStorage


@register_storage("plain")
def _plain_storage(spec: OramSpec) -> StorageFactory:
    return PlainTreeStorage


# NumPy is optional: when it is absent the ``numpy-flat`` stack is simply
# not registered (specs naming it fail with the usual unknown-storage
# error) and the pure-Python flat stack remains the default fast backend.
try:
    from repro.core.numpy_tree import NumpyFlatTreeStorage
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    NumpyFlatTreeStorage = None  # type: ignore[assignment, misc]
else:

    @register_storage("numpy-flat")
    def _numpy_flat_storage(spec: OramSpec) -> StorageFactory:
        minimum = spec.columnar_min_slots
        if minimum <= 0:
            return NumpyFlatTreeStorage

        def factory(config: ORAMConfig) -> TreeStorage:
            # Small trees (short paths) are faster on the list engine than
            # under NumPy's per-call overhead; a hierarchical spec can
            # therefore keep its small position-map ORAMs list-backed
            # while the big data ORAM runs column-native.  Both stacks are
            # bit-identical, so the cutoff only moves throughput.
            if config.num_buckets * config.z >= minimum:
                return NumpyFlatTreeStorage(config)
            return FlatTreeStorage(config)

        return factory

    @register_storage("memmap-flat")
    def _memmap_flat_storage(spec: OramSpec) -> StorageFactory:
        from repro.core.memmap_tree import MemmapTreeStorage

        base_dir = spec.storage_path or tempfile.mkdtemp(prefix="repro-memmap-")
        minimum = spec.columnar_min_slots
        # Hierarchical builds call the factory once per chain level; each
        # level gets its own durable file, named by build order + geometry.
        counter = itertools.count()

        def factory(config: ORAMConfig) -> TreeStorage:
            if minimum > 0 and config.num_buckets * config.z < minimum:
                # Small position-map ORAMs stay on the volatile list
                # stack; only trees past the cutoff earn a durable file.
                return FlatTreeStorage(config)
            index = next(counter)
            os.makedirs(base_dir, exist_ok=True)
            name = f"oram-{index:02d}-L{config.levels}-Z{config.z}.tree"
            return MemmapTreeStorage(
                config,
                os.path.join(base_dir, name),
                sync=spec.memmap_sync,
                history_generations=spec.memmap_history,
            )

        return factory


def _cipher_for(config: ORAMConfig, key: ProcessorKey):
    if config.encryption == "strawman":
        return StrawmanBucketCipher(key)
    return CounterBucketCipher(key)


@register_storage("encrypted")
def _encrypted_storage(spec: OramSpec) -> StorageFactory:
    key = ProcessorKey(seed=spec.key_seed)

    def factory(config: ORAMConfig) -> TreeStorage:
        return EncryptedTreeStorage(config, _cipher_for(config, key))

    return factory


@register_storage("integrity")
def _integrity_storage(spec: OramSpec) -> StorageFactory:
    key = ProcessorKey(seed=spec.key_seed)

    def factory(config: ORAMConfig) -> TreeStorage:
        return IntegrityVerifiedStorage(config, _cipher_for(config, key))

    return factory


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def storage_factory(spec: OramSpec) -> StorageFactory:
    """The storage factory for a spec's storage stack."""
    return _STORAGE_BUILDERS[spec.storage](spec)


#: Tree size (total block slots) from which the design-space drivers switch
#: a "flat" spec onto the ``numpy-flat`` columns: at this scale the tree's
#: metadata as three int64 ndarrays is decisively cheaper than millions of
#: Python Block objects, and the column-native engine keeps the paths fast.
#: Below it the list engine's per-block costs beat NumPy's per-call
#: overhead, so moderate grids are left exactly as specified.
FULL_SCALE_SLOTS = 1 << 20


def full_scale_spec(
    spec: OramSpec, config: ORAMConfig | HierarchyConfig
) -> OramSpec:
    """Route a full-scale grid point onto the ``numpy-flat`` stack.

    Returns ``spec`` unchanged unless all of the following hold: the spec
    names the ``"flat"`` storage stack (an explicitly chosen stack — plain,
    encrypted, integrity, or already numpy — is always respected), NumPy is
    available (the stack is registered), the configuration uses
    single-member super-block groups (the column engine declines grouped
    ORAMs, so routing a super-block config would land it on the *generic*
    loop — slower than the list engine it replaced), and ``config``
    describes a tree of at least :data:`FULL_SCALE_SLOTS` block slots (for
    a hierarchy, its largest ORAM).  The returned spec keeps ORAMs below
    the threshold on the list-backed storage via ``columnar_min_slots``,
    so a full-scale hierarchy runs its huge data ORAM column-native while
    the small position-map ORAMs stay on the list engine.

    Either way the simulated results are bit-identical — the differential
    suites pin the stacks against each other — so the drivers apply this
    freely inside pool workers.
    """
    if spec.storage != "flat" or "numpy-flat" not in _STORAGE_BUILDERS:
        return spec
    if spec.dynamic_super_blocks:
        # The column engine declines grouped ORAMs, so routing a dynamic
        # super-block spec onto the numpy stack would land it on the
        # generic loop — slower than the list engine it replaced.
        return spec
    if isinstance(config, HierarchyConfig):
        if config.data_oram.super_block_size != 1:
            return spec
        slots = max(c.num_buckets * c.z for c in config.oram_configs)
    else:
        if config.super_block_size != 1:
            return spec
        slots = config.num_buckets * config.z
    if slots < FULL_SCALE_SLOTS:
        return spec
    return spec.with_updates(
        storage="numpy-flat", columnar_min_slots=FULL_SCALE_SLOTS
    )


def _eviction_policy(
    spec: OramSpec, config: ORAMConfig, rng: random.Random
) -> EvictionPolicy:
    if spec.eviction == "default":
        # The protocol's own default choice — background eviction for a
        # bounded stash, none otherwise — but honouring the spec's
        # livelock limit.
        if config.stash_capacity is None:
            return NoEviction()
        return BackgroundEviction(livelock_limit=spec.livelock_limit)
    if spec.eviction == "none":
        return NoEviction()
    if spec.eviction == "background":
        return BackgroundEviction(livelock_limit=spec.livelock_limit)
    return InsecureBlockRemapEviction(rng=rng, livelock_limit=spec.livelock_limit)


def _resolve_rng(seed: int | None, rng: random.Random | None) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed)


def _super_block_mapper(
    spec: OramSpec, config: ORAMConfig
) -> SuperBlockMapper | None:
    """The (data) ORAM's super-block mapper for a spec, or ``None`` for the
    protocol's own default (the static mapper at the config's size)."""
    if not spec.dynamic_super_blocks:
        return None
    if config.super_block_size != 1:
        raise ConfigurationError(
            "dynamic super-block merging owns the grouping; the ORAM "
            "configuration must use super_block_size=1 (the spec's "
            "super_block_max_size bounds runtime groups)"
        )
    return DynamicSuperBlockMapper(
        max_group_size=spec.super_block_max_size,
        window=spec.super_block_window,
        merge_threshold=spec.super_block_merge_threshold,
        split_threshold=spec.super_block_split_threshold,
    )


def build_oram(
    spec: OramSpec,
    config: ORAMConfig | HierarchyConfig,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> Backend:
    """Build the ORAM a spec describes over ``config``.

    ``config`` must be an :class:`ORAMConfig` for the flat protocol and a
    :class:`HierarchyConfig` for the hierarchical one.  Pass either a
    ``seed`` (the common runner-driven case) or an explicit ``rng``.
    """
    rng = _resolve_rng(seed, rng)
    if spec.protocol == "flat":
        if isinstance(config, HierarchyConfig):
            raise ConfigurationError(
                "flat protocol takes an ORAMConfig; "
                "got a HierarchyConfig (use protocol='hierarchical')"
            )
        factory = storage_factory(spec)
        return PathORAM(
            config,
            storage=factory(config),
            eviction_policy=_eviction_policy(spec, config, rng),
            super_block_mapper=_super_block_mapper(spec, config),
            rng=rng,
            create_on_miss=spec.create_on_miss,
            record_path_trace=spec.record_path_trace,
        )
    if not isinstance(config, HierarchyConfig):
        raise ConfigurationError(
            "hierarchical protocol takes a HierarchyConfig; "
            "wrap the data ORAMConfig in one (or use protocol='flat')"
        )
    if spec.compressed_position_map and not config.compressed_position_map:
        config = replace(config, compressed_position_map=True)
    return HierarchicalPathORAM(
        config,
        rng=rng,
        storage_factory=storage_factory(spec),
        record_path_trace=spec.record_path_trace,
        livelock_limit=spec.livelock_limit,
        coalesce_position_ops=spec.coalesce_position_ops,
        plb_entries_per_level=spec.plb_entries_per_level,
        data_super_block_mapper=_super_block_mapper(spec, config.data_oram),
    )


def restore_oram(snapshot: dict) -> Backend:
    """Rebuild an ORAM from a versioned snapshot envelope.

    Dispatches on the envelope's ``kind`` to the matching class's
    :meth:`restore`, so callers holding an opaque snapshot (e.g. a
    checkpointed long run) do not need to know which protocol produced it.
    """
    from repro.core.snapshot import snapshot_kind

    kind = snapshot_kind(snapshot)
    if kind == PathORAM.SNAPSHOT_KIND:
        return PathORAM.restore(snapshot)
    if kind == HierarchicalPathORAM.SNAPSHOT_KIND:
        return HierarchicalPathORAM.restore(snapshot)
    from repro.errors import CheckpointError

    raise CheckpointError(f"no ORAM class registered for snapshot kind {kind!r}")


def build_interface(
    spec: OramSpec,
    config: ORAMConfig | HierarchyConfig,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> ORAMMemoryInterface:
    """Build the exclusive-ORAM front-end a secure processor talks to."""
    return ORAMMemoryInterface(build_oram(spec, config, seed=seed, rng=rng))


def build_memory_backend(
    spec: OramSpec,
    config: ORAMConfig | HierarchyConfig,
    return_data_cycles: float,
    finish_access_cycles: float,
    line_bytes: int = 128,
    seed: int | None = None,
    rng: random.Random | None = None,
):
    """Build the processor model's ORAM memory backend for a scenario.

    Imports locally to keep ``repro.backends`` importable without the
    processor subsystem.
    """
    from repro.processor.memory import ORAMBackend

    return ORAMBackend(
        build_interface(spec, config, seed=seed, rng=rng),
        return_data_cycles=return_data_cycles,
        finish_access_cycles=finish_access_cycles,
        line_bytes=line_bytes,
    )
