"""The backend/scenario registry: named storage stacks and protocol variants.

Every driver in the repository — the analysis sweeps, the processor model's
ORAM memory backend, the figure benchmarks and the examples — obtains its
ORAM through this module instead of wiring storages, eviction policies and
protocol classes together by hand.  A scenario is an :class:`OramSpec`:
a picklable, frozen description naming

* the **storage stack** (``"flat"`` — the array-backed fast functional
  back-end, ``"plain"`` — the list-of-lists reference, ``"encrypted"`` —
  randomized bucket encryption, ``"integrity"`` — encryption plus the
  mirrored authentication tree), and
* the **protocol variant** (``"flat"`` — a single :class:`PathORAM`,
  ``"hierarchical"`` — the recursive position-map chain of
  :class:`HierarchicalPathORAM`), and
* the **eviction policy** (``"default"``, ``"background"``, ``"none"``,
  ``"insecure"``).

Because specs are plain frozen dataclasses they travel through
:class:`repro.runner.ExperimentSpec` kwargs into process-pool workers, so a
parallel grid can build its backends inside each worker bit-identically to a
serial run.  New storage stacks can be registered with
:func:`register_storage` without touching any driver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Callable, Union

from repro.core.background_eviction import (
    BackgroundEviction,
    EvictionPolicy,
    InsecureBlockRemapEviction,
    NoEviction,
)
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.interface import ORAMMemoryInterface
from repro.core.path_oram import PathORAM
from repro.core.tree import (
    EncryptedTreeStorage,
    FlatTreeStorage,
    PlainTreeStorage,
    TreeStorage,
)
from repro.crypto.bucket_encryption import CounterBucketCipher, StrawmanBucketCipher
from repro.crypto.keys import ProcessorKey
from repro.errors import ConfigurationError
from repro.integrity.storage import IntegrityVerifiedStorage

#: A storage factory builds one tree storage for one ORAM of a scenario.
StorageFactory = Callable[[ORAMConfig], TreeStorage]

#: A storage builder turns a spec into a factory (called once per ORAM).
StorageBuilder = Callable[["OramSpec"], StorageFactory]

Backend = Union[PathORAM, HierarchicalPathORAM]

PROTOCOLS = ("flat", "hierarchical")
EVICTION_POLICIES = ("default", "background", "none", "insecure")

_STORAGE_BUILDERS: dict[str, StorageBuilder] = {}


def register_storage(name: str) -> Callable[[StorageBuilder], StorageBuilder]:
    """Register a storage stack under ``name`` (decorator).

    The builder receives the full :class:`OramSpec` and returns a factory
    mapping each ORAM's configuration to a fresh :class:`TreeStorage`.
    """

    def deco(builder: StorageBuilder) -> StorageBuilder:
        _STORAGE_BUILDERS[name] = builder
        return builder

    return deco


def storage_backends() -> tuple[str, ...]:
    """Names of every registered storage stack."""
    return tuple(sorted(_STORAGE_BUILDERS))


@dataclass(frozen=True)
class OramSpec:
    """One named ORAM scenario: protocol + storage stack + eviction policy.

    Parameters
    ----------
    protocol:
        ``"flat"`` (single Path ORAM) or ``"hierarchical"`` (recursive
        position-map chain).
    storage:
        A registered storage stack name; see :func:`storage_backends`.
    eviction:
        ``"default"`` leaves the choice to the protocol (background eviction
        for bounded stashes, none otherwise), ``"background"`` / ``"none"``
        / ``"insecure"`` force a policy.  Hierarchical ORAMs run eviction at
        the hierarchy level and accept only ``"default"``.
    key_seed:
        Seed for the processor key of the encrypted/integrity stacks (kept
        in the spec so pool workers derive identical ciphers).
    create_on_miss / record_path_trace / livelock_limit:
        Forwarded to the protocol object.
    """

    protocol: str = "flat"
    storage: str = "flat"
    eviction: str = "default"
    key_seed: int = 0
    create_on_miss: bool = True
    record_path_trace: bool = False
    livelock_limit: int = 100_000

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; expected one of {PROTOCOLS}"
            )
        if self.storage not in _STORAGE_BUILDERS:
            raise ConfigurationError(
                f"unknown storage stack {self.storage!r}; "
                f"registered: {storage_backends()}"
            )
        if self.eviction not in EVICTION_POLICIES:
            raise ConfigurationError(
                f"unknown eviction policy {self.eviction!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        if self.protocol == "hierarchical" and self.eviction != "default":
            raise ConfigurationError(
                "hierarchical ORAMs evict at the hierarchy level; "
                "use eviction='default'"
            )
        if self.protocol == "hierarchical" and not self.create_on_miss:
            raise ConfigurationError(
                "the recursive construction materialises missing blocks "
                "(position-map blocks must exist); create_on_miss=False is "
                "only meaningful for the flat protocol"
            )

    def with_updates(self, **kwargs: Any) -> "OramSpec":
        """Copy of this spec with the given fields replaced."""
        return replace(self, **kwargs)


# ----------------------------------------------------------------------
# Built-in storage stacks
# ----------------------------------------------------------------------
@register_storage("flat")
def _flat_storage(spec: OramSpec) -> StorageFactory:
    return FlatTreeStorage


@register_storage("plain")
def _plain_storage(spec: OramSpec) -> StorageFactory:
    return PlainTreeStorage


# NumPy is optional: when it is absent the ``numpy-flat`` stack is simply
# not registered (specs naming it fail with the usual unknown-storage
# error) and the pure-Python flat stack remains the default fast backend.
try:
    from repro.core.numpy_tree import NumpyFlatTreeStorage
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    NumpyFlatTreeStorage = None  # type: ignore[assignment, misc]
else:

    @register_storage("numpy-flat")
    def _numpy_flat_storage(spec: OramSpec) -> StorageFactory:
        return NumpyFlatTreeStorage


def _cipher_for(config: ORAMConfig, key: ProcessorKey):
    if config.encryption == "strawman":
        return StrawmanBucketCipher(key)
    return CounterBucketCipher(key)


@register_storage("encrypted")
def _encrypted_storage(spec: OramSpec) -> StorageFactory:
    key = ProcessorKey(seed=spec.key_seed)

    def factory(config: ORAMConfig) -> TreeStorage:
        return EncryptedTreeStorage(config, _cipher_for(config, key))

    return factory


@register_storage("integrity")
def _integrity_storage(spec: OramSpec) -> StorageFactory:
    key = ProcessorKey(seed=spec.key_seed)

    def factory(config: ORAMConfig) -> TreeStorage:
        return IntegrityVerifiedStorage(config, _cipher_for(config, key))

    return factory


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def storage_factory(spec: OramSpec) -> StorageFactory:
    """The storage factory for a spec's storage stack."""
    return _STORAGE_BUILDERS[spec.storage](spec)


def _eviction_policy(
    spec: OramSpec, config: ORAMConfig, rng: random.Random
) -> EvictionPolicy:
    if spec.eviction == "default":
        # The protocol's own default choice — background eviction for a
        # bounded stash, none otherwise — but honouring the spec's
        # livelock limit.
        if config.stash_capacity is None:
            return NoEviction()
        return BackgroundEviction(livelock_limit=spec.livelock_limit)
    if spec.eviction == "none":
        return NoEviction()
    if spec.eviction == "background":
        return BackgroundEviction(livelock_limit=spec.livelock_limit)
    return InsecureBlockRemapEviction(rng=rng, livelock_limit=spec.livelock_limit)


def _resolve_rng(seed: int | None, rng: random.Random | None) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed)


def build_oram(
    spec: OramSpec,
    config: ORAMConfig | HierarchyConfig,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> Backend:
    """Build the ORAM a spec describes over ``config``.

    ``config`` must be an :class:`ORAMConfig` for the flat protocol and a
    :class:`HierarchyConfig` for the hierarchical one.  Pass either a
    ``seed`` (the common runner-driven case) or an explicit ``rng``.
    """
    rng = _resolve_rng(seed, rng)
    if spec.protocol == "flat":
        if isinstance(config, HierarchyConfig):
            raise ConfigurationError(
                "flat protocol takes an ORAMConfig; "
                "got a HierarchyConfig (use protocol='hierarchical')"
            )
        factory = storage_factory(spec)
        return PathORAM(
            config,
            storage=factory(config),
            eviction_policy=_eviction_policy(spec, config, rng),
            rng=rng,
            create_on_miss=spec.create_on_miss,
            record_path_trace=spec.record_path_trace,
        )
    if not isinstance(config, HierarchyConfig):
        raise ConfigurationError(
            "hierarchical protocol takes a HierarchyConfig; "
            "wrap the data ORAMConfig in one (or use protocol='flat')"
        )
    return HierarchicalPathORAM(
        config,
        rng=rng,
        storage_factory=storage_factory(spec),
        record_path_trace=spec.record_path_trace,
        livelock_limit=spec.livelock_limit,
    )


def build_interface(
    spec: OramSpec,
    config: ORAMConfig | HierarchyConfig,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> ORAMMemoryInterface:
    """Build the exclusive-ORAM front-end a secure processor talks to."""
    return ORAMMemoryInterface(build_oram(spec, config, seed=seed, rng=rng))


def build_memory_backend(
    spec: OramSpec,
    config: ORAMConfig | HierarchyConfig,
    return_data_cycles: float,
    finish_access_cycles: float,
    line_bytes: int = 128,
    seed: int | None = None,
    rng: random.Random | None = None,
):
    """Build the processor model's ORAM memory backend for a scenario.

    Imports locally to keep ``repro.backends`` importable without the
    processor subsystem.
    """
    from repro.processor.memory import ORAMBackend

    return ORAMBackend(
        build_interface(spec, config, seed=seed, rng=rng),
        return_data_cycles=return_data_cycles,
        finish_access_cycles=finish_access_cycles,
        line_bytes=line_bytes,
    )
