"""Table 2 and Figure 12: concrete configurations on a secure processor.

Table 2 reports, for the baseline and optimised ORAM configurations, the
CPU-cycle latency to return data and to finish an access, plus the on-chip
stash and position-map storage.  Figure 12 replays SPEC-like traces through
the processor model with each configuration and reports execution time
normalised to an insecure DRAM-based processor.

Latencies are computed from the DRAM timing model at the paper's full-scale
geometry (8 GB-class ORAMs); the functional ORAM that tracks block movement,
dummy accesses and super-block prefetches runs at a scaled-down capacity
large enough to contain each benchmark's working set.  EXPERIMENTS.md
records both scales.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.backends import (
    OramSpec,
    build_memory_backend,
    build_oram,
    full_scale_spec,
)
from repro.core.config import HierarchyConfig
from repro.core.overhead import onchip_storage
from repro.core.presets import base_oram, dz3pb32, dz4pb32
from repro.dram.config import DRAMConfig
from repro.dram.oram_dram import ORAMDRAMSimulator, subtree_placement_factory
from repro.processor.config import ProcessorConfig, table1_processor
from repro.processor.memory import DRAMBackend
from repro.processor.simulator import ProcessorSimulator, SimulationResult
from repro.runner import (
    ExperimentRunner,
    ExperimentSpec,
    ProgressCallback,
    WindowPlan,
    derive_seed,
    run_windows,
)
from repro.workloads.spec_like import benchmark_trace

#: The scenario Figure 12's functional ORAMs run on: the recursive
#: construction over the fast functional storage.
FIGURE12_SPEC = OramSpec(protocol="hierarchical", storage="flat")

#: Decryption latency per ORAM in the hierarchy, in CPU cycles (the paper's
#: latency model is ``4 x DRAM cycles + H x decryption``; AES pipeline
#: latency of a few tens of cycles).
DEFAULT_DECRYPTION_LATENCY_CYCLES = 80


@dataclass(frozen=True)
class Table2Row:
    """One column of Table 2."""

    name: str
    num_orams: int
    return_data_cycles: float
    finish_access_cycles: float
    stash_kilobytes: float
    position_map_kilobytes: float


@dataclass(frozen=True)
class Figure12Config:
    """One ORAM configuration evaluated in Figure 12."""

    name: str
    hierarchy: HierarchyConfig
    super_block_size: int
    latency: Table2Row


def table2_row(name: str, hierarchy: HierarchyConfig, channels: int = 4,
               num_accesses: int = 10, seed: int = 0,
               decryption_latency: int = DEFAULT_DECRYPTION_LATENCY_CYCLES,
               cpu_per_dram_cycle: int = 4) -> Table2Row:
    """Compute one Table 2 column from the DRAM model and storage formulas."""
    simulator = ORAMDRAMSimulator(
        hierarchy, DRAMConfig(channels=channels), subtree_placement_factory,
        rng=random.Random(seed),
    )
    latency = simulator.measure(num_accesses)
    return_cpu, finish_cpu = latency.cpu_cycles(
        hierarchy.num_orams, cpu_per_dram_cycle=cpu_per_dram_cycle,
        decryption_latency_cycles=decryption_latency,
    )
    storage = onchip_storage(hierarchy)
    return Table2Row(
        name=name,
        num_orams=hierarchy.num_orams,
        return_data_cycles=return_cpu,
        finish_access_cycles=finish_cpu,
        stash_kilobytes=storage.stash_kilobytes,
        position_map_kilobytes=storage.position_map_kilobytes,
    )


def table2_rows(channels: int = 4, num_accesses: int = 10, seed: int = 0) -> list[Table2Row]:
    """The three Table 2 configurations at the paper's full scale."""
    configurations = {
        "baseORAM": base_oram(1.0),
        "DZ3Pb32": dz3pb32(1.0),
        "DZ4Pb32": dz4pb32(1.0),
    }
    return [
        table2_row(name, hierarchy, channels=channels, num_accesses=num_accesses, seed=seed)
        for name, hierarchy in configurations.items()
    ]


def figure12_configurations(functional_scale: float = 1.0 / 1024, channels: int = 4,
                            seed: int = 0) -> list[Figure12Config]:
    """The four ORAM configurations of Figure 12.

    ``functional_scale`` sizes the functional ORAM used for block movement;
    latencies always come from the full-scale geometry.
    """
    entries = [
        ("baseORAM", base_oram, 1),
        ("DZ3Pb32", dz3pb32, 1),
        ("DZ3Pb32+SB", dz3pb32, 2),
        ("DZ4Pb32+SB", dz4pb32, 2),
    ]
    configs = []
    for name, factory, super_block in entries:
        latency = table2_row(name.split("+")[0], factory(1.0), channels=channels, seed=seed)
        hierarchy = factory(functional_scale, super_block_size=super_block)
        configs.append(
            Figure12Config(
                name=name, hierarchy=hierarchy, super_block_size=super_block, latency=latency
            )
        )
    return configs


#: Warm-up memory operations per measured memory operation.  The warm-up
#: phase only touches the cache hierarchy (the memory back-end is skipped),
#: standing in for the paper's 1-billion-instruction fast-forward.
DEFAULT_WARMUP_RATIO = 3.0


def _warmup_count(num_memory_ops: int, warmup_operations: int | None) -> int:
    if warmup_operations is not None:
        return warmup_operations
    return int(num_memory_ops * DEFAULT_WARMUP_RATIO)


def run_dram_baseline(benchmark: str, num_memory_ops: int, seed: int = 0,
                      processor: ProcessorConfig | None = None,
                      channels: int = 4,
                      warmup_operations: int | None = None) -> SimulationResult:
    """Replay one benchmark on the insecure DRAM-backed processor.

    The trace comes from :func:`~repro.workloads.spec_like.benchmark_trace`,
    whose RNG is derived from ``seed`` and the trace identity — so the ORAM
    replays of the same benchmark see the identical reference stream, in
    serial runs and process-pool workers alike.
    """
    warmup = _warmup_count(num_memory_ops, warmup_operations)
    trace = benchmark_trace(benchmark, num_memory_ops + warmup, seed=seed)
    config = processor if processor is not None else table1_processor()
    backend = DRAMBackend(DRAMConfig(channels=channels), line_bytes=config.line_bytes)
    return ProcessorSimulator(config, backend).run(trace, warmup_operations=warmup)


def run_oram_configuration(benchmark: str, configuration: Figure12Config,
                           num_memory_ops: int, seed: int = 0,
                           processor: ProcessorConfig | None = None,
                           warmup_operations: int | None = None,
                           oram_spec: OramSpec = FIGURE12_SPEC) -> SimulationResult:
    """Replay one benchmark on the secure processor with one ORAM config.

    The trace is the same derived-seed stream the DRAM baseline replays;
    the ORAM backend comes from the registry (``oram_spec``), seeded per
    (benchmark, configuration) so grid points stay independent.
    """
    warmup = _warmup_count(num_memory_ops, warmup_operations)
    trace = benchmark_trace(benchmark, num_memory_ops + warmup, seed=seed)
    config = processor if processor is not None else table1_processor()
    backend = build_memory_backend(
        full_scale_spec(oram_spec, configuration.hierarchy),
        configuration.hierarchy,
        return_data_cycles=configuration.latency.return_data_cycles,
        finish_access_cycles=configuration.latency.finish_access_cycles,
        line_bytes=config.line_bytes,
        seed=derive_seed(seed, ("fig12-oram", benchmark, configuration.name)),
    )
    return ProcessorSimulator(config, backend).run(trace, warmup_operations=warmup)


@dataclass(frozen=True)
class TraceReplayResult:
    """ORAM-level replay of one benchmark trace (no cache model)."""

    benchmark: str
    configuration: str
    accesses: int
    found: int
    dummy_rounds: int

    @property
    def dummy_factor(self) -> float:
        """``(RA + DA) / RA`` of the replay."""
        if not self.accesses:
            return 1.0
        return (self.accesses + self.dummy_rounds) / self.accesses


def run_oram_trace_replay(benchmark: str, configuration: Figure12Config,
                          num_memory_ops: int, seed: int = 0,
                          line_bytes: int = 128,
                          oram_spec: OramSpec = FIGURE12_SPEC) -> TraceReplayResult:
    """Replay one benchmark's memory-op stream straight at the ORAM level.

    Every memory operation of the SPEC-like trace becomes one hierarchical
    ORAM access (the cache hierarchy is bypassed — this isolates the
    ORAM-side behaviour of the workload's address stream), consumed in one
    fused :meth:`~repro.core.hierarchical.HierarchicalPathORAM.access_many`
    call.  Line addresses fold into the data ORAM's block space exactly as
    the processor model's ORAM backend folds them.  Full-scale hierarchies
    (past :data:`~repro.backends.FULL_SCALE_SLOTS`) are routed onto the
    ``numpy-flat`` column stack when available.
    """
    trace = benchmark_trace(benchmark, num_memory_ops, seed=seed)
    hierarchy = configuration.hierarchy
    oram = build_oram(
        full_scale_spec(oram_spec, hierarchy),
        hierarchy,
        seed=derive_seed(seed, ("spec-replay", benchmark, configuration.name)),
    )
    working_set = hierarchy.data_oram.working_set_blocks
    addresses = [
        (record.address // line_bytes) % working_set + 1 for record in trace
    ]
    result = oram.access_many(addresses)
    return TraceReplayResult(
        benchmark=benchmark,
        configuration=configuration.name,
        accesses=result.accesses,
        found=result.found,
        dummy_rounds=oram.stats.dummy_accesses,
    )


@dataclass(frozen=True)
class SuperBlockReplayResult:
    """One (benchmark, super-block mode) ORAM-level SPEC replay."""

    benchmark: str
    mode: str
    group_size: int
    accesses: int
    found: int
    dummy_rounds: int
    merges: int
    splits: int
    hits: int

    @property
    def hit_ratio(self) -> float:
        """Dynamic-merging prefetch-win rate (see
        :class:`~repro.analysis.sweep.SuperBlockPoint.hit_ratio`)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


def run_super_block_trace_replay(benchmark: str, configuration: Figure12Config,
                                 mode: str, num_memory_ops: int, seed: int = 0,
                                 line_bytes: int = 128, group_size: int = 4,
                                 window: int = 512, merge_threshold: int = 2,
                                 split_threshold: int = 4,
                                 oram_spec: OramSpec = FIGURE12_SPEC
                                 ) -> SuperBlockReplayResult:
    """Replay one benchmark at the ORAM level under one super-block mode.

    The dynamic-vs-static-vs-off axis of the SPEC evaluation: the same
    derived-seed trace as :func:`run_oram_trace_replay`, with the
    configuration's data ORAM regrouped per ``mode`` (``off`` ungrouped,
    ``static`` at ``group_size``, ``dynamic`` with the runtime-merging
    policy knobs on the spec) and consumed through one fused
    :meth:`~repro.core.hierarchical.HierarchicalPathORAM.access_many`
    call.  Returns the replay counters plus the data ORAM's merge / split /
    hit statistics.
    """
    from dataclasses import replace as dataclass_replace

    from repro.analysis.sweep import super_block_variant

    hierarchy = configuration.hierarchy
    mode_spec, data_config = super_block_variant(
        oram_spec, hierarchy.data_oram, mode,
        group_size=group_size, window=window,
        merge_threshold=merge_threshold, split_threshold=split_threshold,
    )
    mode_hierarchy = dataclass_replace(hierarchy, data_oram=data_config)
    trace = benchmark_trace(benchmark, num_memory_ops, seed=seed)
    oram = build_oram(
        full_scale_spec(mode_spec, mode_hierarchy),
        mode_hierarchy,
        seed=derive_seed(seed, ("spec-superblock", benchmark, mode)),
    )
    working_set = mode_hierarchy.data_oram.working_set_blocks
    addresses = [
        (record.address // line_bytes) % working_set + 1 for record in trace
    ]
    result = oram.access_many(addresses)
    stats = oram.data_oram.stats
    return SuperBlockReplayResult(
        benchmark=benchmark,
        mode=mode,
        group_size=group_size,
        accesses=result.accesses,
        found=result.found,
        dummy_rounds=oram.stats.dummy_accesses,
        merges=stats.super_block_merges,
        splits=stats.super_block_splits,
        hits=stats.super_block_hits,
    )


def figure12_super_block_axis(benchmarks: list[str], num_memory_ops: int = 5_000,
                              modes: tuple[str, ...] | None = None,
                              functional_scale: float = 1.0 / 1024,
                              group_size: int = 4, window: int = 512,
                              merge_threshold: int = 2, split_threshold: int = 4,
                              seed: int = 0,
                              configuration: Figure12Config | None = None,
                              executor: str = "serial",
                              max_workers: int | None = None,
                              progress: ProgressCallback | None = None
                              ) -> dict[str, dict[str, SuperBlockReplayResult]]:
    """The super-block mode axis over a set of SPEC benchmarks.

    Every (benchmark, mode) replay is an independent runner experiment
    (``executor="process"`` is bit-identical to serial), so the whole axis
    parallelises like the Figure 12 grid it extends.  ``executor="fleet"``
    is accepted too: trace replays carry no fleet adapter, so they ride the
    fleet runner's process fallback unchanged.
    """
    from repro.analysis.sweep import SUPER_BLOCK_MODES

    if modes is None:
        modes = SUPER_BLOCK_MODES
    if configuration is None:
        configuration = figure12_configurations(
            functional_scale=functional_scale, seed=seed
        )[0]
    specs = [
        ExperimentSpec(
            key=("super-block-axis", benchmark, mode),
            fn=run_super_block_trace_replay,
            kwargs={
                "benchmark": benchmark,
                "configuration": configuration,
                "mode": mode,
                "num_memory_ops": num_memory_ops,
                "group_size": group_size,
                "window": window,
                "merge_threshold": merge_threshold,
                "split_threshold": split_threshold,
            },
            seed=seed,
        )
        for benchmark in benchmarks
        for mode in modes
    ]
    runner = ExperimentRunner(
        executor=executor, max_workers=max_workers, progress=progress
    )
    values = runner.run_values(specs)
    results: dict[str, dict[str, SuperBlockReplayResult]] = {}
    index = 0
    for benchmark in benchmarks:
        results[benchmark] = {}
        for mode in modes:
            results[benchmark][mode] = values[index]
            index += 1
    return results


@dataclass(frozen=True)
class PlbReplayResult:
    """One (benchmark, PLB capacity) ORAM-level SPEC replay."""

    benchmark: str
    entries_per_level: int
    compressed: bool
    num_orams: int
    accesses: int
    found: int
    pm_ops: int
    plb_hits: int
    plb_misses: int
    coalesced_ops: int

    @property
    def hit_rate(self) -> float:
        """PLB hits per lookup (0 when the buffer is off)."""
        lookups = self.plb_hits + self.plb_misses
        if not lookups:
            return 0.0
        return self.plb_hits / lookups

    @property
    def pm_ops_per_access(self) -> float:
        """Physical position-map path ops per logical access."""
        if not self.accesses:
            return 0.0
        return self.pm_ops / self.accesses

    @property
    def pm_ops_saved_per_access(self) -> float:
        """Position-map path ops the PLB skipped, per logical access
        (out of ``num_orams - 1`` chain levels)."""
        if not self.accesses:
            return 0.0
        return self.coalesced_ops / self.accesses


def run_plb_trace_replay(benchmark: str, configuration: Figure12Config,
                         entries_per_level: int, num_memory_ops: int,
                         seed: int = 0, line_bytes: int = 128,
                         compressed: bool = False,
                         oram_spec: OramSpec = FIGURE12_SPEC
                         ) -> PlbReplayResult:
    """Replay one benchmark at the ORAM level under one PLB capacity.

    The PosMap Lookaside Buffer axis of the SPEC evaluation: the same
    derived-seed trace as :func:`run_oram_trace_replay`, with the spec's
    ``plb_entries_per_level`` and ``compressed_position_map`` knobs set
    per point and the stream consumed through one fused
    :meth:`~repro.core.hierarchical.HierarchicalPathORAM.access_many`
    call.  The build seed deliberately excludes the capacity and layout
    knobs, so every capacity replays the identical address stream and
    deltas measure the cache, not trace noise.  Returns the replay
    counters plus the summed position-map chain statistics.
    """
    hierarchy = configuration.hierarchy
    point_spec = oram_spec.with_updates(
        plb_entries_per_level=entries_per_level,
        compressed_position_map=compressed,
    )
    trace = benchmark_trace(benchmark, num_memory_ops, seed=seed)
    oram = build_oram(
        full_scale_spec(point_spec, hierarchy),
        hierarchy,
        seed=derive_seed(seed, ("spec-plb", benchmark, configuration.name)),
    )
    working_set = hierarchy.data_oram.working_set_blocks
    addresses = [
        (record.address // line_bytes) % working_set + 1 for record in trace
    ]
    result = oram.access_many(addresses)
    pm_stats = [pm.stats for pm in oram.orams[1:]]
    return PlbReplayResult(
        benchmark=benchmark,
        entries_per_level=entries_per_level,
        compressed=compressed,
        num_orams=oram.num_orams,
        accesses=result.accesses,
        found=result.found,
        pm_ops=sum(stats.real_accesses for stats in pm_stats),
        plb_hits=sum(stats.plb_hits for stats in pm_stats),
        plb_misses=sum(stats.plb_misses for stats in pm_stats),
        coalesced_ops=sum(stats.coalesced_ops for stats in pm_stats),
    )


def figure12_plb_axis(benchmarks: list[str], num_memory_ops: int = 5_000,
                      capacities: tuple[int, ...] | None = None,
                      functional_scale: float = 1.0 / 1024,
                      compressed: bool = False, seed: int = 0,
                      configuration: Figure12Config | None = None,
                      executor: str = "serial",
                      max_workers: int | None = None,
                      progress: ProgressCallback | None = None
                      ) -> dict[str, dict[int, PlbReplayResult]]:
    """The PLB capacity axis over a set of SPEC benchmarks.

    Every (benchmark, capacity) replay is an independent runner
    experiment (``executor="process"`` is bit-identical to serial), so
    the whole axis parallelises like the Figure 12 grid it extends.
    ``executor="fleet"`` is accepted too: trace replays carry no fleet
    adapter, so they ride the fleet runner's process fallback unchanged.
    """
    from repro.analysis.sweep import PLB_CAPACITIES

    if capacities is None:
        capacities = PLB_CAPACITIES
    if configuration is None:
        configuration = figure12_configurations(
            functional_scale=functional_scale, seed=seed
        )[0]
    specs = [
        ExperimentSpec(
            key=("plb-axis", benchmark, compressed, capacity),
            fn=run_plb_trace_replay,
            kwargs={
                "benchmark": benchmark,
                "configuration": configuration,
                "entries_per_level": capacity,
                "num_memory_ops": num_memory_ops,
                "compressed": compressed,
            },
            seed=seed,
        )
        for benchmark in benchmarks
        for capacity in capacities
    ]
    runner = ExperimentRunner(
        executor=executor, max_workers=max_workers, progress=progress
    )
    values = runner.run_values(specs)
    results: dict[str, dict[int, PlbReplayResult]] = {}
    index = 0
    for benchmark in benchmarks:
        results[benchmark] = {}
        for capacity in capacities:
            results[benchmark][capacity] = values[index]
            index += 1
    return results


def run_oram_trace_replay_sharded(benchmark: str, configuration: Figure12Config,
                                  num_memory_ops: int, windows: int = 4,
                                  seed: int = 0, line_bytes: int = 128,
                                  oram_spec: OramSpec = FIGURE12_SPEC,
                                  executor: str = "serial",
                                  max_workers: int | None = None,
                                  progress: ProgressCallback | None = None
                                  ) -> TraceReplayResult:
    """One long ORAM-level trace replay sharded into runner windows.

    Splits the replay into independently seeded windows executed through
    the experiment runner (bit-identical between ``executor="serial"``,
    ``"process"``, and ``"fleet"``, which falls back to the pool for these
    adapter-less replay points) and merges the counters.
    """
    plan = WindowPlan.split(
        key=("spec-replay-shard", benchmark, configuration.name),
        base_seed=seed,
        total_accesses=num_memory_ops,
        windows=windows,
    )
    results = run_windows(
        run_oram_trace_replay,
        plan,
        kwargs={
            "benchmark": benchmark,
            "configuration": configuration,
            "line_bytes": line_bytes,
            "oram_spec": oram_spec,
        },
        accesses_kwarg="num_memory_ops",
        executor=executor,
        max_workers=max_workers,
        progress=progress,
    )
    return TraceReplayResult(
        benchmark=benchmark,
        configuration=configuration.name,
        accesses=sum(result.accesses for result in results),
        found=sum(result.found for result in results),
        dummy_rounds=sum(result.dummy_rounds for result in results),
    )


def figure12_slowdowns(benchmarks: list[str], num_memory_ops: int = 20_000,
                       functional_scale: float = 1.0 / 1024, seed: int = 0,
                       configurations: list[Figure12Config] | None = None,
                       warmup_operations: int | None = None,
                       executor: str = "serial", max_workers: int | None = None,
                       progress: ProgressCallback | None = None
                       ) -> dict[str, dict[str, float]]:
    """Slowdown of every ORAM configuration over DRAM, per benchmark.

    Every (benchmark, configuration) replay — including each benchmark's
    DRAM baseline — is an independent trace simulation dispatched through
    the experiment runner, so the whole Figure 12 grid parallelises under
    any executor (``"fleet"`` included — replays take its fallback path).
    """
    if configurations is None:
        configurations = figure12_configurations(functional_scale=functional_scale, seed=seed)
    specs = [
        ExperimentSpec(
            key=(benchmark, "dram-baseline"),
            fn=run_dram_baseline,
            kwargs={
                "benchmark": benchmark,
                "num_memory_ops": num_memory_ops,
                "warmup_operations": warmup_operations,
            },
            seed=seed,
        )
        for benchmark in benchmarks
    ] + [
        ExperimentSpec(
            key=(benchmark, configuration.name),
            fn=run_oram_configuration,
            kwargs={
                "benchmark": benchmark,
                "configuration": configuration,
                "num_memory_ops": num_memory_ops,
                "warmup_operations": warmup_operations,
            },
            seed=seed,
        )
        for benchmark in benchmarks
        for configuration in configurations
    ]
    runner = ExperimentRunner(
        executor=executor, max_workers=max_workers, progress=progress
    )
    values = runner.run_values(specs)
    baselines = dict(zip(benchmarks, values[: len(benchmarks)]))
    results: dict[str, dict[str, float]] = {benchmark: {} for benchmark in benchmarks}
    index = len(benchmarks)
    for benchmark in benchmarks:
        for configuration in configurations:
            results[benchmark][configuration.name] = values[index].slowdown_over(
                baselines[benchmark]
            )
            index += 1
    return results
