"""Plain-text table rendering used by benchmarks and examples."""

from __future__ import annotations

from typing import Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(headers) + " |",
             "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)
