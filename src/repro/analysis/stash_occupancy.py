"""Stash-occupancy distribution study (Figure 3, Section 2.5.1).

With an unbounded stash and no background eviction, the number of blocks
left in the stash after each access is recorded; the tail probability
``P(occupancy >= m)`` equals the failure probability of a stash of size
``m``.  The paper runs this for Z = 1..4 on a 4 GB ORAM with a 2 GB working
set; the driver here takes the working-set size as a parameter so the
benchmark can run a scaled-down version with the same shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.backends import OramSpec, build_oram
from repro.core.config import ORAMConfig
from repro.runner import (
    ExperimentRunner,
    ExperimentSpec,
    ProgressCallback,
    WindowPlan,
    derive_seed,
    run_windows,
)

#: The scenario of the Figure 3 study: a single fast-path ORAM, unbounded
#: stash, no background eviction.
OCCUPANCY_SPEC = OramSpec(protocol="flat", storage="flat", eviction="none")


@dataclass
class StashOccupancyResult:
    """Occupancy samples for one value of Z."""

    z: int
    samples: list[int]

    @property
    def max_occupancy(self) -> int:
        return max(self.samples) if self.samples else 0

    def tail_probability(self, threshold: int) -> float:
        """``P(occupancy >= threshold)`` over the sampled accesses."""
        if not self.samples:
            return 0.0
        exceeding = sum(1 for value in self.samples if value >= threshold)
        return exceeding / len(self.samples)

    def tail_curve(self, thresholds: list[int]) -> list[tuple[int, float]]:
        """The Figure 3 curve: ``(m, P(occupancy >= m))`` points."""
        return [(m, self.tail_probability(m)) for m in thresholds]


def run_stash_occupancy_experiment(
    z: int,
    working_set_blocks: int,
    num_accesses: int | None = None,
    utilization: float = 0.5,
    seed: int = 0,
) -> StashOccupancyResult:
    """Measure stash occupancy for one Z with an unbounded stash.

    ``num_accesses`` defaults to ``10 * N`` (the paper's setting) where N is
    the working-set size in blocks.
    """
    config = ORAMConfig(
        working_set_blocks=working_set_blocks,
        utilization=utilization,
        z=z,
        block_bytes=128,
        stash_capacity=None,
        name=f"fig3-z{z}",
    )
    oram = build_oram(OCCUPANCY_SPEC, config, rng=random.Random(seed))
    oram.stats.record_occupancy = True
    total = num_accesses if num_accesses is not None else 10 * working_set_blocks
    # The workload stream is its own derived RNG so the whole trace can be
    # pregenerated and consumed by one fused access_many call.
    trace_rng = random.Random(derive_seed(seed, ("fig3-trace", z)))
    randrange = trace_rng.randrange
    oram.access_many(
        [randrange(1, working_set_blocks + 1) for _ in range(total)]
    )
    return StashOccupancyResult(z=z, samples=list(oram.stats.stash_occupancy_samples))


def run_stash_occupancy_sweep(
    z_values: list[int],
    working_set_blocks: int,
    num_accesses: int | None = None,
    utilization: float = 0.5,
    seed: int = 0,
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> dict[int, StashOccupancyResult]:
    """Figure 3: the occupancy distribution for each Z.

    Each Z is an independent simulation (seeded ``seed + z`` as before), so
    ``executor="process"`` runs them in parallel with identical results.
    """
    specs = [
        ExperimentSpec(
            key=("fig3", z),
            fn=run_stash_occupancy_experiment,
            kwargs={
                "z": z,
                "working_set_blocks": working_set_blocks,
                "num_accesses": num_accesses,
                "utilization": utilization,
            },
            seed=seed + z,
        )
        for z in z_values
    ]
    runner = ExperimentRunner(
        executor=executor, max_workers=max_workers, progress=progress
    )
    results = runner.run_values(specs)
    return {z: result for z, result in zip(z_values, results)}


def run_stash_occupancy_sharded(
    z: int,
    working_set_blocks: int,
    num_accesses: int | None = None,
    windows: int = 4,
    utilization: float = 0.5,
    seed: int = 0,
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> StashOccupancyResult:
    """One huge Figure 3 experiment for a single Z, sharded into windows.

    The paper's ``10 N`` accesses for one Z are one long simulation; this
    splits them into ``windows`` independent simulations (each with its own
    derived seed) executed through the runner, and pools the occupancy
    samples.  The tail probabilities are estimated from the pooled samples;
    with ``executor="process"`` the result is bit-identical to the serial
    run of the same window plan.
    """
    total = num_accesses if num_accesses is not None else 10 * working_set_blocks
    plan = WindowPlan.split(
        key=("fig3-shard", z, working_set_blocks),
        base_seed=seed,
        total_accesses=total,
        windows=windows,
    )
    results = run_windows(
        run_stash_occupancy_experiment,
        plan,
        kwargs={
            "z": z,
            "working_set_blocks": working_set_blocks,
            "utilization": utilization,
        },
        executor=executor,
        max_workers=max_workers,
        progress=progress,
    )
    samples: list[int] = []
    for result in results:
        samples.extend(result.samples)
    return StashOccupancyResult(z=z, samples=samples)
