"""ORAM-on-DRAM latency study (Figure 11, Section 4.2).

For each hierarchical configuration and channel count, measures the latency
of a full ORAM access under the naive and subtree memory placements and
compares both against the theoretical peak-bandwidth latency.  The tree
*geometry* is evaluated at the paper's full scale (8 GB-class data ORAM) —
only addresses are simulated, so no tree contents need to exist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import HierarchyConfig
from repro.core.presets import dz3pb12, dz3pb32, dz4pb12, dz4pb32
from repro.dram.config import DRAMConfig
from repro.dram.oram_dram import (
    ORAMDRAMSimulator,
    naive_placement_factory,
    subtree_placement_factory,
)
from repro.runner import ExperimentRunner, ExperimentSpec, ProgressCallback


@dataclass(frozen=True)
class DRAMLatencyRow:
    """One group of bars in Figure 11."""

    name: str
    channels: int
    naive_cycles: float
    subtree_cycles: float
    theoretical_cycles: float

    @property
    def naive_overhead(self) -> float:
        """Naive latency relative to theoretical (1.0 = ideal)."""
        return self.naive_cycles / self.theoretical_cycles

    @property
    def subtree_overhead(self) -> float:
        """Subtree latency relative to theoretical (1.0 = ideal)."""
        return self.subtree_cycles / self.theoretical_cycles


def figure11_configs(scale: float = 1.0) -> dict[str, HierarchyConfig]:
    """The four best Figure 10 configurations, evaluated in Figure 11."""
    return {
        "DZ3Pb12": dz3pb12(scale),
        "DZ3Pb32": dz3pb32(scale),
        "DZ4Pb12": dz4pb12(scale),
        "DZ4Pb32": dz4pb32(scale),
    }


def measure_latency(hierarchy: HierarchyConfig, channels: int, num_accesses: int = 20,
                    seed: int = 0, name: str = "") -> DRAMLatencyRow:
    """Measure naive / subtree / theoretical latency for one configuration."""
    dram = DRAMConfig(channels=channels)
    naive = ORAMDRAMSimulator(
        hierarchy, dram, naive_placement_factory, rng=random.Random(seed)
    ).measure(num_accesses)
    subtree = ORAMDRAMSimulator(
        hierarchy, dram, subtree_placement_factory, rng=random.Random(seed)
    ).measure(num_accesses)
    return DRAMLatencyRow(
        name=name or hierarchy.name,
        channels=channels,
        naive_cycles=naive.finish_access_cycles,
        subtree_cycles=subtree.finish_access_cycles,
        theoretical_cycles=subtree.theoretical_cycles,
    )


def figure11_rows(scale: float = 1.0, channel_counts: tuple[int, ...] = (1, 2, 4),
                  num_accesses: int = 20, seed: int = 0,
                  executor: str = "serial", max_workers: int | None = None,
                  progress: ProgressCallback | None = None) -> list[DRAMLatencyRow]:
    """All Figure 11 bars: every configuration at every channel count.

    Each (configuration, channel-count) cell is an independent simulation,
    dispatched through the experiment runner; rows come back in grid order
    regardless of executor.
    """
    specs = [
        ExperimentSpec(
            key=(name, channels),
            fn=measure_latency,
            kwargs={
                "hierarchy": hierarchy,
                "channels": channels,
                "num_accesses": num_accesses,
                "name": name,
            },
            seed=seed,
        )
        for name, hierarchy in figure11_configs(scale).items()
        for channels in channel_counts
    ]
    runner = ExperimentRunner(
        executor=executor, max_workers=max_workers, progress=progress
    )
    return runner.run_values(specs)
