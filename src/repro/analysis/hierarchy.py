"""Hierarchical ORAM overhead breakdown (Figure 10, Section 4.1.5).

Figure 10 compares hierarchical configurations that differ in the data
ORAM's Z and the position-map ORAMs' block size, showing the per-ORAM
contribution to the total access overhead (Equation 2).  The breakdown is
analytic (it follows directly from each ORAM's geometry); an optional
measured dummy-access factor can be folded in from a functional simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.config import HierarchyConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.overhead import (
    hierarchy_overhead_breakdown,
    hierarchy_theoretical_access_overhead,
)
from repro.core.presets import base_oram, make_hierarchy


@dataclass(frozen=True)
class HierarchyOverheadRow:
    """One bar of Figure 10."""

    name: str
    num_orams: int
    per_oram_overhead: tuple[float, ...]
    total_overhead: float
    dummy_factor: float = 1.0

    @property
    def total_with_dummies(self) -> float:
        return self.total_overhead * self.dummy_factor


def figure10_configs(scale: float = 1.0,
                     position_map_block_sizes: tuple[int, ...] = (8, 12, 16, 32, 64, 128),
                     data_z_values: tuple[int, ...] = (3, 4)) -> dict[str, HierarchyConfig]:
    """The configurations evaluated in Figure 10, including the baseline."""
    configs: dict[str, HierarchyConfig] = {"baseORAM": base_oram(scale)}
    for data_z in data_z_values:
        for block_bytes in position_map_block_sizes:
            name = f"DZ{data_z}Pb{block_bytes}"
            configs[name] = make_hierarchy(
                scale=scale, data_z=data_z, position_map_block_bytes=block_bytes, name=name
            )
    return configs


def analytic_breakdown(name: str, hierarchy: HierarchyConfig,
                       dummy_factor: float = 1.0) -> HierarchyOverheadRow:
    """Per-ORAM overhead contributions for one configuration."""
    breakdown = tuple(hierarchy_overhead_breakdown(hierarchy))
    return HierarchyOverheadRow(
        name=name,
        num_orams=hierarchy.num_orams,
        per_oram_overhead=breakdown,
        total_overhead=hierarchy_theoretical_access_overhead(hierarchy),
        dummy_factor=dummy_factor,
    )


def measure_dummy_factor(hierarchy: HierarchyConfig, num_accesses: int, seed: int = 0) -> float:
    """Measure ``(RA + DA) / RA`` for a hierarchy with random accesses."""
    rng = random.Random(seed)
    oram = HierarchicalPathORAM(hierarchy, rng=rng)
    working_set = hierarchy.data_oram.working_set_blocks
    for _ in range(num_accesses):
        oram.access(rng.randrange(1, working_set + 1))
    stats = oram.stats
    if stats.real_accesses == 0:
        return 1.0
    return (stats.real_accesses + stats.dummy_accesses) / stats.real_accesses


def figure10_rows(scale: float = 1.0, measure_dummies: bool = False,
                  num_accesses: int = 2000, seed: int = 0) -> list[HierarchyOverheadRow]:
    """Build every Figure 10 bar, optionally with measured dummy factors."""
    rows = []
    for name, hierarchy in figure10_configs(scale).items():
        dummy_factor = 1.0
        if measure_dummies:
            dummy_factor = measure_dummy_factor(hierarchy, num_accesses, seed=seed)
        rows.append(analytic_breakdown(name, hierarchy, dummy_factor=dummy_factor))
    return rows
