"""Hierarchical ORAM overhead breakdown (Figure 10, Section 4.1.5).

Figure 10 compares hierarchical configurations that differ in the data
ORAM's Z and the position-map ORAMs' block size, showing the per-ORAM
contribution to the total access overhead (Equation 2).  The breakdown is
analytic (it follows directly from each ORAM's geometry); an optional
measured dummy-access factor can be folded in from a functional simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.backends import OramSpec, build_oram
from repro.core.config import HierarchyConfig
from repro.core.overhead import (
    hierarchy_overhead_breakdown,
    hierarchy_theoretical_access_overhead,
)
from repro.core.presets import base_oram, make_hierarchy
from repro.runner import ExperimentRunner, ExperimentSpec, ProgressCallback, derive_seed

#: The scenario measured dummy factors run on: the recursive construction
#: over the fast functional storage.
HIERARCHY_SPEC = OramSpec(protocol="hierarchical", storage="flat")


@dataclass(frozen=True)
class HierarchyOverheadRow:
    """One bar of Figure 10."""

    name: str
    num_orams: int
    per_oram_overhead: tuple[float, ...]
    total_overhead: float
    dummy_factor: float = 1.0

    @property
    def total_with_dummies(self) -> float:
        return self.total_overhead * self.dummy_factor


def figure10_configs(scale: float = 1.0,
                     position_map_block_sizes: tuple[int, ...] = (8, 12, 16, 32, 64, 128),
                     data_z_values: tuple[int, ...] = (3, 4)) -> dict[str, HierarchyConfig]:
    """The configurations evaluated in Figure 10, including the baseline."""
    configs: dict[str, HierarchyConfig] = {"baseORAM": base_oram(scale)}
    for data_z in data_z_values:
        for block_bytes in position_map_block_sizes:
            name = f"DZ{data_z}Pb{block_bytes}"
            configs[name] = make_hierarchy(
                scale=scale, data_z=data_z, position_map_block_bytes=block_bytes, name=name
            )
    return configs


def analytic_breakdown(name: str, hierarchy: HierarchyConfig,
                       dummy_factor: float = 1.0) -> HierarchyOverheadRow:
    """Per-ORAM overhead contributions for one configuration."""
    breakdown = tuple(hierarchy_overhead_breakdown(hierarchy))
    return HierarchyOverheadRow(
        name=name,
        num_orams=hierarchy.num_orams,
        per_oram_overhead=breakdown,
        total_overhead=hierarchy_theoretical_access_overhead(hierarchy),
        dummy_factor=dummy_factor,
    )


def measure_dummy_factor(hierarchy: HierarchyConfig, num_accesses: int, seed: int = 0,
                         spec: OramSpec = HIERARCHY_SPEC) -> float:
    """Measure ``(RA + DA) / RA`` for a hierarchy with random accesses.

    The trace comes from a derived workload RNG and replays through the
    hierarchy's fused :meth:`~repro.core.hierarchical.HierarchicalPathORAM.access_many`
    chain loop.
    """
    oram = build_oram(spec, hierarchy, rng=random.Random(seed))
    working_set = hierarchy.data_oram.working_set_blocks
    trace_rng = random.Random(derive_seed(seed, ("fig10-trace", hierarchy.name or "")))
    randrange = trace_rng.randrange
    oram.access_many([randrange(1, working_set + 1) for _ in range(num_accesses)])
    stats = oram.stats
    if stats.real_accesses == 0:
        return 1.0
    return (stats.real_accesses + stats.dummy_accesses) / stats.real_accesses


def measure_dummy_factors(configs: dict[str, HierarchyConfig], num_accesses: int,
                          seed: int = 0, spec: OramSpec = HIERARCHY_SPEC,
                          executor: str = "serial", max_workers: int | None = None,
                          progress: ProgressCallback | None = None) -> dict[str, float]:
    """Measure every configuration's dummy factor through the runner.

    Each named hierarchy is an independent seeded simulation, so
    ``executor="process"`` computes the grid in parallel bit-identically to
    serial mode.
    """
    specs = [
        ExperimentSpec(
            key=("fig10", name),
            fn=measure_dummy_factor,
            kwargs={"hierarchy": hierarchy, "num_accesses": num_accesses, "spec": spec},
            seed=seed,
        )
        for name, hierarchy in configs.items()
    ]
    runner = ExperimentRunner(executor=executor, max_workers=max_workers, progress=progress)
    return dict(zip(configs, runner.run_values(specs)))


def figure10_rows(scale: float = 1.0, measure_dummies: bool = False,
                  num_accesses: int = 2000, seed: int = 0,
                  executor: str = "serial", max_workers: int | None = None,
                  progress: ProgressCallback | None = None) -> list[HierarchyOverheadRow]:
    """Build every Figure 10 bar, optionally with measured dummy factors.

    The measured-dummy grid dispatches through the experiment runner, so the
    functional simulations parallelise like every other figure driver.
    """
    configs = figure10_configs(scale)
    factors = {name: 1.0 for name in configs}
    if measure_dummies:
        factors = measure_dummy_factors(
            configs, num_accesses, seed=seed,
            executor=executor, max_workers=max_workers, progress=progress,
        )
    return [
        analytic_breakdown(name, hierarchy, dummy_factor=factors[name])
        for name, hierarchy in configs.items()
    ]
