"""Design-space sweeps over stash size, utilization and capacity.

These drivers implement the experiments behind Figures 7, 8 and 9: random
accesses against a single (non-hierarchical) Path ORAM with background
eviction enabled, measuring the dummy-access ratio and the resulting access
overhead (Equation 1).  Configurations that the paper could not finish
(small Z at very high utilization) are detected by an abort threshold and
reported as unbounded rather than looping forever.

Every sweep builds its grid as :class:`~repro.runner.ExperimentSpec` points
and executes them through :class:`~repro.runner.ExperimentRunner`, so any
grid can run serially or on a process pool (``executor="process"``) with
bit-identical results — each point seeds its own ``random.Random``.
``executor="fleet"`` additionally batches shape-compatible points into one
stacked column tensor (:mod:`repro.core.numpy_fleet`): the fleet adapters
at the bottom of this module re-express the measurement loops as chunked
*programs* the batched engine drives, still bit-identical per point, with
unsupported points falling back to the pool automatically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.backends import OramSpec, build_oram, full_scale_spec, storage_backends
from repro.core.config import ORAMConfig
from repro.core.overhead import measured_access_overhead, theoretical_access_overhead
from repro.core.stats import AccessStats
from repro.errors import ReproError
from repro.runner import (
    ExperimentRunner,
    ExperimentSpec,
    FleetPlan,
    ProgressCallback,
    WindowPlan,
    derive_seed,
    register_fleet_adapter,
    run_windows,
)
from repro.runner.fleet import FLEET_MAX_LEVELS

#: The scenario the design-space sweeps run on: a single fast-path ORAM with
#: background eviction (a generous livelock cap so aborts fire first).
SWEEP_SPEC = OramSpec(
    protocol="flat", storage="flat", eviction="background", livelock_limit=200_000
)

#: Accesses to complete before the abort threshold is consulted, so a noisy
#: start-up phase cannot abort a configuration that would settle down.
ABORT_GRACE_ACCESSES = 100

#: Accesses per fused :meth:`~repro.core.path_oram.PathORAM.access_many`
#: chunk between abort-threshold checks.  The dummy/real ratio of a
#: configuration headed for an abort only grows, so checking at chunk
#: granularity reaches the same abort verdict while the trace replay runs
#: at trace-at-once speed.
ABORT_CHECK_CHUNK = 128


@dataclass(frozen=True)
class SweepPoint:
    """One measured configuration in a design-space sweep."""

    z: int
    utilization: float
    working_set_blocks: int
    stash_capacity: int
    levels: int
    dummy_ratio: float
    access_overhead: float
    theoretical_overhead: float
    aborted: bool = False
    abort_reason: str | None = None

    @property
    def label(self) -> str:
        return f"Z={self.z} util={self.utilization:.0%} C={self.stash_capacity}"


def _dummy_abort_reason(
    stats: AccessStats, accesses_done: int, abort_dummy_factor: float, phase: str
) -> str | None:
    """The shared abort check for the prefill and measurement loops.

    Returns a human-readable reason once the dummy accesses exceed
    ``abort_dummy_factor`` times the real accesses (after a grace period),
    mirroring the paper's observation that such configurations are too
    inefficient to finish.
    """
    if (
        accesses_done >= ABORT_GRACE_ACCESSES
        and stats.dummy_accesses > abort_dummy_factor * stats.real_accesses
    ):
        return (
            f"{phase}: {stats.dummy_accesses} dummy accesses for "
            f"{stats.real_accesses} real accesses exceeds factor {abort_dummy_factor:g}"
        )
    return None


def measure_dummy_ratio_window(
    config: ORAMConfig,
    num_accesses: int,
    seed: int = 0,
    abort_dummy_factor: float = 30.0,
    prefill: bool = True,
    spec: OramSpec = SWEEP_SPEC,
) -> tuple[AccessStats, str | None]:
    """One self-contained warmup+measure window of the dummy-ratio study.

    Builds a fresh ORAM from ``spec``, optionally prefills the working set
    (the warmup), replays ``num_accesses`` random accesses through the
    fused :meth:`~repro.core.path_oram.PathORAM.access_many` loop with
    abort checks at chunk granularity, and returns the raw measurement
    counters plus the abort reason (``None`` when the window completed).
    Both :func:`measure_dummy_ratio` (one window) and
    :func:`measure_dummy_ratio_sharded` (many windows, merged) are built
    on this.

    Full-scale grid points (trees past
    :data:`~repro.backends.FULL_SCALE_SLOTS`) are routed onto the
    ``numpy-flat`` column stack when available — bit-identical results,
    ndarray-sized metadata instead of millions of Block objects.
    """
    oram = build_oram(full_scale_spec(spec, config), config, rng=random.Random(seed))
    # The workload stream is its own derived RNG: the trace can then be
    # pregenerated and replayed through the fused access_many loop without
    # perturbing the ORAM's leaf-draw stream.
    trace_rng = random.Random(derive_seed(seed, ("sweep-trace", config.name or "")))
    working_set = config.working_set_blocks
    abort_reason: str | None = None
    access_many = oram.access_many
    try:
        if prefill:
            done = 0
            while done < working_set and abort_reason is None:
                chunk_end = min(done + ABORT_CHECK_CHUNK, working_set)
                access_many(range(done + 1, chunk_end + 1))
                done = chunk_end
                abort_reason = _dummy_abort_reason(
                    oram.stats, done, abort_dummy_factor, "prefill"
                )
            oram.stats.reset()
        if abort_reason is None:
            randrange = trace_rng.randrange
            done = 0
            while done < num_accesses and abort_reason is None:
                chunk = min(ABORT_CHECK_CHUNK, num_accesses - done)
                access_many([randrange(1, working_set + 1) for _ in range(chunk)])
                done += chunk
                abort_reason = _dummy_abort_reason(
                    oram.stats, done, abort_dummy_factor, "measurement"
                )
    except ReproError as exc:
        abort_reason = f"eviction livelock: {exc}"

    return oram.stats, abort_reason


def _sweep_point(
    config: ORAMConfig, stats: AccessStats, abort_reason: str | None
) -> SweepPoint:
    """Fold measurement counters into the sweep's result record."""
    aborted = abort_reason is not None
    dummy_ratio = stats.dummy_ratio if not aborted else math.inf
    overhead = (
        measured_access_overhead(config, stats) if not aborted else math.inf
    )
    return SweepPoint(
        z=config.z,
        utilization=config.utilization,
        working_set_blocks=config.working_set_blocks,
        stash_capacity=config.stash_capacity or 0,
        levels=config.levels,
        dummy_ratio=dummy_ratio,
        access_overhead=overhead,
        theoretical_overhead=theoretical_access_overhead(config),
        aborted=aborted,
        abort_reason=abort_reason,
    )


def measure_dummy_ratio(
    config: ORAMConfig,
    num_accesses: int,
    seed: int = 0,
    abort_dummy_factor: float = 30.0,
    prefill: bool = True,
    spec: OramSpec = SWEEP_SPEC,
) -> SweepPoint:
    """Run random accesses and measure the dummy/real ratio (Equation 1).

    When ``prefill`` is set (the default), every working-set address is
    accessed once first so the ORAM holds its nominal utilization before
    measurement begins — the paper's experiments likewise measure a full
    ORAM (they run ``10 N`` accesses).  The run aborts (``aborted`` is set
    and ``abort_reason`` says why) once the dummy-access count exceeds
    ``abort_dummy_factor`` times the real accesses issued so far.  The
    backend stack comes from the registry ``spec`` (storage variants sweep
    identically thanks to the differential backend guarantees), and the
    trace replays through the fused ``access_many`` loop.
    """
    stats, abort_reason = measure_dummy_ratio_window(
        config,
        num_accesses,
        seed=seed,
        abort_dummy_factor=abort_dummy_factor,
        prefill=prefill,
        spec=spec,
    )
    return _sweep_point(config, stats, abort_reason)


def measure_dummy_ratio_sharded(
    config: ORAMConfig,
    num_accesses: int,
    windows: int = 4,
    seed: int = 0,
    abort_dummy_factor: float = 30.0,
    prefill: bool = True,
    spec: OramSpec = SWEEP_SPEC,
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> SweepPoint:
    """One huge dummy-ratio experiment sharded into parallel windows.

    ``num_accesses`` is split into ``windows`` independently warmed-up
    measure windows (:class:`~repro.runner.WindowPlan`), each seeded by
    window index through the runner's ``derive_seed``; with
    ``executor="process"`` the windows execute across pool workers and the
    merged result is bit-identical to running the same plan serially.  The
    point's ratios come from the summed per-window counters (batch means);
    a window that aborts marks the merged point aborted.
    """
    plan = WindowPlan.split(
        key=("sweep-shard", config.name or "", config.z, config.stash_capacity),
        base_seed=seed,
        total_accesses=num_accesses,
        windows=windows,
    )
    results = run_windows(
        measure_dummy_ratio_window,
        plan,
        kwargs={
            "config": config,
            "abort_dummy_factor": abort_dummy_factor,
            "prefill": prefill,
            "spec": spec,
        },
        executor=executor,
        max_workers=max_workers,
        progress=progress,
    )
    merged = AccessStats()
    abort_reason: str | None = None
    for stats, reason in results:
        merged.merge(stats)
        if abort_reason is None and reason is not None:
            abort_reason = reason
    return _sweep_point(config, merged, abort_reason)


def run_sweep(
    configs: list[ORAMConfig],
    num_accesses: int,
    seed: int = 0,
    abort_dummy_factor: float = 30.0,
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
    spec: OramSpec = SWEEP_SPEC,
) -> list[SweepPoint]:
    """Measure every configuration through the experiment runner.

    Points are returned in ``configs`` order; with ``executor="process"``
    they are computed in parallel, bit-identically to serial mode (each
    point is an independent, self-seeded simulation whose backend is built
    from the picklable registry ``spec`` inside the worker).
    """
    specs = [
        ExperimentSpec(
            key=(config.name or index, config.z, config.stash_capacity),
            fn=measure_dummy_ratio,
            kwargs={
                "config": config,
                "num_accesses": num_accesses,
                "abort_dummy_factor": abort_dummy_factor,
                "spec": spec,
            },
            seed=seed,
        )
        for index, config in enumerate(configs)
    ]
    runner = ExperimentRunner(
        executor=executor, max_workers=max_workers, progress=progress
    )
    return runner.run_values(specs)


#: The super-block sweep axis: no merging, the paper's static scheme, and
#: the runtime merging the paper left as future work.
SUPER_BLOCK_MODES = ("off", "static", "dynamic")


@dataclass(frozen=True)
class SuperBlockPoint:
    """One (trace kind, super-block mode) point of the merging sweep."""

    trace_kind: str
    mode: str
    group_size: int
    accesses: int
    dummy_ratio: float
    merges: int
    splits: int
    hits: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses that found their block co-resident with a
        multi-member group (the prefetch-win rate; 0 for off/static —
        static groups are always co-resident by construction, so the
        counter only tracks the dynamic scheme's convergence)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses


def super_block_variant(
    spec: OramSpec,
    config: ORAMConfig,
    mode: str,
    group_size: int = 4,
    window: int = 512,
    merge_threshold: int = 2,
    split_threshold: int = 4,
) -> tuple[OramSpec, ORAMConfig]:
    """The (spec, config) pair realising one super-block mode.

    ``off`` clears grouping entirely, ``static`` bakes ``group_size`` into
    the configuration (the paper's Section 3.2 scheme), and ``dynamic``
    keeps the configuration ungrouped and turns on the runtime merging
    policy knobs on the spec.
    """
    if mode == "off":
        return (
            spec.with_updates(dynamic_super_blocks=False),
            config.with_updates(super_block_size=1),
        )
    if mode == "static":
        return (
            spec.with_updates(dynamic_super_blocks=False),
            config.with_updates(super_block_size=group_size),
        )
    if mode == "dynamic":
        return (
            spec.with_updates(
                dynamic_super_blocks=True,
                super_block_max_size=group_size,
                super_block_window=window,
                super_block_merge_threshold=merge_threshold,
                super_block_split_threshold=split_threshold,
            ),
            config.with_updates(super_block_size=1),
        )
    raise ReproError(
        f"unknown super-block mode {mode!r}; expected one of {SUPER_BLOCK_MODES}"
    )


def measure_super_block_mode(
    config: ORAMConfig,
    mode: str,
    num_accesses: int,
    seed: int = 0,
    trace_kind: str = "hotspot",
    group_size: int = 4,
    window: int = 512,
    merge_threshold: int = 2,
    split_threshold: int = 4,
    spec: OramSpec = SWEEP_SPEC,
    access_bytes: int = 8,
) -> SuperBlockPoint:
    """Replay one synthetic trace under one super-block mode.

    The trace comes from the named
    :mod:`~repro.workloads.synthetic` generator (derived-seed, so pool
    workers regenerate it identically), folds into the ORAM's block space,
    and replays through one fused
    :meth:`~repro.core.path_oram.PathORAM.access_many` call.
    """
    from repro.workloads.synthetic import synthetic_trace

    mode_spec, mode_config = super_block_variant(
        spec, config, mode,
        group_size=group_size, window=window,
        merge_threshold=merge_threshold, split_threshold=split_threshold,
    )
    oram = build_oram(mode_spec, mode_config, rng=random.Random(seed))
    working_set = mode_config.working_set_blocks
    # The trace seed deliberately excludes the mode: every mode of a sweep
    # replays the identical address stream, so mode deltas measure the
    # policy, not trace noise.
    trace = synthetic_trace(
        trace_kind,
        num_accesses,
        working_set * access_bytes,
        seed=derive_seed(seed, ("super-block-sweep", trace_kind)),
    )
    addresses = [
        (record.address // access_bytes) % working_set + 1 for record in trace
    ]
    oram.access_many(addresses)
    stats = oram.stats
    return SuperBlockPoint(
        trace_kind=trace_kind,
        mode=mode,
        group_size=group_size,
        accesses=stats.real_accesses,
        dummy_ratio=stats.dummy_ratio,
        merges=stats.super_block_merges,
        splits=stats.super_block_splits,
        hits=stats.super_block_hits,
    )


def sweep_super_block_modes(
    config: ORAMConfig,
    num_accesses: int,
    trace_kinds: tuple[str, ...] = ("sequential", "hotspot", "pointer_chase"),
    modes: tuple[str, ...] = SUPER_BLOCK_MODES,
    seed: int = 0,
    group_size: int = 4,
    window: int = 512,
    merge_threshold: int = 2,
    split_threshold: int = 4,
    spec: OramSpec = SWEEP_SPEC,
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> list[SuperBlockPoint]:
    """The dynamic-vs-static-vs-off axis over a grid of synthetic traces.

    Points come back in ``(trace_kind, mode)`` grid order, computed through
    the experiment runner (``executor="process"`` is bit-identical to
    serial — every point is an independent, self-seeded simulation built
    from a picklable spec).
    """
    specs = [
        ExperimentSpec(
            key=("super-block", trace_kind, mode),
            fn=measure_super_block_mode,
            kwargs={
                "config": config,
                "mode": mode,
                "num_accesses": num_accesses,
                "trace_kind": trace_kind,
                "group_size": group_size,
                "window": window,
                "merge_threshold": merge_threshold,
                "split_threshold": split_threshold,
                "spec": spec,
            },
            seed=seed,
        )
        for trace_kind in trace_kinds
        for mode in modes
    ]
    runner = ExperimentRunner(
        executor=executor, max_workers=max_workers, progress=progress
    )
    return runner.run_values(specs)


#: The PLB sweep axis: PosMap Lookaside Buffer capacities in position-map
#: blocks per chain level.  0 is the uncached baseline and 1 reproduces the
#: PR 4 single-op memo, so the axis spans "nothing" to "small real cache".
PLB_CAPACITIES = (0, 1, 2, 4, 8, 16)

#: The scenario the PLB sweep runs on: the recursive chain on the fast
#: functional stack (the PLB only engages on fused position-map levels).
PLB_SPEC = OramSpec(protocol="hierarchical", storage="flat")


@dataclass(frozen=True)
class PlbPoint:
    """One (trace kind, PLB capacity) point of the lookaside sweep."""

    trace_kind: str
    entries_per_level: int
    compressed: bool
    num_orams: int
    accesses: int
    pm_ops: int
    plb_hits: int
    plb_misses: int
    coalesced_ops: int

    @property
    def hit_rate(self) -> float:
        """PLB hits per lookup (0 when the buffer is off)."""
        lookups = self.plb_hits + self.plb_misses
        if not lookups:
            return 0.0
        return self.plb_hits / lookups

    @property
    def pm_ops_per_access(self) -> float:
        """Physical position-map path ops per logical access."""
        if not self.accesses:
            return 0.0
        return self.pm_ops / self.accesses

    @property
    def pm_ops_saved_per_access(self) -> float:
        """Position-map path ops the PLB skipped, per logical access
        (out of ``num_orams - 1`` chain levels)."""
        if not self.accesses:
            return 0.0
        return self.coalesced_ops / self.accesses


def measure_plb_point(
    hierarchy,
    entries_per_level: int,
    num_accesses: int,
    seed: int = 0,
    trace_kind: str = "pointer_chase",
    compressed: bool = False,
    spec: OramSpec = PLB_SPEC,
    access_bytes: int = 8,
) -> PlbPoint:
    """Replay one synthetic trace through the chain at one PLB capacity.

    The trace comes from the named :mod:`~repro.workloads.synthetic`
    generator and — like the super-block sweep — its seed deliberately
    excludes the capacity and layout knobs: every point of a sweep replays
    the identical address stream, so deltas measure the cache, not trace
    noise.  Logical results are independent of the capacity (the PLB only
    shrinks the physical op sequence); the returned counters quantify the
    shrinkage.
    """
    from repro.workloads.synthetic import synthetic_trace

    point_spec = spec.with_updates(
        plb_entries_per_level=entries_per_level,
        compressed_position_map=compressed,
    )
    oram = build_oram(point_spec, hierarchy, rng=random.Random(seed))
    working_set = hierarchy.data_oram.working_set_blocks
    trace = synthetic_trace(
        trace_kind,
        num_accesses,
        working_set * access_bytes,
        seed=derive_seed(seed, ("plb-sweep", trace_kind)),
    )
    addresses = [
        (record.address // access_bytes) % working_set + 1 for record in trace
    ]
    oram.access_many(addresses)
    pm_stats = [pm.stats for pm in oram.orams[1:]]
    return PlbPoint(
        trace_kind=trace_kind,
        entries_per_level=entries_per_level,
        compressed=compressed,
        num_orams=oram.num_orams,
        accesses=oram.stats.real_accesses,
        pm_ops=sum(stats.real_accesses for stats in pm_stats),
        plb_hits=sum(stats.plb_hits for stats in pm_stats),
        plb_misses=sum(stats.plb_misses for stats in pm_stats),
        coalesced_ops=sum(stats.coalesced_ops for stats in pm_stats),
    )


def sweep_plb_capacities(
    hierarchy,
    num_accesses: int,
    trace_kinds: tuple[str, ...] = ("sequential", "pointer_chase"),
    capacities: tuple[int, ...] = PLB_CAPACITIES,
    compressed: tuple[bool, ...] = (False,),
    seed: int = 0,
    spec: OramSpec = PLB_SPEC,
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> list[PlbPoint]:
    """Hit rate and PM-ops-saved versus PLB capacity over synthetic traces.

    Points come back in ``(trace_kind, compressed, capacity)`` grid order,
    computed through the experiment runner — ``executor="process"`` is
    bit-identical to serial, and ``executor="fleet"`` rides the transparent
    process fallback (hierarchical specs are not fleet-eligible), so all
    three executors agree.
    """
    specs = [
        ExperimentSpec(
            key=("plb", trace_kind, layout, capacity),
            fn=measure_plb_point,
            kwargs={
                "hierarchy": hierarchy,
                "entries_per_level": capacity,
                "num_accesses": num_accesses,
                "trace_kind": trace_kind,
                "compressed": layout,
                "spec": spec,
            },
            seed=seed,
        )
        for trace_kind in trace_kinds
        for layout in compressed
        for capacity in capacities
    ]
    runner = ExperimentRunner(
        executor=executor, max_workers=max_workers, progress=progress
    )
    return runner.run_values(specs)


# ----------------------------------------------------------------------
# Fleet adapters: the measurement loops as batched-engine programs
# ----------------------------------------------------------------------
# The fleet executor (repro.runner.fleet) asks these planners whether a
# grid point can ride in a stacked-tensor batch.  A plan re-expresses the
# corresponding serial measurement as (build, program, finalize): the
# program generator yields exactly the address chunks the serial loop
# feeds access_many and keeps the between-chunk logic (abort checks,
# stats.reset()) in exactly the serial order, so the fleet run of a point
# is bit-identical to its serial run.  Planners return None to decline —
# the point then falls back to the serial/process executor.


def _fleet_supported(oram_spec: OramSpec, config: object) -> bool:
    """Whether one (spec, config) sweep point can join a fleet batch."""
    return (
        oram_spec.fleet_eligible
        and "numpy-flat" in storage_backends()
        and isinstance(config, ORAMConfig)
        and config.super_block_size == 1
        and config.levels <= FLEET_MAX_LEVELS
    )


def _fleet_build(oram_spec: OramSpec, config: ORAMConfig, seed: int):
    """Build a sweep point's ORAM on the stackable column storage.

    The serial path may leave small trees on the list-backed ``"flat"``
    stack (see :func:`~repro.backends.full_scale_spec`); the fleet needs
    the columns, so it always routes onto ``numpy-flat`` — a substitution
    the differential storage suites pin as bit-identical.  The RNG is
    seeded exactly as the serial driver seeds it.
    """
    return build_oram(
        oram_spec.with_updates(storage="numpy-flat", columnar_min_slots=0),
        config,
        rng=random.Random(seed),
    )


def _dummy_ratio_program(
    oram,
    config: ORAMConfig,
    num_accesses: int,
    abort_dummy_factor: float,
    prefill: bool,
    seed: int,
):
    """:func:`measure_dummy_ratio_window`'s loop as a fleet program.

    Statement for statement the serial window: prefill chunks, the reset
    *after* the prefill loop (it runs even when prefill aborts), derived
    trace RNG drawn chunk by chunk, abort checks at chunk granularity, and
    the livelock ``ReproError`` folded into the abort reason — the engine
    throws it in at the yield, where the serial ``access_many`` call would
    have raised it.
    """
    trace_rng = random.Random(derive_seed(seed, ("sweep-trace", config.name or "")))
    working_set = config.working_set_blocks
    abort_reason: str | None = None
    try:
        if prefill:
            done = 0
            while done < working_set and abort_reason is None:
                chunk_end = min(done + ABORT_CHECK_CHUNK, working_set)
                yield list(range(done + 1, chunk_end + 1))
                done = chunk_end
                abort_reason = _dummy_abort_reason(
                    oram.stats, done, abort_dummy_factor, "prefill"
                )
            oram.stats.reset()
        if abort_reason is None:
            randrange = trace_rng.randrange
            done = 0
            while done < num_accesses and abort_reason is None:
                chunk = min(ABORT_CHECK_CHUNK, num_accesses - done)
                yield [randrange(1, working_set + 1) for _ in range(chunk)]
                done += chunk
                abort_reason = _dummy_abort_reason(
                    oram.stats, done, abort_dummy_factor, "measurement"
                )
    except ReproError as exc:
        abort_reason = f"eviction livelock: {exc}"
    return abort_reason


def _dummy_ratio_plan(spec: ExperimentSpec, window: bool) -> FleetPlan | None:
    kwargs = dict(spec.kwargs)
    config = kwargs.get("config")
    num_accesses = kwargs.get("num_accesses")
    oram_spec = kwargs.get("spec", SWEEP_SPEC)
    abort_dummy_factor = kwargs.get("abort_dummy_factor", 30.0)
    prefill = kwargs.get("prefill", True)
    seed = spec.seed if spec.seed is not None else kwargs.get("seed", 0)
    if num_accesses is None or not _fleet_supported(oram_spec, config):
        return None

    def build():
        return _fleet_build(oram_spec, config, seed)

    def program(oram):
        return _dummy_ratio_program(
            oram, config, num_accesses, abort_dummy_factor, prefill, seed
        )

    def finalize(oram, abort_reason):
        if window:
            return oram.stats, abort_reason
        return _sweep_point(config, oram.stats, abort_reason)

    return FleetPlan(
        shape=(config.levels, config.z),
        build=build,
        program=program,
        finalize=finalize,
    )


@register_fleet_adapter(measure_dummy_ratio)
def _plan_measure_dummy_ratio(spec: ExperimentSpec) -> FleetPlan | None:
    return _dummy_ratio_plan(spec, window=False)


@register_fleet_adapter(measure_dummy_ratio_window)
def _plan_measure_dummy_ratio_window(spec: ExperimentSpec) -> FleetPlan | None:
    return _dummy_ratio_plan(spec, window=True)


def _super_block_program(
    oram, working_set: int, num_accesses: int, trace_kind: str,
    access_bytes: int, seed: int,
):
    """:func:`measure_super_block_mode`'s replay as a fleet program.

    The trace is generated lazily at the first pump (same derived seed and
    address folding as the serial driver) and replayed as one chunk, the
    fleet analogue of the single fused ``access_many`` call.  A livelock
    ``ReproError`` is *not* caught — serial execution lets it escape into
    the result envelope, and so does the program.
    """
    from repro.workloads.synthetic import synthetic_trace

    trace = synthetic_trace(
        trace_kind,
        num_accesses,
        working_set * access_bytes,
        seed=derive_seed(seed, ("super-block-sweep", trace_kind)),
    )
    yield [
        (record.address // access_bytes) % working_set + 1 for record in trace
    ]
    return None


@register_fleet_adapter(measure_super_block_mode)
def _plan_measure_super_block_mode(spec: ExperimentSpec) -> FleetPlan | None:
    kwargs = dict(spec.kwargs)
    config = kwargs.get("config")
    mode = kwargs.get("mode")
    num_accesses = kwargs.get("num_accesses")
    trace_kind = kwargs.get("trace_kind", "hotspot")
    group_size = kwargs.get("group_size", 4)
    window = kwargs.get("window", 512)
    merge_threshold = kwargs.get("merge_threshold", 2)
    split_threshold = kwargs.get("split_threshold", 4)
    oram_spec = kwargs.get("spec", SWEEP_SPEC)
    access_bytes = kwargs.get("access_bytes", 8)
    seed = spec.seed if spec.seed is not None else kwargs.get("seed", 0)
    # Only the ungrouped baseline batches: static grouping gives the ORAM
    # multi-member groups (the column fast path declines them) and the
    # dynamic mapper needs the per-access machinery, so both run serially.
    if mode != "off" or num_accesses is None or not isinstance(config, ORAMConfig):
        return None
    mode_spec, mode_config = super_block_variant(
        oram_spec, config, mode,
        group_size=group_size, window=window,
        merge_threshold=merge_threshold, split_threshold=split_threshold,
    )
    if not _fleet_supported(mode_spec, mode_config):
        return None
    working_set = mode_config.working_set_blocks

    def build():
        return _fleet_build(mode_spec, mode_config, seed)

    def program(oram):
        return _super_block_program(
            oram, working_set, num_accesses, trace_kind, access_bytes, seed
        )

    def finalize(oram, abort_reason):
        stats = oram.stats
        return SuperBlockPoint(
            trace_kind=trace_kind,
            mode=mode,
            group_size=group_size,
            accesses=stats.real_accesses,
            dummy_ratio=stats.dummy_ratio,
            merges=stats.super_block_merges,
            splits=stats.super_block_splits,
            hits=stats.super_block_hits,
        )

    return FleetPlan(
        shape=(mode_config.levels, mode_config.z),
        build=build,
        program=program,
        finalize=finalize,
    )


def sweep_stash_size(
    z_values: list[int],
    stash_sizes: list[int],
    working_set_blocks: int,
    num_accesses: int,
    utilization: float = 0.5,
    seed: int = 0,
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> list[SweepPoint]:
    """Figure 7: dummy/real ratio versus stash size for each Z."""
    configs = [
        ORAMConfig(
            working_set_blocks=working_set_blocks,
            utilization=utilization,
            z=z,
            block_bytes=128,
            stash_capacity=stash,
            name=f"fig7-z{z}-c{stash}",
        )
        for z in z_values
        for stash in stash_sizes
    ]
    return run_sweep(
        configs, num_accesses, seed=seed,
        executor=executor, max_workers=max_workers, progress=progress,
    )


def utilization_config(
    z: int,
    utilization: float,
    capacity_blocks: int,
    stash_capacity: int = 200,
    block_bytes: int = 128,
    stash_slack: int | None = None,
) -> ORAMConfig:
    """Build a configuration whose *effective* utilization equals the target.

    The ORAM tree is a perfect binary tree, so its capacity is quantised to
    ``Z (2^(L+1) - 1)`` blocks.  The paper sweeps utilization by growing the
    ORAM around a fixed working set; with quantised capacities the requested
    utilization can land far from the effective one, so this helper instead
    fixes the tree (the smallest one holding ``capacity_blocks``) and sizes
    the working set to hit the requested utilization exactly.  EXPERIMENTS.md
    discusses the substitution.
    """
    levels = 0
    while z * ((1 << (levels + 1)) - 1) < capacity_blocks:
        levels += 1
    capacity = z * ((1 << (levels + 1)) - 1)
    working_set = max(1, int(round(utilization * capacity)))
    if stash_slack is not None:
        # Scale the stash with the tree: the paper's absolute C = 200 is
        # sized for 25-level trees; a scaled-down tree needs a
        # proportionally tighter stash for eviction pressure to appear
        # within a short run (see EXPERIMENTS.md).
        stash_capacity = z * (levels + 1) + stash_slack
    return ORAMConfig(
        working_set_blocks=working_set,
        utilization=working_set / capacity,
        z=z,
        block_bytes=block_bytes,
        stash_capacity=stash_capacity,
        name=f"fig8-z{z}-u{utilization:.2f}",
    )


def sweep_utilization(
    z_values: list[int],
    utilizations: list[float],
    working_set_blocks: int | None = None,
    num_accesses: int = 500,
    stash_capacity: int = 200,
    seed: int = 0,
    stash_slack: int | None = None,
    capacity_blocks: int | None = None,
    abort_dummy_factor: float = 30.0,
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> list[SweepPoint]:
    """Figure 8: access overhead versus ORAM utilization for each Z.

    The tree size is set by ``capacity_blocks`` (directly) or by
    ``working_set_blocks`` (the tree is sized to hold roughly
    ``working_set_blocks / 0.5``); each utilization point then adjusts the
    number of valid blocks so the effective utilization matches the
    requested one exactly.  Points come back in ``(z, utilization)`` grid
    order.
    """
    if capacity_blocks is None:
        if working_set_blocks is None:
            raise ValueError("need working_set_blocks or capacity_blocks")
        capacity_blocks = 2 * working_set_blocks
    configs = [
        utilization_config(
            z, utilization, capacity_blocks, stash_capacity=stash_capacity,
            stash_slack=stash_slack,
        )
        for z in z_values
        for utilization in utilizations
    ]
    return run_sweep(
        configs, num_accesses, seed=seed, abort_dummy_factor=abort_dummy_factor,
        executor=executor, max_workers=max_workers, progress=progress,
    )


def sweep_capacity(
    z_values: list[int],
    working_sets: list[int],
    num_accesses_per_point: int,
    utilization: float = 0.5,
    stash_capacity: int = 200,
    seed: int = 0,
    stash_slack: int | None = None,
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> list[SweepPoint]:
    """Figure 9: access overhead versus ORAM capacity at fixed utilization."""
    configs = []
    for z in z_values:
        for working_set in working_sets:
            config = ORAMConfig(
                working_set_blocks=working_set,
                utilization=utilization,
                z=z,
                block_bytes=128,
                stash_capacity=stash_capacity,
                name=f"fig9-z{z}-n{working_set}",
            )
            if stash_slack is not None:
                config = config.with_updates(
                    stash_capacity=config.blocks_per_path + stash_slack
                )
            configs.append(config)
    return run_sweep(
        configs, num_accesses_per_point, seed=seed,
        executor=executor, max_workers=max_workers, progress=progress,
    )
