"""Design-space-exploration drivers and result formatting.

Each module corresponds to one part of the paper's evaluation:

* :mod:`repro.analysis.stash_occupancy` — Figure 3 (stash-occupancy tails).
* :mod:`repro.analysis.sweep` — Figures 7, 8 and 9 (dummy-access ratio and
  access overhead across stash size, utilization and capacity).
* :mod:`repro.analysis.hierarchy` — Figure 10 (hierarchical overhead
  breakdown per position-map block size).
* :mod:`repro.analysis.dram_latency` — Figure 11 (ORAM latency on DRAM).
* :mod:`repro.analysis.spec_eval` — Table 2 and Figure 12 (latency /
  storage of concrete configurations and SPEC-like slowdowns).
* :mod:`repro.analysis.report` — plain-text table rendering shared by the
  benchmark harness and the examples.

Every grid-shaped driver dispatches its points through
:class:`repro.runner.ExperimentRunner`, so each accepts ``executor=``
(``"serial"`` or ``"process"``), ``max_workers=`` and ``progress=``; the
parallel executor returns bit-identical results to the serial one.
"""

from repro.analysis.report import format_markdown_table, format_table

__all__ = [
    "format_table",
    "format_markdown_table",
]
