"""Reproduction of Path ORAM design space exploration (Ren et al., ISCA 2013).

The package is organised into subpackages, one per subsystem:

``repro.core``
    Path ORAM itself: configuration, the tree, the stash, the position map,
    background eviction, super blocks and the hierarchical (recursive)
    construction, plus analytic overhead and storage models.

``repro.crypto``
    The randomized-encryption substrate: a pure-Python AES-128, PRF
    keystreams, and the strawman / counter-based bucket encryption schemes.

``repro.integrity``
    Integrity verification: the strawman Merkle tree and the ORAM-mirrored
    authentication tree with child-valid flags.

``repro.dram``
    A DDR3-like DRAM timing model and the naive / subtree placements of the
    ORAM tree onto it.

``repro.processor``
    A trace-driven in-order processor model with exclusive L1/L2 caches and
    pluggable memory back-ends (plain DRAM or Path ORAM).

``repro.workloads``
    Synthetic and SPEC-like memory-trace generators.

``repro.attacks``
    The common-path-length (CPL) attack used to demonstrate that naive
    eviction schemes leak.

``repro.analysis``
    Design-space sweep drivers and result formatting used by the benchmark
    harness.

``repro.runner``
    The unified experiment runner: grids of independent simulation points
    executed serially or on a process pool with bit-identical results.

``repro.backends``
    The backend/scenario registry: named storage stacks and protocol
    variants every driver builds its ORAMs through.
"""

from repro.backends import OramSpec, build_oram
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.interface import ORAMMemoryInterface
from repro.core.path_oram import PathORAM

__version__ = "1.1.0"

__all__ = [
    "ORAMConfig",
    "HierarchyConfig",
    "OramSpec",
    "PathORAM",
    "HierarchicalPathORAM",
    "ORAMMemoryInterface",
    "build_oram",
    "__version__",
]
