"""Reproduction of Path ORAM design space exploration (Ren et al., ISCA 2013).

The top-level package re-exports the **stable public API facade**
(:mod:`repro.api`): configuration types, :func:`open_oram` construction,
the experiment runner, the serving layer and the typed error hierarchy —
see ``repro.api`` for the curated surface and the README's public-API
reference table.  Application code should import from here (or from
``repro.api``); the subpackages below are implementation layers that stay
free to refactor:

``repro.core``
    Path ORAM itself: configuration, the tree, the stash, the position map,
    background eviction, super blocks and the hierarchical (recursive)
    construction, plus analytic overhead and storage models.

``repro.crypto``
    The randomized-encryption substrate: a pure-Python AES-128, PRF
    keystreams, and the strawman / counter-based bucket encryption schemes.

``repro.integrity``
    Integrity verification: the strawman Merkle tree and the ORAM-mirrored
    authentication tree with child-valid flags.

``repro.dram``
    A DDR3-like DRAM timing model and the naive / subtree placements of the
    ORAM tree onto it.

``repro.processor``
    A trace-driven in-order processor model with exclusive L1/L2 caches and
    pluggable memory back-ends (plain DRAM or Path ORAM).

``repro.workloads``
    Synthetic and SPEC-like memory-trace generators.

``repro.attacks``
    The common-path-length (CPL) attack used to demonstrate that naive
    eviction schemes leak.

``repro.analysis``
    Design-space sweep drivers and result formatting used by the benchmark
    harness.

``repro.runner``
    The unified experiment runner: grids of independent simulation points
    executed serially or on a process pool with bit-identical results.

``repro.backends``
    The backend/scenario registry: named storage stacks and protocol
    variants every driver builds its ORAMs through.

``repro.serve``
    ORAM-as-a-service: the async multi-tenant serving layer with the
    deterministic batch scheduler and the closed-loop load generator.
"""

from repro.api import *  # noqa: F403 - the facade is the public surface
from repro.api import __all__ as _api_all
from repro.backends import build_interface, build_oram  # legacy aliases

__version__ = "1.2.0"

__all__ = list(_api_all) + ["build_oram", "build_interface", "__version__"]
