"""Fleet executor plumbing: grouping specs into batched tensor runs.

:func:`run_fleet` is the runner-side entry of the fleet execution mode
(:mod:`repro.core.numpy_fleet` holds the tensor engine).  It partitions a
batch of :class:`~repro.runner.spec.ExperimentSpec` points into groups that
can share one stacked column tensor, runs each group through a
:class:`~repro.core.numpy_fleet.FleetEngine`, and hands everything it
cannot batch to a caller-supplied *fallback* executor — so drivers get one
call that is never worse than the executor they had.

A spec is fleet-eligible when a **fleet adapter** is registered for its
``fn`` (see :func:`register_fleet_adapter`) and that adapter can produce a
:class:`FleetPlan` for the spec's kwargs.  The plan carries:

``shape``
    The grouping key.  Specs whose plans share ``shape`` (for the sweep
    adapters: the ``(levels, Z)`` tree shape) ride in one engine batch —
    they must, because the batch shares one classification table and one
    row-grid geometry.  Different shapes simply form separate batches.
``build()``
    Builds the point's ORAM (numpy-flat, column engine attached), seeded
    exactly as the serial driver would seed it.
``program(oram)``
    A generator yielding chunks of addresses; its return value is the
    abort reason.  This is the serial measurement loop turned inside out:
    the engine performs the accesses, the program keeps the driver's
    between-chunk logic (abort checks, ``stats.reset()``).
``finalize(oram, abort_reason)``
    Computes the point's result value from the finished ORAM — the same
    value the serial ``fn`` returns.

Fallback semantics: specs with no adapter, specs whose adapter declines
(returns ``None``), and the still-unfinished remainder of a group whose
batch run raised, all go to the fallback in their original spec positions.
Results are always returned in spec order, and each point's value is
bit-identical to serial execution (the differential suite in
``tests/test_fleet.py`` pins this).

This module is NumPy-free at import time: the engine import happens inside
:func:`run_fleet`, and when it fails (no NumPy) every spec takes the
fallback path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.runner.runner import ProgressCallback
from repro.runner.spec import ExperimentResult, ExperimentSpec

#: Deepest tree the fleet engine batches.  The shared classification table
#: covers leaf-XOR values up to ``2**(levels+1)`` entries, matching the
#: scalar column engine's own table cap; deeper trees fall back.
FLEET_MAX_LEVELS = 16

#: Smallest group worth batching.  A tensor step has a fixed dispatch cost
#: of a few hundred microseconds regardless of batch size, so a group needs
#: enough members to amortise it below the scalar engine's per-access cost;
#: smaller groups run faster on the fallback executor.  Callers with
#: correctness rigs (the differential suite) pass ``min_group=1``.
FLEET_MIN_GROUP = 32


@dataclass(frozen=True)
class FleetPlan:
    """How one experiment point runs inside a fleet batch (module doc)."""

    shape: tuple
    build: Callable[[], Any]
    program: Callable[[Any], Iterator[list[int]]]
    finalize: Callable[[Any, Any], Any]


#: A planner inspects one spec and plans its batched run (or declines).
Planner = Callable[["ExperimentSpec"], "FleetPlan | None"]

#: Registered planners: spec.fn -> planner.
_ADAPTERS: dict[Any, Planner] = {}


def register_fleet_adapter(fn: Callable[..., Any]) -> Callable[[Planner], Planner]:
    """Class a driver function as fleet-runnable.

    Decorator for a *planner*: ``planner(spec) -> FleetPlan | None``.  The
    planner inspects the spec's kwargs and either returns a plan or
    ``None`` to decline (unsupported config, non-batchable variant), in
    which case the spec takes the fallback executor.
    """

    def register(planner: Planner) -> Planner:
        _ADAPTERS[fn] = planner
        return planner

    return register


def fleet_plan(spec: ExperimentSpec) -> FleetPlan | None:
    """The spec's :class:`FleetPlan`, or ``None`` when it must fall back."""
    planner = _ADAPTERS.get(spec.fn)
    if planner is None:
        return None
    return planner(spec)


def run_fleet(
    specs: Sequence[ExperimentSpec],
    fallback: Callable[[Sequence[ExperimentSpec]], list[ExperimentResult]],
    progress: ProgressCallback | None = None,
    should_abort: Callable[[], bool] | None = None,
    min_group: int | None = None,
) -> list[ExperimentResult]:
    """Execute a grid with batched tensor runs where possible.

    Eligible specs are grouped by plan shape and run through one
    :class:`FleetEngine` per group; everything else goes to ``fallback``
    (a callable executing a sub-batch of specs and returning their results
    in order — e.g. a serial or process :class:`ExperimentRunner` run).
    Groups smaller than ``min_group`` (default :data:`FLEET_MIN_GROUP`)
    also take the fallback: below that size the tensor step's fixed
    dispatch cost outweighs the batching.  Results come back in spec
    order; ``progress`` fires once per completed point, in completion
    order, with the overall done-count.
    """
    if min_group is None:
        min_group = FLEET_MIN_GROUP
    spec_list = list(specs)
    total = len(spec_list)
    results: list[ExperimentResult | None] = [None] * total
    done = 0

    def report(result: ExperimentResult) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, result)

    try:
        from repro.core.numpy_fleet import FleetEngine, FleetMember
    except ImportError:  # pragma: no cover - NumPy-less environment
        FleetEngine = None  # type: ignore[assignment]

    groups: dict[tuple, list[int]] = {}
    leftover: list[int] = []
    plans: list[FleetPlan | None] = []
    for index, spec in enumerate(spec_list):
        plan = fleet_plan(spec) if FleetEngine is not None else None
        plans.append(plan)
        if plan is None:
            leftover.append(index)
        else:
            groups.setdefault(plan.shape, []).append(index)

    for shape in [s for s, ix in groups.items() if len(ix) < min_group]:
        leftover.extend(groups.pop(shape))
    leftover.sort()

    for indices in groups.values():
        if should_abort is not None and should_abort():
            for index in indices:
                results[index] = ExperimentResult(key=spec_list[index].key, error="aborted")
                report(results[index])
            continue
        try:
            members = []
            index_of: dict[int, int] = {}
            for index in indices:
                plan = plans[index]
                assert plan is not None
                oram = plan.build()
                member = FleetMember(
                    key=spec_list[index].key,
                    oram=oram,
                    program=plan.program(oram),
                    finalize=plan.finalize,
                )
                index_of[id(member)] = index
                members.append(member)

            def on_retire(member) -> None:
                index = index_of[id(member)]
                result = ExperimentResult(
                    key=member.key,
                    value=member.value,
                    error=member.error,
                    seconds=member.seconds,
                )
                results[index] = result
                report(result)

            FleetEngine(members, should_abort=should_abort, on_retire=on_retire).run()
            for member in members:
                index = index_of[id(member)]
                if results[index] is None:
                    # Aborted mid-batch: retired without on_retire firing.
                    results[index] = ExperimentResult(
                        key=member.key, error=member.error or "aborted"
                    )
                    report(results[index])
        except Exception:  # noqa: BLE001 - batch failed: re-run the rest
            pending = [i for i in indices if results[i] is None]
            for index, result in zip(pending, fallback([spec_list[i] for i in pending])):
                results[index] = result
                report(result)

    if leftover:
        for index, result in zip(leftover, fallback([spec_list[i] for i in leftover])):
            results[index] = result
            report(result)

    return [result for result in results if result is not None]
