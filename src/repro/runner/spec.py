"""Experiment descriptions and result envelopes for the runner."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping


def derive_seed(base_seed: int, key: Any) -> int:
    """Derive a per-point seed from a base seed and a spec key.

    Stable across processes and Python versions (unlike ``hash()``, which
    is salted per interpreter): the key's ``repr`` is digested with SHA-256
    together with the base seed.  Keys must therefore have a deterministic
    ``repr`` — tuples of ints/floats/strings, as grid keys are.
    """
    digest = hashlib.sha256(f"{base_seed}:{key!r}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of an experiment grid.

    Attributes
    ----------
    key:
        Hashable identifier of the point (e.g. ``(z, utilization)``); used
        for progress reporting and seed derivation.
    fn:
        A picklable (module-level) callable computing the point.
    kwargs:
        Keyword arguments for ``fn``.  Must be picklable for the process
        executor.
    seed:
        When not ``None``, passed to ``fn`` as the ``seed`` keyword —
        callers either fix it explicitly (grid drivers replaying the
        paper's figures) or fill it with :func:`derive_seed`.
    """

    key: Any
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None

    def call_kwargs(self) -> dict[str, Any]:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one executed :class:`ExperimentSpec`.

    ``value`` holds whatever the spec's ``fn`` returned; ``error`` holds a
    formatted exception string when the point failed (and ``value`` is
    ``None``).  ``error_type`` classifies the failure — the exception class
    name for in-function errors, or one of the runner's synthetic types
    (``"WorkerDied"``, ``"Aborted"``, ``"NotExecuted"``) — and is what the
    retry policy consults to tell transient faults from deterministic ones.
    ``seconds`` is wall-clock compute time of the point and is the only
    field that may differ between serial and parallel runs.
    """

    key: Any
    value: Any = None
    error: str | None = None
    error_type: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None
