"""Unified experiment runner for the design-space exploration drivers.

The paper's evaluation (Figures 3, 7-12) is thousands of *independent*
simulated configurations.  This package gives every driver one way to
describe a grid point (:class:`ExperimentSpec`), one result envelope
(:class:`ExperimentResult`) and one engine to execute a batch of points
(:class:`ExperimentRunner`) either serially or on a multiprocessing pool —
with results returned in spec order and derived per-point seeds, so the
parallel execution is bit-identical to the serial one.

Typical use::

    from repro.runner import ExperimentRunner, ExperimentSpec

    specs = [
        ExperimentSpec(key=(z, c), fn=measure_dummy_ratio,
                       kwargs={"config": make_config(z, c), "seed": 0})
        for z in z_values for c in stash_sizes
    ]
    points = ExperimentRunner(executor="process").run_values(specs)
"""

from repro.runner.checkpoint import CheckpointManager
from repro.runner.fleet import FleetPlan, register_fleet_adapter, run_fleet
from repro.runner.runner import (
    DETERMINISTIC_ERROR_TYPES,
    TRANSIENT_ERROR_TYPES,
    ExperimentRunner,
    ProgressCallback,
    RetryPolicy,
    RunnerError,
)
from repro.runner.spec import ExperimentResult, ExperimentSpec, derive_seed
from repro.runner.windows import WindowPlan, merge_counters, run_windows, window_specs

__all__ = [
    "CheckpointManager",
    "DETERMINISTIC_ERROR_TYPES",
    "ExperimentRunner",
    "ExperimentSpec",
    "ExperimentResult",
    "FleetPlan",
    "ProgressCallback",
    "RetryPolicy",
    "RunnerError",
    "TRANSIENT_ERROR_TYPES",
    "WindowPlan",
    "derive_seed",
    "merge_counters",
    "register_fleet_adapter",
    "run_fleet",
    "run_windows",
    "window_specs",
]
