"""Window-sharding: one huge experiment split across pool workers.

The grid drivers parallelise *across* experiment points; this module
parallelises *within* one experiment.  A long measurement is split into a
:class:`WindowPlan` of deterministic warmup+measure windows.  Each window
is an independent, self-seeded simulation (its seed derived from the plan's
base seed and the window index through :func:`~repro.runner.spec.derive_seed`),
so the windows can execute serially or on a process pool with bit-identical
results — the same guarantee the grid runner gives, applied to the shards
of a single experiment.  The caller merges the per-window statistics
(:class:`~repro.core.stats.AccessStats` counters sum; ratios are recomputed
from the merged counters).

Statistically this is the standard batch-means design: ``W`` windows of
``n`` accesses each, every window warmed up independently, estimate the
steady-state rates from the pooled counters.  It trades the single long
trajectory of a serial run for W independent trajectories — which is what
makes the shards embarrassingly parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.runner.checkpoint import CheckpointManager
from repro.runner.runner import ExperimentRunner, ProgressCallback, RetryPolicy
from repro.runner.spec import ExperimentSpec, derive_seed


@dataclass(frozen=True)
class WindowPlan:
    """How one long experiment is cut into parallelisable windows.

    Attributes
    ----------
    key:
        Stable label naming the experiment; part of every window's derived
        seed, so two different experiments sharing a base seed still get
        independent streams.
    base_seed:
        The experiment's seed; each window derives its own from it.
    window_accesses:
        Measured accesses per window, one entry per window.  Use
        :meth:`split` to distribute a total evenly.
    """

    key: Any
    base_seed: int
    window_accesses: tuple[int, ...]

    @classmethod
    def split(cls, key: Any, base_seed: int, total_accesses: int, windows: int) -> "WindowPlan":
        """Cut ``total_accesses`` into ``windows`` near-equal windows.

        The remainder is spread over the leading windows so the sizes never
        differ by more than one and every access is accounted for.
        """
        if windows < 1:
            raise ValueError("windows must be >= 1")
        if total_accesses < windows:
            windows = max(1, total_accesses)
        base, extra = divmod(total_accesses, windows)
        sizes = tuple(base + (1 if index < extra else 0) for index in range(windows))
        return cls(key=key, base_seed=base_seed, window_accesses=sizes)

    @property
    def num_windows(self) -> int:
        return len(self.window_accesses)

    @property
    def total_accesses(self) -> int:
        return sum(self.window_accesses)

    def window_seed(self, index: int) -> int:
        """The deterministic seed of window ``index``.

        Stable across processes and Python versions, so a pool worker
        rebuilds exactly the window a serial run would.
        """
        return derive_seed(self.base_seed, (self.key, "window", index))


def window_specs(
    fn: Callable[..., Any],
    plan: WindowPlan,
    kwargs: Mapping[str, Any] | None = None,
    accesses_kwarg: str = "num_accesses",
) -> list[ExperimentSpec]:
    """One :class:`ExperimentSpec` per window of ``plan``.

    ``fn`` must accept ``seed`` plus ``accesses_kwarg``; everything in
    ``kwargs`` is forwarded to every window.
    """
    shared = dict(kwargs) if kwargs else {}
    return [
        ExperimentSpec(
            key=(plan.key, "window", index),
            fn=fn,
            kwargs={**shared, accesses_kwarg: accesses},
            seed=plan.window_seed(index),
        )
        for index, accesses in enumerate(plan.window_accesses)
    ]


def run_windows(
    fn: Callable[..., Any],
    plan: WindowPlan,
    kwargs: Mapping[str, Any] | None = None,
    accesses_kwarg: str = "num_accesses",
    executor: str = "serial",
    max_workers: int | None = None,
    progress: ProgressCallback | None = None,
    checkpoint: CheckpointManager | None = None,
    retry: RetryPolicy | None = None,
) -> list[Any]:
    """Execute every window of ``plan`` and return the per-window values.

    With ``executor="process"`` the windows run across pool workers,
    bit-identically to a serial run of the same plan (each window is an
    independent simulation seeded by :meth:`WindowPlan.window_seed`).
    With a ``checkpoint``, completed windows are persisted as they finish
    and skipped on resume — an interrupted long measurement restarts at
    window granularity and still merges to bit-identical totals.
    """
    runner = ExperimentRunner(
        executor=executor, max_workers=max_workers, progress=progress, retry=retry
    )
    return runner.run_values(
        window_specs(fn, plan, kwargs=kwargs, accesses_kwarg=accesses_kwarg),
        checkpoint=checkpoint,
    )


def merge_counters(values: Sequence[Any], fields: Sequence[str]) -> dict[str, int]:
    """Sum the named integer counters across per-window result objects."""
    merged = {name: 0 for name in fields}
    for value in values:
        for name in fields:
            merged[name] += getattr(value, name)
    return merged
