"""Durable checkpoints for experiment grids and window plans.

:class:`CheckpointManager` persists completed :class:`~repro.runner.spec.
ExperimentResult` envelopes to a single file so an interrupted sweep can be
resumed without recomputing finished points.  Because every point function
here is deterministic under its derived seed, skipping completed points and
replaying their recorded results yields output bit-identical to an
uninterrupted run — the checkpoint tests pin this down to stats
fingerprints and end-of-run RNG state.

File format (one file per checkpoint)::

    sha256(gen || payload)  (32 bytes)
    generation              (8 bytes, big-endian)
    payload                 (pickled envelope)

The envelope is ``{"format", "version", "generation", "results"}`` with
results keyed by ``repr(spec.key)`` — the same canonical key form the seed
derivation uses.  Writes are atomic (temp file + fsync + ``os.replace``)
and carry a monotonically increasing generation number, so a reader never
sees a torn or rolled-back checkpoint; a digest mismatch or a generation
that moved backwards raises :class:`~repro.errors.CheckpointError` instead
of silently resuming from bad state.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any

from repro.errors import CheckpointError
from repro.runner.spec import ExperimentResult

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

_DIGEST_BYTES = 32
_GENERATION_BYTES = 8
_HEADER_BYTES = _DIGEST_BYTES + _GENERATION_BYTES


class CheckpointManager:
    """Records completed experiment points and replays them on resume.

    Parameters
    ----------
    path:
        Checkpoint file location.  An existing file is loaded (and
        validated) on construction; a missing file starts empty.
    every:
        Save cadence: persist after every ``every``-th recorded result.
        The runner additionally calls :meth:`save` at the end of the run,
        so a cadence larger than 1 only bounds how much work a crash can
        lose, never whether the final state lands on disk.
    """

    def __init__(self, path: str | os.PathLike, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self._path = os.fspath(path)
        self._every = every
        self._results: dict[str, ExperimentResult] = {}
        self._generation = 0
        self._dirty = 0
        if os.path.exists(self._path):
            self._load()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return self._path

    @property
    def generation(self) -> int:
        """Number of checkpoint saves performed (monotonic, persisted)."""
        return self._generation

    @property
    def completed(self) -> int:
        """Number of point results currently held."""
        return len(self._results)

    def result_for(self, key: Any) -> ExperimentResult | None:
        """The recorded result for a spec key, or ``None`` if not done."""
        return self._results.get(repr(key))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, result: ExperimentResult) -> None:
        """Record one completed point; failed points are not checkpointed.

        (A failed point must re-execute on resume — recording it would
        make a transient fault permanent.)
        """
        if not result.ok:
            return
        self._results[repr(result.key)] = result
        self._dirty += 1
        if self._dirty >= self._every:
            self.save()

    def save(self) -> None:
        """Atomically persist the current state (no-op when unchanged)."""
        if not self._dirty and self._generation and os.path.exists(self._path):
            return
        disk_generation = self._peek_generation(self._path)
        if disk_generation is not None and disk_generation > self._generation:
            raise CheckpointError(
                f"checkpoint {self._path!r} advanced externally "
                f"(on disk: generation {disk_generation}, "
                f"ours: {self._generation}); refusing to roll it back"
            )
        self._generation += 1
        envelope = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "generation": self._generation,
            "results": dict(self._results),
        }
        payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        generation = self._generation.to_bytes(_GENERATION_BYTES, "big")
        digest = hashlib.sha256(generation + payload).digest()
        tmp = f"{self._path}.tmp.{os.getpid()}"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, digest + generation + payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self._path)
        self._dirty = 0

    def flush(self) -> None:
        """Alias for :meth:`save` (end-of-run hook)."""
        self.save()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @staticmethod
    def _peek_generation(path: str) -> int | None:
        """Generation number of the file at ``path`` (header only), or
        ``None`` when there is no readable checkpoint."""
        try:
            with open(path, "rb") as handle:
                header = handle.read(_HEADER_BYTES)
        except OSError:
            return None
        if len(header) < _HEADER_BYTES:
            return None
        return int.from_bytes(header[_DIGEST_BYTES:], "big")

    def _load(self) -> None:
        with open(self._path, "rb") as handle:
            blob = handle.read()
        if len(blob) < _HEADER_BYTES:
            raise CheckpointError(
                f"checkpoint {self._path!r} is truncated ({len(blob)} bytes)"
            )
        digest = blob[:_DIGEST_BYTES]
        generation_bytes = blob[_DIGEST_BYTES:_HEADER_BYTES]
        payload = blob[_HEADER_BYTES:]
        if hashlib.sha256(generation_bytes + payload).digest() != digest:
            raise CheckpointError(
                f"checkpoint {self._path!r} is corrupt (payload digest mismatch)"
            )
        envelope = pickle.loads(payload)
        if envelope.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {self._path!r} has unknown format "
                f"{envelope.get('format')!r}"
            )
        if envelope.get("version") > CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self._path!r} was written by a newer version "
                f"({envelope.get('version')} > {CHECKPOINT_VERSION})"
            )
        generation = int.from_bytes(generation_bytes, "big")
        if envelope.get("generation") != generation:
            raise CheckpointError(
                f"checkpoint {self._path!r} header/payload generation mismatch"
            )
        self._generation = generation
        self._results = dict(envelope["results"])
        self._dirty = 0
