"""Durable checkpoints for experiment grids and window plans.

:class:`CheckpointManager` persists completed :class:`~repro.runner.spec.
ExperimentResult` envelopes to a single file so an interrupted sweep can be
resumed without recomputing finished points.  Because every point function
here is deterministic under its derived seed, skipping completed points and
replaying their recorded results yields output bit-identical to an
uninterrupted run — the checkpoint tests pin this down to stats
fingerprints and end-of-run RNG state.

File format (one file per checkpoint)::

    sha256(gen || payload)  (32 bytes)
    generation              (8 bytes, big-endian)
    payload                 (pickled envelope)

The envelope is ``{"format", "version", "generation", "results"}`` with
results keyed by ``repr(spec.key)`` — the same canonical key form the seed
derivation uses.  Writes are atomic (temp file + fsync + ``os.replace``)
and carry a monotonically increasing generation number, so a reader never
sees a torn or rolled-back checkpoint; a digest mismatch or a generation
that moved backwards raises :class:`~repro.errors.CheckpointError` instead
of silently resuming from bad state.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any

from repro.errors import CheckpointError
from repro.runner.spec import ExperimentResult

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

_DIGEST_BYTES = 32
_GENERATION_BYTES = 8
_HEADER_BYTES = _DIGEST_BYTES + _GENERATION_BYTES


class CheckpointManager:
    """Records completed experiment points and replays them on resume.

    Parameters
    ----------
    path:
        Checkpoint file location.  An existing file is loaded (and
        validated) on construction; a missing file starts empty.
    every:
        Save cadence: persist after every ``every``-th recorded result.
        The runner additionally calls :meth:`save` at the end of the run,
        so a cadence larger than 1 only bounds how much work a crash can
        lose, never whether the final state lands on disk.
    keep_generations:
        When set (``N >= 1``), every save also hard-links the new file to
        ``<path>.genNNNNNNNN`` and prunes generation files older than the
        newest ``N`` — a bounded history instead of the default
        latest-only file.  If the main file is missing or corrupt on
        construction, loading falls back to the newest intact generation
        file, so one torn save costs at most ``every`` results, not the
        whole history.  Rollback detection is unchanged: the main file's
        generation still must never move backwards.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        every: int = 1,
        keep_generations: int | None = None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        if keep_generations is not None and keep_generations < 1:
            raise ValueError("keep_generations must be >= 1 (or None)")
        self._path = os.fspath(path)
        self._every = every
        self._keep = keep_generations
        self._results: dict[str, ExperimentResult] = {}
        self._generation = 0
        self._dirty = 0
        if os.path.exists(self._path):
            try:
                self._load()
            except CheckpointError:
                if self._keep is None:
                    raise
                self._load_newest_generation()
        elif self._keep is not None:
            self._load_newest_generation(missing_ok=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return self._path

    @property
    def generation(self) -> int:
        """Number of checkpoint saves performed (monotonic, persisted)."""
        return self._generation

    @property
    def completed(self) -> int:
        """Number of point results currently held."""
        return len(self._results)

    def result_for(self, key: Any) -> ExperimentResult | None:
        """The recorded result for a spec key, or ``None`` if not done."""
        return self._results.get(repr(key))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, result: ExperimentResult) -> None:
        """Record one completed point; failed points are not checkpointed.

        (A failed point must re-execute on resume — recording it would
        make a transient fault permanent.)
        """
        if not result.ok:
            return
        self._results[repr(result.key)] = result
        self._dirty += 1
        if self._dirty >= self._every:
            self.save()

    def save(self) -> None:
        """Atomically persist the current state (no-op when unchanged)."""
        if not self._dirty and self._generation and os.path.exists(self._path):
            return
        disk_generation = self._peek_generation(self._path)
        if disk_generation is not None and disk_generation > self._generation:
            # In keep mode a corrupt main file may carry a stale-but-larger
            # header while we resumed from an older intact generation file;
            # overwriting garbage is not a rollback.
            if self._keep is None or self._is_intact(self._path):
                raise CheckpointError(
                    f"checkpoint {self._path!r} advanced externally "
                    f"(on disk: generation {disk_generation}, "
                    f"ours: {self._generation}); refusing to roll it back"
                )
        self._generation += 1
        envelope = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "generation": self._generation,
            "results": dict(self._results),
        }
        payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        generation = self._generation.to_bytes(_GENERATION_BYTES, "big")
        digest = hashlib.sha256(generation + payload).digest()
        tmp = f"{self._path}.tmp.{os.getpid()}"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, digest + generation + payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self._path)
        if self._keep is not None:
            self._retain_generation()
        self._dirty = 0

    def _generation_path(self, generation: int) -> str:
        return f"{self._path}.gen{generation:08d}"

    def _generation_files(self) -> list[tuple[int, str]]:
        """Existing ``.genNNNNNNNN`` siblings, newest first."""
        directory = os.path.dirname(self._path) or "."
        prefix = os.path.basename(self._path) + ".gen"
        entries: list[tuple[int, str]] = []
        try:
            names = os.listdir(directory)
        except OSError:
            return entries
        for name in names:
            if name.startswith(prefix):
                suffix = name[len(prefix) :]
                if suffix.isdigit():
                    entries.append((int(suffix), os.path.join(directory, name)))
        entries.sort(reverse=True)
        return entries

    def _retain_generation(self) -> None:
        """Link the just-saved file into the bounded generation history."""
        target = self._generation_path(self._generation)
        try:
            os.link(self._path, target)
        except OSError:
            # Filesystem without hard links (or the file already exists):
            # fall back to a byte copy of the freshly written checkpoint.
            with open(self._path, "rb") as src, open(target, "wb") as dst:
                dst.write(src.read())
        floor = self._generation - self._keep
        for generation, path in self._generation_files():
            if generation <= floor:
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    def _load_newest_generation(self, missing_ok: bool = False) -> None:
        """Fall back to the newest intact generation file (keep mode)."""
        for _generation, path in self._generation_files():
            try:
                self._load(path)
                return
            except CheckpointError:
                continue
        if not missing_ok:
            raise CheckpointError(
                f"checkpoint {self._path!r} is unreadable and no intact " "generation file remains"
            )

    def flush(self) -> None:
        """Alias for :meth:`save` (end-of-run hook)."""
        self.save()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @staticmethod
    def _is_intact(path: str) -> bool:
        """Whether the file parses as a digest-valid checkpoint."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return False
        if len(blob) < _HEADER_BYTES:
            return False
        expected = hashlib.sha256(blob[_DIGEST_BYTES:]).digest()
        return blob[:_DIGEST_BYTES] == expected

    @staticmethod
    def _peek_generation(path: str) -> int | None:
        """Generation number of the file at ``path`` (header only), or
        ``None`` when there is no readable checkpoint."""
        try:
            with open(path, "rb") as handle:
                header = handle.read(_HEADER_BYTES)
        except OSError:
            return None
        if len(header) < _HEADER_BYTES:
            return None
        return int.from_bytes(header[_DIGEST_BYTES:], "big")

    def _load(self, path: str | None = None) -> None:
        path = self._path if path is None else path
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise CheckpointError(f"checkpoint {path!r} is unreadable: {exc}") from exc
        if len(blob) < _HEADER_BYTES:
            raise CheckpointError(f"checkpoint {path!r} is truncated ({len(blob)} bytes)")
        digest = blob[:_DIGEST_BYTES]
        generation_bytes = blob[_DIGEST_BYTES:_HEADER_BYTES]
        payload = blob[_HEADER_BYTES:]
        if hashlib.sha256(generation_bytes + payload).digest() != digest:
            raise CheckpointError(f"checkpoint {path!r} is corrupt (payload digest mismatch)")
        envelope = pickle.loads(payload)
        if envelope.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path!r} has unknown format " f"{envelope.get('format')!r}"
            )
        if envelope.get("version") > CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} was written by a newer version "
                f"({envelope.get('version')} > {CHECKPOINT_VERSION})"
            )
        generation = int.from_bytes(generation_bytes, "big")
        if envelope.get("generation") != generation:
            raise CheckpointError(f"checkpoint {path!r} header/payload generation mismatch")
        self._generation = generation
        self._results = dict(envelope["results"])
        self._dirty = 0
