"""Serial and multiprocessing execution of experiment grids."""

from __future__ import annotations

import os
import time
import traceback
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ReproError
from repro.runner.spec import ExperimentResult, ExperimentSpec

try:  # pragma: no cover - stdlib
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover

    class BrokenProcessPool(RuntimeError):  # type: ignore[no-redef]
        pass

#: Signature of a progress callback: (completed, total, latest result).
ProgressCallback = Callable[[int, int, ExperimentResult], None]


class RunnerError(ReproError):
    """Raised by :meth:`ExperimentRunner.run_values` when a point failed."""


def _execute_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Run one spec, capturing exceptions (module-level: must pickle)."""
    start = time.perf_counter()
    try:
        value = spec.fn(**spec.call_kwargs())
    except Exception:  # noqa: BLE001 - the envelope carries the traceback
        return ExperimentResult(
            key=spec.key,
            error=traceback.format_exc(limit=8),
            seconds=time.perf_counter() - start,
        )
    return ExperimentResult(key=spec.key, value=value, seconds=time.perf_counter() - start)


class ExperimentRunner:
    """Executes a batch of :class:`ExperimentSpec` points.

    Parameters
    ----------
    executor:
        ``"serial"`` runs points in-process, in order.  ``"process"`` runs
        them on a :class:`concurrent.futures.ProcessPoolExecutor`; results
        are reassembled in spec order, so for deterministic point functions
        (fresh ``random.Random(seed)`` per point, as all drivers here use)
        the output is bit-identical to serial mode.  If the pool cannot be
        created (restricted sandboxes, missing semaphores) the runner
        falls back to serial execution.  ``"fleet"`` batches compatible
        points into stacked column tensors (:mod:`repro.runner.fleet`) and
        executes whole groups as vectorised ops — bit-identical to serial
        per point — while incompatible points fall back to the process
        executor.
    max_workers:
        Process count for the pool (default: ``os.cpu_count()``).
    progress:
        Optional callback invoked after each completed point with
        ``(completed_count, total, result)``.  In parallel mode it fires in
        completion order from the coordinating process.
    should_abort:
        Optional callable polled between points (serial) or completions
        (parallel); returning True stops the run.  Unstarted points are
        reported as errors with ``"aborted"``.
    """

    def __init__(
        self,
        executor: str = "serial",
        max_workers: int | None = None,
        progress: ProgressCallback | None = None,
        should_abort: Callable[[], bool] | None = None,
        fleet_min_group: int | None = None,
    ) -> None:
        if executor not in ("serial", "process", "fleet"):
            raise ValueError(f"unknown executor {executor!r}")
        self._executor = executor
        self._max_workers = max_workers
        self._progress = progress
        self._should_abort = should_abort
        self._fleet_min_group = fleet_min_group

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, specs: Iterable[ExperimentSpec]) -> list[ExperimentResult]:
        """Execute every spec and return results in spec order."""
        spec_list = list(specs)
        if not spec_list:
            return []
        if self._executor == "fleet":
            return self._run_fleet(spec_list)
        workers = self._max_workers if self._max_workers is not None else os.cpu_count() or 1
        if self._executor == "process" and workers > 1 and len(spec_list) > 1:
            results = self._run_process(spec_list, workers)
            if results is not None:
                return results
        return self._run_serial(spec_list)

    def run_values(self, specs: Iterable[ExperimentSpec]) -> list[Any]:
        """Execute every spec and return the raw values, in spec order.

        Raises
        ------
        RunnerError
            If any point failed (or was aborted); the message lists every
            failing key with its error.
        """
        results = self.run(specs)
        failures = [result for result in results if not result.ok]
        if failures:
            details = "\n".join(f"  {result.key}: {result.error}" for result in failures[:5])
            raise RunnerError(f"{len(failures)} experiment point(s) failed:\n{details}")
        return [result.value for result in results]

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _report(self, done: int, total: int, result: ExperimentResult) -> None:
        if self._progress is not None:
            self._progress(done, total, result)

    def _run_fleet(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        """Batched tensor execution; non-batchable specs take the pool."""
        from repro.runner.fleet import run_fleet

        def fallback(batch: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
            return ExperimentRunner(
                executor="process",
                max_workers=self._max_workers,
                should_abort=self._should_abort,
            ).run(batch)

        return run_fleet(
            specs,
            fallback=fallback,
            progress=self._progress,
            should_abort=self._should_abort,
            min_group=self._fleet_min_group,
        )

    def _run_serial(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        results: list[ExperimentResult] = []
        total = len(specs)
        for index, spec in enumerate(specs):
            if self._should_abort is not None and self._should_abort():
                results.extend(
                    ExperimentResult(key=pending.key, error="aborted")
                    for pending in specs[index:]
                )
                break
            result = _execute_spec(spec)
            results.append(result)
            self._report(len(results), total, result)
        return results

    def _run_process(
        self, specs: Sequence[ExperimentSpec], workers: int
    ) -> list[ExperimentResult] | None:
        """Run on a process pool; ``None`` means fall back to serial."""
        try:
            from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        except ImportError:  # pragma: no cover - stdlib should have it
            return None
        total = len(specs)
        try:
            pool = ProcessPoolExecutor(max_workers=min(workers, total))
        except (OSError, PermissionError, ValueError):  # pragma: no cover
            # Restricted environments (no /dev/shm, no sem_open).
            return None
        slots: list[ExperimentResult | None] = [None] * total
        done_count = 0
        aborted = False
        try:
            with pool:
                future_to_index = {
                    pool.submit(_execute_spec, spec): index
                    for index, spec in enumerate(specs)
                }
                pending = set(future_to_index)
                while pending:
                    finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        index = future_to_index[future]
                        try:
                            result = future.result()
                        except Exception:  # noqa: BLE001 - worker crashed
                            result = ExperimentResult(
                                key=specs[index].key,
                                error=traceback.format_exc(limit=8),
                            )
                        slots[index] = result
                        done_count += 1
                        self._report(done_count, total, result)
                    if self._should_abort is not None and pending and self._should_abort():
                        for future in pending:
                            future.cancel()
                        aborted = True
                        break
        except BrokenProcessPool as exc:  # pragma: no cover
            raise RunnerError(f"process pool broke: {exc}") from exc
        for index, slot in enumerate(slots):
            if slot is None:
                slots[index] = ExperimentResult(
                    key=specs[index].key,
                    error="aborted" if aborted else "not executed",
                )
        return slots  # type: ignore[return-value]
