"""Serial and multiprocessing execution of experiment grids.

Fault tolerance lives at this layer: a :class:`RetryPolicy` decides which
failures are *transient* (killed pool workers, OS-level hiccups) and worth
re-executing, and which are *deterministic* (stash overflow, configuration
errors — re-running the same seed reproduces them exactly) and must surface
immediately.  A broken process pool is rebuilt and only the unfinished
points are resubmitted, bounded by the policy's attempt budget.  Passing a
:class:`~repro.runner.checkpoint.CheckpointManager` to :meth:`
ExperimentRunner.run` persists completed points as they finish and skips
them on the next run, making interrupted sweeps resumable bit-identically.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.errors import ReproError
from repro.runner.spec import ExperimentResult, ExperimentSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runner.checkpoint import CheckpointManager

try:  # pragma: no cover - stdlib
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover

    class BrokenProcessPool(RuntimeError):  # type: ignore[no-redef]
        pass

#: Signature of a progress callback: (completed, total, latest result).
ProgressCallback = Callable[[int, int, ExperimentResult], None]

#: ``ExperimentResult.error_type`` values the retry policy treats as
#: transient.  Exception class names rather than classes: results cross
#: process boundaries as data, and the synthetic runner types
#: (``"WorkerDied"``) have no exception class at all.
TRANSIENT_ERROR_TYPES = frozenset(
    {
        "BrokenProcessPool",
        "WorkerDied",
        "OSError",
        "IOError",
        "BrokenPipeError",
        "ConnectionError",
        "ConnectionResetError",
        "EOFError",
        "InterruptedError",
        "TimeoutError",
    }
)

#: Error types that are *never* retried even though some of them subclass
#: the transient set's classes (``DurabilityError`` and ``IntegrityError``
#: describe deterministic on-disk / in-protocol state: re-executing cannot
#: change what the file contains, and retrying would re-read a corrupt
#: tree as if the fault were a disk hiccup).  Checked before the transient
#: set so the classification cannot be widened by accident.
DETERMINISTIC_ERROR_TYPES = frozenset(
    {
        "AssertionError",
        "CheckpointError",
        "ConfigurationError",
        "DurabilityError",
        "EncryptionError",
        "IntegrityError",
        "StashOverflowError",
        "TraceFormatError",
    }
)


class RunnerError(ReproError):
    """Raised by :meth:`ExperimentRunner.run_values` when a point failed."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry budget for transient experiment-point failures.

    ``max_attempts`` counts total executions of a point (1 = never retry).
    The same budget bounds process-pool rebuilds after worker deaths.
    Backoff between attempts is ``backoff_seconds * multiplier**(n-1)``
    for the ``n``-th retry; the default is no delay, which suits the
    deterministic simulations here (a retried point cannot "wait out" a
    deterministic failure — those are never retried at all).
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        if self.backoff_seconds <= 0:
            return 0.0
        return self.backoff_seconds * self.backoff_multiplier ** max(attempt - 1, 0)

    def is_transient(self, error_type: str | None) -> bool:
        """Whether a failure of this type is worth re-executing.

        Deterministic failures (``StashOverflowError``, configuration
        errors, assertion failures, ...) reproduce bit-identically under
        the point's derived seed, so anything not positively known to be
        transient is treated as deterministic.  Disk hiccups
        (``OSError``/``IOError``) are transient, but the typed storage
        verdicts (``DurabilityError``, ``IntegrityError``) are not: they
        report what the bytes *are*, not a failure to read them.
        """
        if error_type in DETERMINISTIC_ERROR_TYPES:
            return False
        return error_type in TRANSIENT_ERROR_TYPES


def _execute_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Run one spec, capturing exceptions (module-level: must pickle)."""
    start = time.perf_counter()
    try:
        value = spec.fn(**spec.call_kwargs())
    except Exception as exc:  # noqa: BLE001 - the envelope carries the traceback
        return ExperimentResult(
            key=spec.key,
            error=traceback.format_exc(limit=8),
            error_type=type(exc).__name__,
            seconds=time.perf_counter() - start,
        )
    return ExperimentResult(key=spec.key, value=value, seconds=time.perf_counter() - start)


class ExperimentRunner:
    """Executes a batch of :class:`ExperimentSpec` points.

    Parameters
    ----------
    executor:
        ``"serial"`` runs points in-process, in order.  ``"process"`` runs
        them on a :class:`concurrent.futures.ProcessPoolExecutor`; results
        are reassembled in spec order, so for deterministic point functions
        (fresh ``random.Random(seed)`` per point, as all drivers here use)
        the output is bit-identical to serial mode.  If the pool cannot be
        created (restricted sandboxes, missing semaphores) the runner
        falls back to serial execution.  ``"fleet"`` batches compatible
        points into stacked column tensors (:mod:`repro.runner.fleet`) and
        executes whole groups as vectorised ops — bit-identical to serial
        per point — while incompatible points fall back to the process
        executor.
    max_workers:
        Process count for the pool (default: ``os.cpu_count()``).
    progress:
        Optional callback invoked after each completed point with
        ``(completed_count, total, result)``.  In parallel mode it fires in
        completion order from the coordinating process.  On a resumed run
        checkpointed points are reported first (in spec order, with their
        recorded results) so the counts still reach ``total``.
    should_abort:
        Optional callable polled between points (serial) or completions
        (parallel); returning True stops the run.  Unstarted points are
        reported as errors with ``"aborted"``.
    retry:
        The :class:`RetryPolicy` for transient failures; defaults to three
        attempts with no backoff.  Worker deaths rebuild the pool and
        resubmit only unfinished points; deterministic failures are never
        retried.
    """

    def __init__(
        self,
        executor: str = "serial",
        max_workers: int | None = None,
        progress: ProgressCallback | None = None,
        should_abort: Callable[[], bool] | None = None,
        fleet_min_group: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if executor not in ("serial", "process", "fleet"):
            raise ValueError(f"unknown executor {executor!r}")
        self._executor = executor
        self._max_workers = max_workers
        self._progress = progress
        self._should_abort = should_abort
        self._fleet_min_group = fleet_min_group
        self._retry = retry if retry is not None else RetryPolicy()
        # Set only for the duration of a checkpointed run() call.
        self._checkpoint: CheckpointManager | None = None
        self._progress_base = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        specs: Iterable[ExperimentSpec],
        checkpoint: "CheckpointManager | None" = None,
    ) -> list[ExperimentResult]:
        """Execute every spec and return results in spec order.

        With a ``checkpoint``, points the manager already holds results for
        are *not* re-executed — their recorded results are returned (and
        reported through ``progress``) directly, and every fresh completion
        is recorded as it happens.  Because each point is deterministic
        under its derived seed, a run resumed from a checkpoint returns
        results bit-identical to an uninterrupted run.
        """
        spec_list = list(specs)
        if not spec_list:
            return []
        if checkpoint is None:
            return self._dispatch(spec_list)
        cached: dict[int, ExperimentResult] = {}
        todo: list[tuple[int, ExperimentSpec]] = []
        for index, spec in enumerate(spec_list):
            prior = checkpoint.result_for(spec.key)
            if prior is not None:
                cached[index] = prior
            else:
                todo.append((index, spec))
        total = len(spec_list)
        for done, index in enumerate(sorted(cached), start=1):
            if self._progress is not None:
                self._progress(done, total, cached[index])
        results: list[ExperimentResult | None] = [None] * total
        for index, prior in cached.items():
            results[index] = prior
        if todo:
            self._checkpoint = checkpoint
            self._progress_base = len(cached)
            try:
                executed = self._dispatch([spec for _, spec in todo])
            finally:
                self._checkpoint = None
                self._progress_base = 0
            for (index, _), result in zip(todo, executed):
                results[index] = result
        checkpoint.save()
        return results  # type: ignore[return-value]

    def _dispatch(self, spec_list: list[ExperimentSpec]) -> list[ExperimentResult]:
        if self._executor == "fleet":
            return self._run_fleet(spec_list)
        workers = self._max_workers if self._max_workers is not None else os.cpu_count() or 1
        if self._executor == "process" and workers > 1 and len(spec_list) > 1:
            results = self._run_process(spec_list, workers)
            if results is not None:
                return results
        return self._run_serial(spec_list)

    def run_values(
        self,
        specs: Iterable[ExperimentSpec],
        checkpoint: "CheckpointManager | None" = None,
    ) -> list[Any]:
        """Execute every spec and return the raw values, in spec order.

        Raises
        ------
        RunnerError
            If any point failed (or was aborted); the message lists the
            first failing keys with their error type and text, plus a
            ``(+N more)`` count for the rest.
        """
        results = self.run(specs, checkpoint=checkpoint)
        failures = [result for result in results if not result.ok]
        if failures:
            shown = failures[:5]
            details = "\n".join(
                f"  {result.key} [{result.error_type or 'Error'}]: {result.error}"
                for result in shown
            )
            if len(failures) > len(shown):
                details += f"\n  (+{len(failures) - len(shown)} more)"
            raise RunnerError(f"{len(failures)} experiment point(s) failed:\n{details}")
        return [result.value for result in results]

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _report(self, done: int, total: int, result: ExperimentResult) -> None:
        if self._checkpoint is not None and result.ok:
            self._checkpoint.record(result)
        if self._progress is not None:
            base = self._progress_base
            self._progress(done + base, total + base, result)

    def _run_fleet(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        """Batched tensor execution; non-batchable specs take the pool."""
        from repro.runner.fleet import run_fleet

        def fallback(batch: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
            return ExperimentRunner(
                executor="process",
                max_workers=self._max_workers,
                should_abort=self._should_abort,
                retry=self._retry,
            ).run(batch)

        return run_fleet(
            specs,
            fallback=fallback,
            progress=self._report,
            should_abort=self._should_abort,
            min_group=self._fleet_min_group,
        )

    def _run_serial(self, specs: Sequence[ExperimentSpec]) -> list[ExperimentResult]:
        results: list[ExperimentResult] = []
        total = len(specs)
        policy = self._retry
        for index, spec in enumerate(specs):
            if self._should_abort is not None and self._should_abort():
                results.extend(
                    ExperimentResult(key=pending.key, error="aborted", error_type="Aborted")
                    for pending in specs[index:]
                )
                break
            result = _execute_spec(spec)
            attempt = 1
            while (
                not result.ok
                and attempt < policy.max_attempts
                and policy.is_transient(result.error_type)
            ):
                delay = policy.delay(attempt)
                if delay:
                    time.sleep(delay)
                result = _execute_spec(spec)
                attempt += 1
            results.append(result)
            self._report(len(results), total, result)
        return results

    def _run_process(
        self, specs: Sequence[ExperimentSpec], workers: int
    ) -> list[ExperimentResult] | None:
        """Run on a process pool; ``None`` means fall back to serial.

        Worker deaths do not fail the run: every point whose future came
        back :class:`BrokenProcessPool` stays unfinished, the pool is
        rebuilt, and only the unfinished points are resubmitted — up to
        the retry policy's attempt budget, after which the survivors are
        reported as ``"worker died"``.  Transient in-function failures are
        resubmitted per point under the same budget; deterministic
        failures are recorded on first occurrence.
        """
        try:
            from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        except ImportError:  # pragma: no cover - stdlib should have it
            return None
        total = len(specs)
        policy = self._retry
        slots: list[ExperimentResult | None] = [None] * total
        failures = [0] * total
        done_count = 0
        aborted = False
        pool_attempt = 0
        todo = list(range(total))
        while todo and not aborted:
            try:
                pool = ProcessPoolExecutor(max_workers=min(workers, len(todo)))
            except (OSError, PermissionError, ValueError):  # pragma: no cover
                # Restricted environments (no /dev/shm, no sem_open).  If
                # nothing ran yet the caller falls back to serial; mid-run
                # the unfinished points are treated like dead workers.
                if done_count == 0:
                    return None
                break
            broken = False
            try:
                with pool:
                    future_to_index = {
                        pool.submit(_execute_spec, specs[index]): index for index in todo
                    }
                    pending = set(future_to_index)
                    while pending:
                        finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in finished:
                            index = future_to_index[future]
                            try:
                                result = future.result()
                            except BrokenProcessPool:
                                # Killed worker: the point stays unfinished
                                # and rides the pool rebuild below.
                                broken = True
                                continue
                            except Exception as exc:  # noqa: BLE001
                                result = ExperimentResult(
                                    key=specs[index].key,
                                    error=traceback.format_exc(limit=8),
                                    error_type=type(exc).__name__,
                                )
                            if (
                                not result.ok
                                and policy.is_transient(result.error_type)
                                and failures[index] + 1 < policy.max_attempts
                                and not broken
                            ):
                                failures[index] += 1
                                retry = pool.submit(_execute_spec, specs[index])
                                future_to_index[retry] = index
                                pending.add(retry)
                                continue
                            slots[index] = result
                            done_count += 1
                            self._report(done_count, total, result)
                        if broken:
                            break
                        if self._should_abort is not None and pending and self._should_abort():
                            for future in pending:
                                future.cancel()
                            aborted = True
                            break
            except BrokenProcessPool:
                broken = True
            todo = [index for index in range(total) if slots[index] is None]
            if aborted or not todo:
                break
            if not broken:
                continue  # pragma: no cover - defensive; todo implies broken
            pool_attempt += 1
            if pool_attempt >= policy.max_attempts:
                break
            delay = policy.delay(pool_attempt)
            if delay:
                time.sleep(delay)
        for index, slot in enumerate(slots):
            if slot is None:
                if aborted:
                    error, error_type = "aborted", "Aborted"
                else:
                    error, error_type = "worker died", "WorkerDied"
                slots[index] = ExperimentResult(
                    key=specs[index].key, error=error, error_type=error_type
                )
        return slots  # type: ignore[return-value]
