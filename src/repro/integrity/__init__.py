"""Integrity verification for Path ORAM (Section 5).

Two schemes are implemented:

* :mod:`repro.integrity.merkle` — the strawman: a standard Merkle tree with
  one leaf hash per ORAM data block.  Correct but expensive for Path ORAM:
  verifying one ORAM access means checking ``Z (L+1)`` blocks, i.e.
  ``Z (L+1)^2`` hashes.
* :mod:`repro.integrity.auth_tree` — the paper's scheme: an authentication
  tree mirroring the ORAM tree, with per-bucket child-valid flags so the
  tree never needs initialisation.  One ORAM access reads at most ``L``
  sibling hashes and writes ``L`` hashes back.

:mod:`repro.integrity.storage` integrates the authentication tree with the
encrypted tree storage so a :class:`~repro.core.path_oram.PathORAM` can run
with transparent integrity verification.
"""

from repro.integrity.auth_tree import PathORAMAuthenticator
from repro.integrity.merkle import MerkleTree
from repro.integrity.storage import IntegrityVerifiedStorage

__all__ = [
    "MerkleTree",
    "PathORAMAuthenticator",
    "IntegrityVerifiedStorage",
]
