"""Tree storage with transparent integrity verification.

:class:`IntegrityVerifiedStorage` wraps an
:class:`~repro.core.tree.EncryptedTreeStorage` (or any storage exposing raw
bucket bytes) and a :class:`~repro.integrity.auth_tree.PathORAMAuthenticator`
so that every path read is verified against the on-chip root hash and every
path write-back refreshes the authentication tree — the integration
described in Section 5 and Figure 13.
"""

from __future__ import annotations

from repro.core.config import ORAMConfig
from repro.core.tree import EncryptedTreeStorage, TreeStorage
from repro.core.types import Block
from repro.crypto.bucket_encryption import BucketCipher
from repro.integrity.auth_tree import PathORAMAuthenticator


class IntegrityVerifiedStorage(TreeStorage):
    """Encrypted bucket storage with authentication-tree verification.

    Raises :class:`~repro.errors.IntegrityError` from ``read_path`` if any
    bucket on the path has been tampered with (or replayed) since the ORAM
    interface last wrote it.
    """

    def __init__(self, config: ORAMConfig, cipher: BucketCipher,
                 authenticator: PathORAMAuthenticator | None = None,
                 inner: EncryptedTreeStorage | None = None) -> None:
        super().__init__(config)
        # ``inner`` lets callers interpose on the raw device — the fault
        # injector (:mod:`repro.faults`) wraps an EncryptedTreeStorage here
        # so injected corruption flows through the verification below.
        self._inner = inner if inner is not None else EncryptedTreeStorage(config, cipher)
        self._auth = authenticator if authenticator is not None else PathORAMAuthenticator(config)

    @property
    def authenticator(self) -> PathORAMAuthenticator:
        return self._auth

    @property
    def inner(self) -> EncryptedTreeStorage:
        return self._inner

    # ------------------------------------------------------------------
    # TreeStorage interface
    # ------------------------------------------------------------------
    def read_bucket(self, bucket_index: int) -> list[Block]:
        # Individual bucket reads (used by invariant checks) bypass
        # verification; the ORAM protocol always reads whole paths.
        return self._inner.read_bucket(bucket_index)

    def write_bucket(self, bucket_index: int, blocks: list[Block]) -> None:
        self._inner.write_bucket(bucket_index, blocks)

    def read_path(self, leaf: int) -> list[Block]:
        """Verify then decrypt every bucket on the path to ``leaf``."""
        path = self.path(leaf)
        # ``raw_path`` is the device-facing read: a fault-injecting inner
        # storage applies its scheduled corruption there, so verification
        # sees exactly what "the DRAM" returned.
        raw = self._inner.raw_path(leaf)
        self._auth.verify_path(leaf, raw)
        blocks: list[Block] = []
        for index in path:
            blocks.extend(self._inner.read_bucket(index))
        return blocks

    def write_path(self, leaf: int, assignments: dict[int, list[Block]]) -> None:
        """Re-encrypt and write the path, then refresh the authentication tree."""
        self._inner.write_path(leaf, assignments)
        raw = self._inner.raw_path(leaf)
        self._auth.update_path(leaf, raw)

    # ------------------------------------------------------------------
    # Adversarial hooks for tests
    # ------------------------------------------------------------------
    def tamper_with_bucket(self, bucket_index: int, ciphertext: bytes) -> None:
        """Overwrite a bucket's ciphertext behind the ORAM's back."""
        self._inner._buckets[bucket_index] = ciphertext  # noqa: SLF001 - test hook

    def replay_bucket(self, bucket_index: int, old_ciphertext: bytes) -> None:
        """Replay a previously captured ciphertext (freshness attack)."""
        self.tamper_with_bucket(bucket_index, old_ciphertext)
