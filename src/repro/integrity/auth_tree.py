"""The paper's Path-ORAM-integrated authentication tree (Section 5).

The authentication tree mirrors the ORAM tree exactly.  Leaf nodes hash
their bucket; each internal node hashes

    H( f0 || f1 || ((f0 or f1) gating the bucket) || f0-gated left child hash
       || f1-gated right child hash )

where ``f0``/``f1`` are the bucket's child-valid flags, stored in external
memory with the bucket.  The root hash and the root's child-valid flags are
kept on chip.  The gating means never-written subtrees contribute a fixed
all-zero value, so neither the authentication tree nor the ORAM tree needs
to be initialised at program start.

Per ORAM access, only the sibling hashes along the accessed path (at most
``L`` of them) are read and only the ``L`` path hashes are rewritten — in
contrast to the strawman Merkle tree's ``Z (L+1)^2`` hashes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import ORAMConfig
from repro.core.tree import path_indices
from repro.errors import ConfigurationError, IntegrityError

HASH_BYTES = 32
_ZERO_HASH = b"\x00" * HASH_BYTES


def _hash(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


@dataclass
class AuthCounters:
    """Hash-traffic accounting used to check the paper's overhead claim."""

    sibling_hashes_read: int = 0
    hashes_written: int = 0
    verifications: int = 0
    updates: int = 0


class PathORAMAuthenticator:
    """Maintains and checks the mirrored authentication tree for one ORAM."""

    def __init__(self, config: ORAMConfig) -> None:
        self._config = config
        num_buckets = config.num_buckets
        # External state: one hash and two child-valid flags per bucket.
        self._hashes: list[bytes] = [_ZERO_HASH] * num_buckets
        self._flags: list[list[int]] = [[0, 0] for _ in range(num_buckets)]
        # On-chip state: the root hash and the root's child-valid flags.
        self._root_flags = [0, 0]
        self._root_hash = self._node_hash(b"", [0, 0], _ZERO_HASH, _ZERO_HASH, reachable=False)
        self._written = [False] * num_buckets
        self.counters = AuthCounters()

    @property
    def config(self) -> ORAMConfig:
        return self._config

    @property
    def root_hash(self) -> bytes:
        """The on-chip root hash."""
        return self._root_hash

    # ------------------------------------------------------------------
    # Hash computation
    # ------------------------------------------------------------------
    @staticmethod
    def _node_hash(bucket: bytes, flags: Sequence[int], left: bytes, right: bytes,
                   reachable: bool) -> bytes:
        """Internal-node hash with the paper's flag gating."""
        gated_bucket = bucket if (flags[0] or flags[1]) and reachable else b""
        gated_left = left if flags[0] else _ZERO_HASH
        gated_right = right if flags[1] else _ZERO_HASH
        return _hash(bytes([flags[0], flags[1]]) + gated_bucket + gated_left + gated_right)

    @staticmethod
    def _leaf_hash(bucket: bytes) -> bytes:
        return _hash(bucket)

    def _is_leaf(self, bucket_index: int) -> bool:
        return 2 * bucket_index + 1 >= self._config.num_buckets

    def _child_direction(self, parent: int, child: int) -> int:
        """0 if ``child`` is the left child of ``parent``, 1 if the right."""
        if child == 2 * parent + 1:
            return 0
        if child == 2 * parent + 2:
            return 1
        raise ConfigurationError(f"bucket {child} is not a child of {parent}")

    def _flags_of(self, bucket_index: int) -> list[int]:
        if bucket_index == 0:
            return self._root_flags
        return self._flags[bucket_index]

    def _reachable(self, path: Sequence[int], position: int) -> bool:
        """Whether ``path[position]`` was reachable from the root at the
        start of this access (all valid bits above it are 1)."""
        for index in range(position):
            parent = path[index]
            child = path[index + 1]
            direction = self._child_direction(parent, child)
            if not self._flags_of(parent)[direction]:
                return False
        return True

    def _compute_path_root(self, path: Sequence[int], buckets: Sequence[bytes],
                           flags_by_node: Sequence[Sequence[int]],
                           reachability: Sequence[bool]) -> bytes:
        """Recompute the root hash from leaf to root along ``path``."""
        levels = len(path) - 1
        current = self._leaf_hash(buckets[levels])
        self.counters.hashes_written += 0  # accounting happens in update()
        for position in range(levels - 1, -1, -1):
            node = path[position]
            child_on_path = path[position + 1]
            direction = self._child_direction(node, child_on_path)
            sibling = (2 * node + 1) if direction == 1 else (2 * node + 2)
            sibling_hash = self._hashes[sibling]
            self.counters.sibling_hashes_read += 1
            left = current if direction == 0 else sibling_hash
            right = current if direction == 1 else sibling_hash
            current = self._node_hash(
                buckets[position], flags_by_node[position], left, right,
                reachable=reachability[position],
            )
        return current

    # ------------------------------------------------------------------
    # Public protocol
    # ------------------------------------------------------------------
    def verify_path(self, leaf: int, buckets: Sequence[bytes]) -> None:
        """Verify the buckets read along the path to ``leaf``.

        ``buckets`` are the raw (encrypted) bucket contents, root first;
        never-written buckets should be passed as ``b""``.  Raises
        :class:`IntegrityError` if the recomputed root does not match the
        on-chip root hash.
        """
        path = path_indices(leaf, self._config.levels)
        if len(buckets) != len(path):
            raise ConfigurationError("bucket count does not match path length")
        flags_by_node = [list(self._flags_of(index)) for index in path]
        reachability = [self._reachable(path, position) for position in range(len(path))]
        recomputed = self._compute_path_root(path, buckets, flags_by_node, reachability)
        self.counters.verifications += 1
        if recomputed != self._root_hash:
            raise IntegrityError(f"authentication failed on path to leaf {leaf}")

    def update_path(self, leaf: int, new_buckets: Sequence[bytes]) -> None:
        """Install new bucket contents along the path to ``leaf``.

        Updates the child-valid flags (the path just written becomes valid;
        sibling flags survive only if the bucket was already reachable),
        recomputes the path hashes bottom-up and refreshes the on-chip root.
        """
        path = path_indices(leaf, self._config.levels)
        if len(new_buckets) != len(path):
            raise ConfigurationError("bucket count does not match path length")
        levels = len(path) - 1

        reachability = [self._reachable(path, position) for position in range(len(path))]

        # Update child-valid flags along the path (top-down).
        for position in range(levels):
            node = path[position]
            child = path[position + 1]
            direction = self._child_direction(node, child)
            flags = self._flags_of(node)
            new_flags = list(flags)
            new_flags[direction] = 1
            # The other flag is only trustworthy if this bucket was already
            # reachable; otherwise the stored bits are uninitialised memory.
            if not reachability[position]:
                new_flags[1 - direction] = 0
            if node == 0:
                self._root_flags = new_flags
            else:
                self._flags[node] = new_flags

        flags_by_node = [list(self._flags_of(index)) for index in path]
        # Every bucket on the path has now been written, so it is reachable
        # for the purpose of the new hashes.
        new_reachability = [True] * len(path)

        # Recompute hashes bottom-up and store them.
        current = self._leaf_hash(new_buckets[levels])
        self._hashes[path[levels]] = current
        self.counters.hashes_written += 1
        for position in range(levels - 1, -1, -1):
            node = path[position]
            child_on_path = path[position + 1]
            direction = self._child_direction(node, child_on_path)
            sibling = (2 * node + 1) if direction == 1 else (2 * node + 2)
            sibling_hash = self._hashes[sibling]
            left = current if direction == 0 else sibling_hash
            right = current if direction == 1 else sibling_hash
            current = self._node_hash(
                new_buckets[position], flags_by_node[position], left, right,
                reachable=new_reachability[position],
            )
            if node == 0:
                self._root_hash = current
            else:
                self._hashes[node] = current
                self.counters.hashes_written += 1
        for index in path:
            self._written[index] = True
        self.counters.updates += 1

    def tamper_with_hash(self, bucket_index: int, new_hash: bytes) -> None:
        """Testing hook: corrupt a stored (external) hash."""
        self._hashes[bucket_index] = new_hash
