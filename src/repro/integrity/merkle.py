"""A standard Merkle tree (the strawman integrity scheme of Section 5).

Leaves hold the hash of one payload (an ORAM data block or bucket); every
internal node hashes the concatenation of its children.  The root is kept
on chip; verifying a leaf requires its authentication path (one sibling
hash per level).

The class also exposes the cost accounting the paper uses to argue the
strawman is too expensive for Path ORAM: verifying an ORAM access that
touches ``Z (L+1)`` blocks requires ``Z (L+1)`` Merkle paths.
"""

from __future__ import annotations

import hashlib
import math
from typing import Sequence

from repro.errors import ConfigurationError, IntegrityError

HASH_BYTES = 16  # the paper stores 128-bit hashes


def _hash(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()[:HASH_BYTES]


class MerkleTree:
    """A fixed-capacity binary Merkle tree with updatable leaves."""

    def __init__(self, num_leaves: int, initial_payloads: Sequence[bytes] | None = None) -> None:
        if num_leaves < 1:
            raise ConfigurationError("num_leaves must be >= 1")
        self._num_leaves = 1 << max(0, math.ceil(math.log2(num_leaves)))
        self._levels = int(math.log2(self._num_leaves))
        # Heap layout: nodes[1] is the root, children of i are 2i and 2i+1.
        empty_leaf = _hash(b"")
        self._nodes = [b""] * (2 * self._num_leaves)
        for leaf in range(self._num_leaves):
            payload = b""
            if initial_payloads is not None and leaf < len(initial_payloads):
                payload = initial_payloads[leaf]
            self._nodes[self._num_leaves + leaf] = _hash(payload) if payload else empty_leaf
        for index in range(self._num_leaves - 1, 0, -1):
            self._nodes[index] = _hash(self._nodes[2 * index] + self._nodes[2 * index + 1])

    @property
    def num_leaves(self) -> int:
        """Capacity (rounded up to a power of two)."""
        return self._num_leaves

    @property
    def levels(self) -> int:
        """Tree height (hashes per authentication path)."""
        return self._levels

    @property
    def root(self) -> bytes:
        """The on-chip root hash."""
        return self._nodes[1]

    def _check_leaf(self, leaf_index: int) -> None:
        if not 0 <= leaf_index < self._num_leaves:
            raise ConfigurationError(f"leaf index {leaf_index} out of range")

    def proof(self, leaf_index: int) -> list[bytes]:
        """Sibling hashes from the leaf to the root (the authentication path)."""
        self._check_leaf(leaf_index)
        node = self._num_leaves + leaf_index
        siblings = []
        while node > 1:
            siblings.append(self._nodes[node ^ 1])
            node //= 2
        return siblings

    def verify(self, leaf_index: int, payload: bytes, proof: Sequence[bytes],
               root: bytes | None = None) -> None:
        """Check a payload against a proof; raises :class:`IntegrityError` on mismatch."""
        self._check_leaf(leaf_index)
        expected_root = root if root is not None else self.root
        current = _hash(payload) if payload else _hash(b"")
        node = self._num_leaves + leaf_index
        for sibling in proof:
            if node % 2 == 0:
                current = _hash(current + sibling)
            else:
                current = _hash(sibling + current)
            node //= 2
        if current != expected_root:
            raise IntegrityError(f"Merkle verification failed for leaf {leaf_index}")

    def update(self, leaf_index: int, payload: bytes) -> None:
        """Replace a leaf payload and refresh hashes up to the root."""
        self._check_leaf(leaf_index)
        node = self._num_leaves + leaf_index
        self._nodes[node] = _hash(payload) if payload else _hash(b"")
        node //= 2
        while node >= 1:
            self._nodes[node] = _hash(self._nodes[2 * node] + self._nodes[2 * node + 1])
            node //= 2

    def hashes_per_oram_access(self, z: int, oram_levels: int) -> int:
        """Hashes touched to verify one Path ORAM access with this strawman:
        ``Z (L+1)`` blocks, each needing a ``log2(num_leaves)``-hash path."""
        return z * (oram_levels + 1) * self._levels
