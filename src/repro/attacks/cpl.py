"""The common-path-length (CPL) attack on eviction schemes (Section 3.1.3).

For two uniformly random paths the number of shared buckets follows
``P(CPL = l) = 2^-l`` for ``1 <= l <= L`` and ``2^-L`` for ``l = L+1``, with
expectation ``2 - 2^-L``.  A secure ORAM's observable path sequence must
match this; the insecure block-remapping eviction scheme accesses the path
of a block that failed to evict, which is negatively correlated with the
previous access, pulling the average CPL measurably below the expectation.
Figure 4 runs this attack 100 times against both schemes on a small ORAM
(L = 5, Z = 1, eviction threshold 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.backends import OramSpec, build_oram
from repro.core.config import ORAMConfig
from repro.core.path_oram import leaf_common_path_length
from repro.errors import ConfigurationError, ReproError


def cpl_distribution(levels: int) -> dict[int, float]:
    """Theoretical distribution of CPL between two uniformly random paths."""
    if levels < 1:
        raise ConfigurationError("levels must be >= 1")
    distribution = {length: 2.0 ** -length for length in range(1, levels + 1)}
    distribution[levels + 1] = 2.0 ** -levels
    return distribution


def expected_common_path_length(levels: int) -> float:
    """``E[CPL] = 2 - 2^-L`` for uniformly random paths."""
    if levels < 1:
        raise ConfigurationError("levels must be >= 1")
    return 2.0 - 2.0 ** -levels


def average_common_path_length(path_trace: Sequence[int], levels: int) -> float:
    """Average CPL between consecutive accesses in an observed path trace."""
    if len(path_trace) < 2:
        raise ConfigurationError("need at least two accesses to compute CPL")
    total = 0
    for previous, current in zip(path_trace, path_trace[1:]):
        total += leaf_common_path_length(previous, current, levels)
    return total / (len(path_trace) - 1)


@dataclass(frozen=True)
class CPLAttackResult:
    """Outcome of one CPL attack experiment.

    ``average_cpl`` is the mean CPL over every pair of consecutive observed
    paths (the quantity Figure 4 plots).  ``trigger_pair_cpl`` restricts the
    average to pairs formed by a real access and the eviction access it
    triggered — the pairs the paper's leakage argument is about.  At the
    scaled-down ORAM sizes used here, chains of consecutive eviction
    accesses (rare in the paper's setting) are positively correlated and
    partially mask the leak in the overall mean, so the trigger-pair
    statistic is the more faithful detector; both are reported.
    """

    scheme: str
    average_cpl: float
    trigger_pair_cpl: float
    expected_cpl: float
    num_observed_paths: int
    num_trigger_pairs: int

    @property
    def deviation(self) -> float:
        """How far the trigger-pair average falls below the uniform expectation."""
        return self.expected_cpl - self.trigger_pair_cpl

    @property
    def overall_deviation(self) -> float:
        """Absolute deviation of the overall average from the expectation."""
        return abs(self.expected_cpl - self.average_cpl)


def _attack_oram_config() -> ORAMConfig:
    """The paper's Figure 4 setup: L = 5, Z = 1, eviction threshold 2."""
    # Z = 1 with 62 total slots needs 62 buckets, i.e. a tree of L = 5.
    config = ORAMConfig(
        working_set_blocks=31,
        utilization=0.5,
        z=1,
        block_bytes=16,
        stash_capacity=None,  # replaced below once L is known
        name="cpl-attack",
    )
    threshold = 2
    return config.with_updates(stash_capacity=config.blocks_per_path + threshold)


def run_cpl_experiment(
    scheme: str,
    num_accesses: int = 2000,
    rng: random.Random | None = None,
) -> CPLAttackResult:
    """Run one attack experiment against an eviction scheme.

    Parameters
    ----------
    scheme:
        ``"background"`` for the paper's secure dummy-access eviction or
        ``"insecure"`` for the block-remapping scheme.
    num_accesses:
        Number of real accesses in the adversarially chosen workload (a
        memory scan, which stresses eviction the most).
    rng:
        Random source; seed for reproducibility.
    """
    if rng is None:
        rng = random.Random()
    config = _attack_oram_config()
    if scheme not in ("background", "insecure"):
        raise ConfigurationError(f"unknown eviction scheme: {scheme!r}")
    oram = build_oram(
        OramSpec(
            protocol="flat", storage="flat", eviction=scheme, record_path_trace=True
        ),
        config,
        rng=rng,
    )
    working_set = config.working_set_blocks
    trigger_pairs: list[int] = []
    for index in range(num_accesses):
        # A memory scan fills the stash fastest (Section 3.1.1), maximising
        # the number of eviction-induced accesses the adversary observes.
        address = index % working_set + 1
        before = len(oram.path_trace)
        try:
            oram.access(address)
        except ReproError:
            # Z = 1 configurations can wedge (Section 2.5.1: Z <= 2 "always
            # fails"); the paths observed so far are still a valid sample.
            break
        trace = oram.path_trace
        # The first path observed for this access is the real access; any
        # further paths are eviction accesses.  The pair (real access,
        # first eviction access) is the one the paper's argument targets.
        if len(trace) > before + 1:
            trigger_pairs.append(
                leaf_common_path_length(trace[before], trace[before + 1], config.levels)
            )

    average = average_common_path_length(oram.path_trace, config.levels)
    expected = expected_common_path_length(config.levels)
    trigger_average = (
        sum(trigger_pairs) / len(trigger_pairs) if trigger_pairs else expected
    )
    return CPLAttackResult(
        scheme=scheme,
        average_cpl=average,
        trigger_pair_cpl=trigger_average,
        expected_cpl=expected,
        num_observed_paths=len(oram.path_trace),
        num_trigger_pairs=len(trigger_pairs),
    )


def run_cpl_attack_series(
    scheme: str,
    num_experiments: int = 100,
    num_accesses: int = 2000,
    seed: int = 0,
) -> list[CPLAttackResult]:
    """Repeat the attack ``num_experiments`` times (the Figure 4 series)."""
    results = []
    for index in range(num_experiments):
        rng = random.Random(seed + index)
        results.append(run_cpl_experiment(scheme, num_accesses=num_accesses, rng=rng))
    return results
