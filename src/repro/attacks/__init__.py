"""Adversarial analyses of ORAM access patterns.

Currently contains the common-path-length (CPL) attack of Section 3.1.3,
which distinguishes the insecure block-remapping eviction scheme from the
paper's secure background eviction by measuring correlation between
consecutively accessed paths.
"""

from repro.attacks.cpl import (
    CPLAttackResult,
    average_common_path_length,
    cpl_distribution,
    expected_common_path_length,
    run_cpl_experiment,
)

__all__ = [
    "average_common_path_length",
    "expected_common_path_length",
    "cpl_distribution",
    "run_cpl_experiment",
    "CPLAttackResult",
]
