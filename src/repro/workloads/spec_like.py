"""SPEC06-int-like synthetic benchmark profiles.

The paper replays SPEC06-int reference-input traces (3 billion instructions
after a 1-billion-instruction fast-forward) through its timing model.
Neither the benchmarks nor the SESC tracer are available offline, so each
benchmark is represented by a :class:`BenchmarkProfile` capturing the two
properties Figure 12's shape depends on:

* how memory-bound the program is (working-set size relative to the 1 MB L2
  and the instruction gap between memory operations), and
* how much spatial locality its misses have (length of sequential runs),
  which determines how much super blocks help.

Profiles are calibrated qualitatively from the published SPEC
characterisation literature: ``mcf`` is a pointer-chasing, highly
memory-bound code with poor spatial locality but very high miss rates;
``libquantum`` streams through large arrays; ``bzip2`` mixes streaming with
a hot working set; ``hmmer``/``sjeng``/``gobmk``/``h264ref`` are largely
compute-bound with modest working sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.processor.trace import TraceRecord
from repro.runner import derive_seed


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic stand-in for one SPEC06-int benchmark.

    Attributes
    ----------
    name:
        Benchmark name (matches the paper's Figure 12 labels).
    working_set_bytes:
        Size of the region the benchmark touches.
    mean_gap_instructions:
        Average non-memory instructions between memory operations (higher =
        more compute-bound).
    write_fraction:
        Fraction of memory operations that are stores.
    sequential_run_mean:
        Mean length (in accesses) of sequential runs; longer runs mean more
        spatial locality and more benefit from super blocks.
    hot_fraction:
        Fraction of accesses directed at the hot set.
    hot_set_bytes:
        Size of the hot (cache-resident) region.
    access_bytes:
        Step size of sequential runs.
    """

    name: str
    working_set_bytes: int
    mean_gap_instructions: float
    write_fraction: float
    sequential_run_mean: float
    hot_fraction: float
    hot_set_bytes: int
    access_bytes: int = 8

    def __post_init__(self) -> None:
        if self.working_set_bytes < 1024:
            raise ConfigurationError("working_set_bytes must be >= 1024")
        if self.mean_gap_instructions < 0:
            raise ConfigurationError("mean_gap_instructions must be non-negative")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if self.sequential_run_mean < 1:
            raise ConfigurationError("sequential_run_mean must be >= 1")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in [0, 1]")


#: Profiles for the SPEC06-int subset shown in Figure 12, plus the three
#: benchmarks the paper calls out as memory bound (mcf, bzip2, libquantum).
SPEC_PROFILES: dict[str, BenchmarkProfile] = {
    "mcf": BenchmarkProfile(
        name="mcf", working_set_bytes=4 * 1024 * 1024, mean_gap_instructions=6.0,
        write_fraction=0.28, sequential_run_mean=2.0, hot_fraction=0.45,
        hot_set_bytes=192 * 1024,
    ),
    "libquantum": BenchmarkProfile(
        name="libquantum", working_set_bytes=4 * 1024 * 1024, mean_gap_instructions=10.0,
        write_fraction=0.25, sequential_run_mean=256.0, hot_fraction=0.2,
        hot_set_bytes=64 * 1024,
    ),
    "bzip2": BenchmarkProfile(
        name="bzip2", working_set_bytes=2 * 1024 * 1024, mean_gap_instructions=8.0,
        write_fraction=0.34, sequential_run_mean=24.0, hot_fraction=0.5,
        hot_set_bytes=384 * 1024,
    ),
    "omnetpp": BenchmarkProfile(
        name="omnetpp", working_set_bytes=3 * 1024 * 1024, mean_gap_instructions=8.0,
        write_fraction=0.32, sequential_run_mean=3.0, hot_fraction=0.5,
        hot_set_bytes=384 * 1024,
    ),
    "astar": BenchmarkProfile(
        name="astar", working_set_bytes=2 * 1024 * 1024, mean_gap_instructions=8.0,
        write_fraction=0.3, sequential_run_mean=6.0, hot_fraction=0.55,
        hot_set_bytes=384 * 1024,
    ),
    "gcc": BenchmarkProfile(
        name="gcc", working_set_bytes=1536 * 1024, mean_gap_instructions=9.0,
        write_fraction=0.33, sequential_run_mean=12.0, hot_fraction=0.6,
        hot_set_bytes=448 * 1024,
    ),
    "gobmk": BenchmarkProfile(
        name="gobmk", working_set_bytes=640 * 1024, mean_gap_instructions=11.0,
        write_fraction=0.3, sequential_run_mean=6.0, hot_fraction=0.6,
        hot_set_bytes=256 * 1024,
    ),
    "sjeng": BenchmarkProfile(
        name="sjeng", working_set_bytes=768 * 1024, mean_gap_instructions=11.0,
        write_fraction=0.28, sequential_run_mean=3.0, hot_fraction=0.55,
        hot_set_bytes=256 * 1024,
    ),
    "hmmer": BenchmarkProfile(
        name="hmmer", working_set_bytes=320 * 1024, mean_gap_instructions=9.0,
        write_fraction=0.4, sequential_run_mean=48.0, hot_fraction=0.7,
        hot_set_bytes=128 * 1024,
    ),
    "h264ref": BenchmarkProfile(
        name="h264ref", working_set_bytes=1024 * 1024, mean_gap_instructions=9.0,
        write_fraction=0.35, sequential_run_mean=32.0, hot_fraction=0.55,
        hot_set_bytes=256 * 1024,
    ),
    "perlbench": BenchmarkProfile(
        name="perlbench", working_set_bytes=1024 * 1024, mean_gap_instructions=10.0,
        write_fraction=0.38, sequential_run_mean=8.0, hot_fraction=0.6,
        hot_set_bytes=320 * 1024,
    ),
}


def generate_benchmark_trace(
    profile: BenchmarkProfile,
    num_memory_ops: int,
    rng: random.Random,
) -> list[TraceRecord]:
    """Generate a trace following a benchmark profile.

    Each memory operation is either a hot-set access (temporal locality), a
    continuation of the current sequential run (spatial locality), or the
    start of a new run at a random location in the working set.
    """
    if num_memory_ops < 1:
        raise ConfigurationError("num_memory_ops must be >= 1")
    records: list[TraceRecord] = []
    working_slots = profile.working_set_bytes // profile.access_bytes
    hot_bytes = min(profile.hot_set_bytes, profile.working_set_bytes)
    hot_slots = max(1, hot_bytes // profile.access_bytes)
    run_remaining = 0
    cursor = rng.randrange(working_slots)
    continue_probability = 1.0 - 1.0 / profile.sequential_run_mean

    for _ in range(num_memory_ops):
        gap = _poisson_like(profile.mean_gap_instructions, rng)
        if rng.random() < profile.hot_fraction:
            address = rng.randrange(hot_slots) * profile.access_bytes
        else:
            if run_remaining <= 0 or rng.random() >= continue_probability:
                cursor = rng.randrange(working_slots)
                run_remaining = max(1, int(rng.expovariate(1.0 / profile.sequential_run_mean)))
            address = cursor * profile.access_bytes
            cursor = (cursor + 1) % working_slots
            run_remaining -= 1
        records.append(
            TraceRecord(
                gap_instructions=gap,
                address=address,
                is_write=rng.random() < profile.write_fraction,
            )
        )
    return records


def _poisson_like(mean: float, rng: random.Random) -> int:
    """Cheap integer gap sampler with the requested mean."""
    if mean <= 0:
        return 0
    return max(0, int(round(rng.expovariate(1.0 / mean))))


def benchmark_trace(benchmark: str, num_memory_ops: int, seed: int = 0) -> list[TraceRecord]:
    """Runner-ready trace generation for one named benchmark.

    The trace RNG is derived from ``seed`` and the trace's identity through
    the runner's :func:`~repro.runner.derive_seed` mechanism, so a
    process-pool worker regenerates exactly the trace a serial run would —
    and every driver replaying the same benchmark at the same base seed
    (e.g. a DRAM baseline and its ORAM counterparts) sees the same memory
    reference stream.
    """
    if benchmark not in SPEC_PROFILES:
        raise ConfigurationError(
            f"unknown benchmark {benchmark!r}; profiles: {sorted(SPEC_PROFILES)}"
        )
    rng = random.Random(derive_seed(seed, ("spec-trace", benchmark, num_memory_ops)))
    return generate_benchmark_trace(SPEC_PROFILES[benchmark], num_memory_ops, rng)
