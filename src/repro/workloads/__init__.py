"""Memory-trace generators.

:mod:`repro.workloads.synthetic` provides elementary access patterns
(uniform random, sequential scan, strided, pointer chase, hot/cold) used by
unit tests and the design-space sweeps.

:mod:`repro.workloads.spec_like` provides parameterised benchmark profiles
standing in for the SPEC06-int subset the paper evaluates (reference inputs
and the SESC tracer are unavailable offline); each profile is tuned to a
regime — memory-bound pointer chasing, streaming, compute-bound — so that
the relative behaviour in Figure 12 is preserved.
"""

from repro.workloads.spec_like import (
    SPEC_PROFILES,
    BenchmarkProfile,
    generate_benchmark_trace,
)
from repro.workloads.synthetic import (
    hotspot_trace,
    pointer_chase_trace,
    random_access_trace,
    sequential_scan_trace,
    strided_trace,
)

__all__ = [
    "random_access_trace",
    "sequential_scan_trace",
    "strided_trace",
    "pointer_chase_trace",
    "hotspot_trace",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "generate_benchmark_trace",
]
