"""Elementary synthetic memory traces.

All generators return a list of :class:`~repro.processor.trace.TraceRecord`
and take an explicit :class:`random.Random` so experiments are reproducible.
Addresses are byte addresses within ``[0, working_set_bytes)``.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.processor.trace import TraceRecord
from repro.runner import derive_seed


def _check_args(num_ops: int, working_set_bytes: int) -> None:
    if num_ops < 1:
        raise ConfigurationError("num_ops must be >= 1")
    if working_set_bytes < 8:
        raise ConfigurationError("working_set_bytes must be >= 8")


def random_access_trace(
    num_ops: int,
    working_set_bytes: int,
    rng: random.Random,
    write_fraction: float = 0.3,
    gap_instructions: int = 5,
    access_bytes: int = 8,
) -> list[TraceRecord]:
    """Uniformly random accesses over the working set (worst-case locality)."""
    _check_args(num_ops, working_set_bytes)
    slots = working_set_bytes // access_bytes
    return [
        TraceRecord(
            gap_instructions=gap_instructions,
            address=rng.randrange(slots) * access_bytes,
            is_write=rng.random() < write_fraction,
        )
        for _ in range(num_ops)
    ]


def sequential_scan_trace(
    num_ops: int,
    working_set_bytes: int,
    rng: random.Random,
    write_fraction: float = 0.0,
    gap_instructions: int = 5,
    access_bytes: int = 8,
) -> list[TraceRecord]:
    """A repeated linear scan of the working set (streaming, best locality)."""
    _check_args(num_ops, working_set_bytes)
    slots = working_set_bytes // access_bytes
    return [
        TraceRecord(
            gap_instructions=gap_instructions,
            address=(i % slots) * access_bytes,
            is_write=rng.random() < write_fraction,
        )
        for i in range(num_ops)
    ]


def strided_trace(
    num_ops: int,
    working_set_bytes: int,
    rng: random.Random,
    stride_bytes: int = 256,
    write_fraction: float = 0.0,
    gap_instructions: int = 5,
) -> list[TraceRecord]:
    """A strided sweep (e.g. column-major matrix traversal)."""
    _check_args(num_ops, working_set_bytes)
    if stride_bytes < 1:
        raise ConfigurationError("stride_bytes must be >= 1")
    records = []
    address = 0
    for _ in range(num_ops):
        records.append(
            TraceRecord(
                gap_instructions=gap_instructions,
                address=address,
                is_write=rng.random() < write_fraction,
            )
        )
        address = (address + stride_bytes) % working_set_bytes
    return records


def pointer_chase_trace(
    num_ops: int,
    working_set_bytes: int,
    rng: random.Random,
    node_bytes: int = 64,
    write_fraction: float = 0.1,
    gap_instructions: int = 3,
) -> list[TraceRecord]:
    """Follow a random single-cycle permutation of nodes (linked-list walk).

    This is the canonical memory-latency-bound pattern (mcf-like): no
    spatial locality and a dependent load on the critical path.  The
    permutation is a single cycle covering every node, so a long enough
    trace touches the whole working set.
    """
    _check_args(num_ops, working_set_bytes)
    num_nodes = max(2, working_set_bytes // node_bytes)
    order = list(range(num_nodes))
    rng.shuffle(order)
    successor = [0] * num_nodes
    for position, node in enumerate(order):
        successor[node] = order[(position + 1) % num_nodes]
    records = []
    node = order[0]
    for _ in range(num_ops):
        records.append(
            TraceRecord(
                gap_instructions=gap_instructions,
                address=node * node_bytes,
                is_write=rng.random() < write_fraction,
            )
        )
        node = successor[node]
    return records


def hotspot_trace(
    num_ops: int,
    working_set_bytes: int,
    rng: random.Random,
    hot_fraction: float = 0.9,
    hot_set_bytes: int = 64 * 1024,
    write_fraction: float = 0.3,
    gap_instructions: int = 8,
    access_bytes: int = 8,
) -> list[TraceRecord]:
    """Mostly-hot accesses to a small region with occasional cold misses."""
    _check_args(num_ops, working_set_bytes)
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigurationError("hot_fraction must be in [0, 1]")
    hot_slots = max(1, min(hot_set_bytes, working_set_bytes) // access_bytes)
    cold_slots = max(1, working_set_bytes // access_bytes)
    records = []
    for _ in range(num_ops):
        if rng.random() < hot_fraction:
            address = rng.randrange(hot_slots) * access_bytes
        else:
            address = rng.randrange(cold_slots) * access_bytes
        records.append(
            TraceRecord(
                gap_instructions=gap_instructions,
                address=address,
                is_write=rng.random() < write_fraction,
            )
        )
    return records


#: Named generators for runner-driven trace specs.
GENERATORS = {
    "random": random_access_trace,
    "sequential": sequential_scan_trace,
    "strided": strided_trace,
    "pointer_chase": pointer_chase_trace,
    "hotspot": hotspot_trace,
}


def synthetic_trace(
    kind: str,
    num_ops: int,
    working_set_bytes: int,
    seed: int = 0,
    **kwargs,
) -> list[TraceRecord]:
    """Runner-ready synthetic trace generation by generator name.

    The RNG is derived from ``seed`` and the trace's identity through the
    runner's :func:`~repro.runner.derive_seed` mechanism, so a process-pool
    worker regenerates exactly the trace a serial run would.
    """
    generator = GENERATORS.get(kind)
    if generator is None:
        raise ConfigurationError(
            f"unknown trace generator {kind!r}; known: {sorted(GENERATORS)}"
        )
    rng = random.Random(
        derive_seed(seed, ("synthetic-trace", kind, num_ops, working_set_bytes))
    )
    return generator(num_ops, working_set_bytes, rng, **kwargs)
