"""Set-associative caches and the exclusive L1/L2 hierarchy of Table 1."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.processor.config import CacheConfig


@dataclass(slots=True)
class EvictedLine:
    """A line pushed out of a cache level."""

    line_address: int
    dirty: bool


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """An LRU set-associative cache indexed by line address."""

    def __init__(self, config: CacheConfig) -> None:
        self._config = config
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.stats = CacheStats()

    @property
    def config(self) -> CacheConfig:
        return self._config

    def _set_index(self, line_address: int) -> int:
        return line_address % self._config.num_sets

    def lookup(self, line_address: int, mark_dirty: bool = False) -> bool:
        """Probe the cache; on a hit, refresh LRU order and optionally mark dirty."""
        cache_set = self._sets[self._set_index(line_address)]
        if line_address in cache_set:
            cache_set.move_to_end(line_address)
            if mark_dirty:
                cache_set[line_address] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def contains(self, line_address: int) -> bool:
        """Probe without touching LRU state or statistics."""
        return line_address in self._sets[self._set_index(line_address)]

    def insert(self, line_address: int, dirty: bool = False) -> EvictedLine | None:
        """Insert a line, returning the victim evicted to make room (if any)."""
        cache_set = self._sets[self._set_index(line_address)]
        if line_address in cache_set:
            cache_set.move_to_end(line_address)
            cache_set[line_address] = cache_set[line_address] or dirty
            return None
        victim: EvictedLine | None = None
        if len(cache_set) >= self._config.ways:
            victim_address, victim_dirty = cache_set.popitem(last=False)
            victim = EvictedLine(line_address=victim_address, dirty=victim_dirty)
        cache_set[line_address] = dirty
        return victim

    def invalidate(self, line_address: int) -> tuple[bool, bool]:
        """Remove a line; returns ``(was_present, was_dirty)``."""
        cache_set = self._sets[self._set_index(line_address)]
        if line_address in cache_set:
            dirty = cache_set.pop(line_address)
            return True, dirty
        return False, False

    def occupancy(self) -> int:
        """Total lines currently resident."""
        return sum(len(cache_set) for cache_set in self._sets)


class CacheHierarchy:
    """Exclusive two-level hierarchy: a line lives in L1 or L2, never both.

    ``access`` returns the latency contribution of the cache levels and a
    list of lines that must be fetched from / written back to memory;
    the processor model charges memory latency separately.
    """

    def __init__(self, l1_config: CacheConfig, l2_config: CacheConfig) -> None:
        self.l1 = SetAssociativeCache(l1_config)
        self.l2 = SetAssociativeCache(l2_config)
        self._line_bytes = l1_config.line_bytes

    @property
    def line_bytes(self) -> int:
        return self._line_bytes

    def line_address(self, byte_address: int) -> int:
        return byte_address // self._line_bytes

    def access(self, byte_address: int, is_write: bool) -> tuple[int, bool, list[EvictedLine]]:
        """Look up one memory reference.

        Returns ``(cache_cycles, llc_miss, writebacks)`` where ``llc_miss``
        indicates the line must be fetched from memory and ``writebacks``
        lists dirty lines pushed out of the hierarchy by the resulting
        fills.
        """
        line = self.line_address(byte_address)
        l1_cfg = self.l1.config
        l2_cfg = self.l2.config

        if self.l1.lookup(line, mark_dirty=is_write):
            return l1_cfg.hit_cycles, False, []

        cycles = l1_cfg.hit_cycles + l1_cfg.miss_cycles
        writebacks: list[EvictedLine] = []

        if self.l2.lookup(line):
            cycles += l2_cfg.hit_cycles
            # Exclusive: promote the line to L1 and remove it from L2.
            _, was_dirty = self.l2.invalidate(line)
            writebacks.extend(self._fill_l1(line, dirty=was_dirty or is_write))
            return cycles, False, writebacks

        cycles += l2_cfg.hit_cycles + l2_cfg.miss_cycles
        writebacks.extend(self._fill_l1(line, dirty=is_write))
        return cycles, True, writebacks

    def fill_prefetched(self, byte_address: int) -> list[EvictedLine]:
        """Install a super-block sibling line into L2 (not L1).

        Returns lines evicted from L2 as a result.  Clean victims are
        reported too because, with an exclusive ORAM, every line leaving the
        cache hierarchy must be returned to the ORAM.
        """
        line = self.line_address(byte_address)
        if self.l1.contains(line) or self.l2.contains(line):
            return []
        victim = self.l2.insert(line, dirty=False)
        return [victim] if victim is not None else []

    def _fill_l1(self, line: int, dirty: bool) -> list[EvictedLine]:
        """Install a line into L1, cascading the victim into L2 (exclusive)."""
        writebacks: list[EvictedLine] = []
        l1_victim = self.l1.insert(line, dirty=dirty)
        if l1_victim is not None:
            l2_victim = self.l2.insert(l1_victim.line_address, dirty=l1_victim.dirty)
            if l2_victim is not None and l2_victim.dirty:
                writebacks.append(l2_victim)
            elif l2_victim is not None:
                # Clean L2 victims silently drop in a conventional system; the
                # exclusive ORAM still needs them back (they are not in the
                # ORAM), so report them as clean writebacks.
                writebacks.append(l2_victim)
        return writebacks

    def flush_writebacks(self) -> list[EvictedLine]:
        """Drain every resident line (used at end-of-simulation accounting)."""
        lines: list[EvictedLine] = []
        for cache in (self.l1, self.l2):
            for cache_set in cache._sets:  # noqa: SLF001 - intentional drain
                for line_address, dirty in cache_set.items():
                    lines.append(EvictedLine(line_address=line_address, dirty=dirty))
                cache_set.clear()
        return lines
