"""Trace-driven secure-processor model (Section 4.3).

The paper connects Path ORAM to a simple in-order core (Table 1) with
exclusive L1/L2 caches, simulated with SESC over SPEC06-int traces.  This
package provides the equivalent substrate:

* :mod:`repro.processor.config` — the Table 1 core and cache parameters.
* :mod:`repro.processor.cache` — set-associative caches and the exclusive
  two-level hierarchy.
* :mod:`repro.processor.memory` — memory back-ends: an insecure DRAM
  baseline and the Path ORAM back-end (with super-block prefetching and
  background-eviction busy time).
* :mod:`repro.processor.trace` — the memory-trace record format.
* :mod:`repro.processor.simulator` — the in-order timing model that runs a
  trace against a cache hierarchy and memory back-end.
"""

from repro.processor.cache import CacheHierarchy, SetAssociativeCache
from repro.processor.config import CacheConfig, CoreConfig, ProcessorConfig
from repro.processor.memory import DRAMBackend, MemoryBackend, ORAMBackend
from repro.processor.simulator import ProcessorSimulator, SimulationResult
from repro.processor.trace import MemoryTrace, TraceRecord

__all__ = [
    "CoreConfig",
    "CacheConfig",
    "ProcessorConfig",
    "SetAssociativeCache",
    "CacheHierarchy",
    "MemoryBackend",
    "DRAMBackend",
    "ORAMBackend",
    "ProcessorSimulator",
    "SimulationResult",
    "TraceRecord",
    "MemoryTrace",
]
