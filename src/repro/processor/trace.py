"""Memory-trace record format for the trace-driven processor model.

The paper generates instruction/memory traces with SESC's fast-forward mode
and replays them through a timing model.  We use the same structure: a
trace is a sequence of memory operations, each annotated with the number of
non-memory instructions executed since the previous one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import TraceFormatError


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One memory operation in a program trace.

    Attributes
    ----------
    gap_instructions:
        Non-memory instructions executed since the previous memory
        operation (charged at the core's average CPI).
    address:
        Byte address accessed.
    is_write:
        True for a store, False for a load.
    """

    gap_instructions: int
    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.gap_instructions < 0:
            raise TraceFormatError("gap_instructions must be non-negative")
        if self.address < 0:
            raise TraceFormatError("address must be non-negative")


MemoryTrace = Iterable[TraceRecord]


def validate_trace(trace: MemoryTrace) -> Iterator[TraceRecord]:
    """Yield records from ``trace``, raising on malformed entries."""
    for index, record in enumerate(trace):
        if not isinstance(record, TraceRecord):
            raise TraceFormatError(f"trace entry {index} is not a TraceRecord")
        yield record


def trace_footprint_bytes(trace: list[TraceRecord], line_bytes: int = 128) -> int:
    """Unique cache-line footprint of a trace (for sizing the ORAM)."""
    lines = {record.address // line_bytes for record in trace}
    return len(lines) * line_bytes
