"""Processor configuration (Table 1 of the paper).

The evaluated core is in-order and single-issue with fixed per-class
instruction latencies, a 32 KB 4-way L1, a 1 MB 16-way L2 (both exclusive)
and 128-byte cache lines.  The CPU clock is four times the DDR3 clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoreConfig:
    """In-order core latencies (cycles per instruction class)."""

    int_arith_cycles: int = 1
    int_mult_cycles: int = 4
    int_div_cycles: int = 12
    fp_arith_cycles: int = 2
    fp_mult_cycles: int = 4
    fp_div_cycles: int = 10

    #: Average cycles charged per non-memory instruction by the trace-driven
    #: model (the trace records only memory operations, so the instruction
    #: mix between them is charged at this average rate).
    average_non_memory_cpi: float = 1.0

    def __post_init__(self) -> None:
        if self.average_non_memory_cpi <= 0:
            raise ConfigurationError("average_non_memory_cpi must be positive")


@dataclass(frozen=True)
class CacheConfig:
    """One level of on-chip cache."""

    size_bytes: int
    ways: int
    line_bytes: int = 128
    hit_cycles: int = 1
    miss_cycles: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache dimensions must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigurationError(
                "cache size must be a multiple of ways * line_bytes "
                f"({self.size_bytes} % {self.ways * self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class ProcessorConfig:
    """The full Table 1 configuration."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, ways=4, line_bytes=128, hit_cycles=2, miss_cycles=1
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=1024 * 1024, ways=16, line_bytes=128, hit_cycles=10, miss_cycles=4
        )
    )

    #: CPU clock cycles per DRAM clock cycle (the paper assumes 4x DDR3).
    cpu_cycles_per_dram_cycle: int = 4

    def __post_init__(self) -> None:
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ConfigurationError("L1 and L2 must share a line size")
        if self.cpu_cycles_per_dram_cycle < 1:
            raise ConfigurationError("cpu_cycles_per_dram_cycle must be >= 1")

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes


def table1_processor() -> ProcessorConfig:
    """The exact configuration of Table 1."""
    return ProcessorConfig()
