"""The in-order, trace-driven processor timing model (Table 1, Figure 12)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.processor.cache import CacheHierarchy
from repro.processor.config import ProcessorConfig
from repro.processor.memory import MemoryBackend
from repro.processor.trace import MemoryTrace


@dataclass
class SimulationResult:
    """Outcome of replaying one trace on one processor configuration."""

    backend_name: str
    total_cycles: float
    instructions: int
    memory_operations: int
    llc_misses: int
    l1_miss_rate: float
    l2_miss_rate: float
    oram_dummy_accesses: int = 0
    average_memory_latency: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def cycles_per_instruction(self) -> float:
        return self.total_cycles / self.instructions if self.instructions else 0.0

    def slowdown_over(self, baseline: "SimulationResult") -> float:
        """Execution-time ratio versus a baseline run of the same trace."""
        if baseline.total_cycles == 0:
            return float("inf")
        return self.total_cycles / baseline.total_cycles


class ProcessorSimulator:
    """Replays a memory trace against caches and a memory back-end.

    The core is in-order and single-issue: non-memory instructions retire at
    the configured average CPI, every memory operation goes through the
    exclusive L1/L2 hierarchy, and last-level misses stall the core until
    the back-end returns the line.
    """

    def __init__(self, config: ProcessorConfig, backend: MemoryBackend) -> None:
        self._config = config
        self._backend = backend
        self._hierarchy = CacheHierarchy(config.l1, config.l2)

    @property
    def config(self) -> ProcessorConfig:
        return self._config

    @property
    def backend(self) -> MemoryBackend:
        return self._backend

    @property
    def hierarchy(self) -> CacheHierarchy:
        return self._hierarchy

    def run(self, trace: MemoryTrace, warmup_operations: int = 0) -> SimulationResult:
        """Replay ``trace`` and return aggregate timing statistics.

        The first ``warmup_operations`` memory operations warm the cache
        hierarchy (standing in for the paper's 1-billion-instruction
        fast-forward) and are excluded from the reported cycle and
        instruction counts; the memory back-end is not consulted during
        warm-up, so warming is cheap even for the ORAM back-end.
        """
        core = self._config.core
        line_bytes = self._config.line_bytes
        cycles = 0.0
        instructions = 0
        memory_operations = 0
        llc_misses = 0
        warmup_cycles = 0.0
        warmup_instructions = 0

        for record in trace:
            in_warmup = memory_operations < warmup_operations
            if memory_operations == warmup_operations and warmup_operations > 0:
                warmup_cycles = cycles
                warmup_instructions = instructions
            cycles += record.gap_instructions * core.average_non_memory_cpi
            instructions += record.gap_instructions + 1
            memory_operations += 1

            cache_cycles, llc_miss, writebacks = self._hierarchy.access(
                record.address, record.is_write
            )
            cycles += cache_cycles

            if in_warmup:
                continue

            if llc_miss:
                llc_misses += 1
                line_address = self._hierarchy.line_address(record.address)
                fetch = self._backend.fetch_line(line_address, cycles)
                cycles += fetch.latency_cycles
                for prefetched_line in fetch.prefetched_lines:
                    writebacks.extend(
                        self._hierarchy.fill_prefetched(prefetched_line * line_bytes)
                    )

            for victim in writebacks:
                self._backend.writeback_line(victim.line_address, victim.dirty, cycles)

        stats = self._backend.stats
        return SimulationResult(
            backend_name=self._backend.name,
            total_cycles=cycles - warmup_cycles,
            instructions=instructions - warmup_instructions,
            memory_operations=memory_operations,
            llc_misses=llc_misses,
            l1_miss_rate=self._hierarchy.l1.stats.miss_rate,
            l2_miss_rate=self._hierarchy.l2.stats.miss_rate,
            oram_dummy_accesses=stats.oram_dummy_accesses,
            average_memory_latency=stats.average_fetch_latency,
        )
