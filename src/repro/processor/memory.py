"""Memory back-ends for the processor model: insecure DRAM and Path ORAM.

The DRAM back-end models the conventional baseline of Figure 12: a
last-level-cache miss performs one fast-page / burst access to the line of
interest, paying a row-buffer hit or miss latency.  The ORAM back-end wraps
an :class:`~repro.core.interface.ORAMMemoryInterface`: every miss is a full
ORAM access (hundreds of times more data moved), background-eviction dummy
accesses keep the ORAM busy, and super blocks return sibling lines that the
cache hierarchy installs as prefetches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.interface import ORAMMemoryInterface
from repro.dram.address_mapping import AddressMapping
from repro.dram.config import DRAMConfig


@dataclass(slots=True)
class FetchResult:
    """Outcome of fetching one line from memory."""

    latency_cycles: float
    prefetched_lines: list[int] = field(default_factory=list)


@dataclass(slots=True)
class BackendStats:
    """Counters shared by every memory back-end."""

    fetches: int = 0
    writebacks: int = 0
    dirty_writebacks: int = 0
    row_hits: int = 0
    row_misses: int = 0
    oram_dummy_accesses: int = 0
    total_fetch_latency: float = 0.0

    @property
    def average_fetch_latency(self) -> float:
        return self.total_fetch_latency / self.fetches if self.fetches else 0.0


class MemoryBackend(ABC):
    """What the last-level cache talks to on a miss."""

    def __init__(self) -> None:
        self.stats = BackendStats()

    @property
    @abstractmethod
    def name(self) -> str:
        """Short label used in reports."""

    @abstractmethod
    def fetch_line(self, line_address: int, now_cycles: float) -> FetchResult:
        """Fetch one cache line; returns its latency and any prefetched lines."""

    @abstractmethod
    def writeback_line(self, line_address: int, dirty: bool, now_cycles: float) -> None:
        """Return an evicted line to memory (does not stall the core)."""


class DRAMBackend(MemoryBackend):
    """Insecure conventional DRAM: one burst access per line.

    A per-bank open-row table decides between a row-buffer hit
    (``tCAS + transfer``) and a miss (``tRP + tRCD + tCAS + transfer``);
    cycles are converted from DRAM to CPU clocks.
    """

    def __init__(
        self,
        dram_config: DRAMConfig | None = None,
        line_bytes: int = 128,
        cpu_cycles_per_dram_cycle: int = 4,
    ) -> None:
        super().__init__()
        self._config = dram_config if dram_config is not None else DRAMConfig()
        self._mapping = AddressMapping(self._config)
        self._line_bytes = line_bytes
        self._cpu_per_dram = cpu_cycles_per_dram_cycle
        self._open_rows: dict[tuple[int, int], int] = {}

    @property
    def name(self) -> str:
        return "DRAM"

    def _access_cycles(self, line_address: int, is_write: bool) -> float:
        timing = self._config.timing
        byte_address = line_address * self._line_bytes
        bursts = max(1, self._line_bytes // self._config.access_granularity_bytes)
        location = self._mapping.locate(byte_address)
        key = (location.channel, location.bank)
        if self._open_rows.get(key) == location.row:
            self.stats.row_hits += 1
            dram_cycles = timing.t_cas + bursts * timing.t_burst
        else:
            self.stats.row_misses += 1
            dram_cycles = timing.row_miss_penalty + timing.t_cas + bursts * timing.t_burst
            self._open_rows[key] = location.row
        return dram_cycles * self._cpu_per_dram

    def fetch_line(self, line_address: int, now_cycles: float) -> FetchResult:
        latency = self._access_cycles(line_address, is_write=False)
        self.stats.fetches += 1
        self.stats.total_fetch_latency += latency
        return FetchResult(latency_cycles=latency)

    def writeback_line(self, line_address: int, dirty: bool, now_cycles: float) -> None:
        self.stats.writebacks += 1
        if dirty:
            self.stats.dirty_writebacks += 1
            # Writes are posted (buffered); they update the open-row state
            # but do not stall the core.
            self._access_cycles(line_address, is_write=True)


class ORAMBackend(MemoryBackend):
    """Path ORAM main memory behind the exclusive ORAM interface.

    Parameters
    ----------
    interface:
        The exclusive ORAM front-end (single or hierarchical ORAM).
    return_data_cycles:
        CPU cycles from the start of an ORAM access until the requested
        block is returned (Table 2, "return data").
    finish_access_cycles:
        CPU cycles until the access's path write-backs complete (Table 2,
        "finish access"); the ORAM cannot start another access before then.
    line_bytes:
        Cache-line size; must equal the data ORAM block size.
    """

    def __init__(
        self,
        interface: ORAMMemoryInterface,
        return_data_cycles: float,
        finish_access_cycles: float,
        line_bytes: int = 128,
    ) -> None:
        super().__init__()
        self._interface = interface
        self._return_data = return_data_cycles
        self._finish_access = finish_access_cycles
        self._line_bytes = line_bytes
        self._busy_until = 0.0
        oram = interface.oram
        data_config = oram.data_oram.config if hasattr(oram, "data_oram") else oram.config
        self._working_set_blocks = data_config.working_set_blocks

    @property
    def name(self) -> str:
        return "PathORAM"

    @property
    def interface(self) -> ORAMMemoryInterface:
        return self._interface

    @property
    def busy_until(self) -> float:
        """CPU cycle until which the ORAM is occupied by in-flight work."""
        return self._busy_until

    def _block_address(self, line_address: int) -> int:
        """Fold a line address into the ORAM's block address space (1-based)."""
        return line_address % self._working_set_blocks + 1

    def fetch_line(self, line_address: int, now_cycles: float) -> FetchResult:
        block_address = self._block_address(line_address)
        dummies_before = self._interface.dummy_accesses()
        extracted = self._interface.fetch(block_address)
        dummies_issued = self._interface.dummy_accesses() - dummies_before

        start = max(now_cycles, self._busy_until)
        data_ready = start + self._return_data
        self._busy_until = start + self._finish_access + dummies_issued * self._finish_access

        latency = data_ready - now_cycles
        prefetched = [
            line_address + (sibling - block_address)
            for sibling in extracted
            if sibling != block_address
        ]
        self.stats.fetches += 1
        self.stats.total_fetch_latency += latency
        self.stats.oram_dummy_accesses += dummies_issued
        return FetchResult(latency_cycles=latency, prefetched_lines=prefetched)

    def writeback_line(self, line_address: int, dirty: bool, now_cycles: float) -> None:
        """Return an evicted line to the ORAM stash (exclusive ORAM).

        The insertion itself needs no path access (Section 3.3.1), but any
        background-eviction dummy accesses it triggers occupy the ORAM.
        """
        block_address = self._block_address(line_address)
        dummies_before = self._interface.dummy_accesses()
        self._interface.writeback(block_address, data=None)
        dummies_issued = self._interface.dummy_accesses() - dummies_before
        if dummies_issued:
            start = max(now_cycles, self._busy_until)
            self._busy_until = start + dummies_issued * self._finish_access
        self.stats.writebacks += 1
        if dirty:
            self.stats.dirty_writebacks += 1
        self.stats.oram_dummy_accesses += dummies_issued
