"""Exception hierarchy shared by every repro subpackage."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class StashOverflowError(ReproError):
    """The Path ORAM stash exceeded its capacity.

    With background eviction enabled this should never be raised; it exists
    so that experiments *without* background eviction (e.g. the Figure 3
    stash-occupancy study) can detect and report Path ORAM failure.
    """


class IntegrityError(ReproError):
    """Integrity verification failed: a hash along the path did not match."""


class CheckpointError(ReproError):
    """A snapshot or checkpoint could not be written, read, or restored.

    Raised for versioned-snapshot envelope mismatches (unknown format,
    newer version, wrong object kind) and for on-disk checkpoint problems
    (corrupt payload digest, non-monotonic generation numbers).
    """


class DurabilityError(ReproError):
    """A durable storage file is unusable at its last committed state.

    Raised by the memory-mapped storage stack
    (:mod:`repro.core.memmap_tree`) when ``open()`` cannot produce the
    last committed generation: no intact generation header survives, a
    page checksum still mismatches after journal rollback, the file was
    truncated below its described layout, the sidecar payload store is
    unrecoverable, or the on-disk generation moved against a durable
    reference (external rollback / divergent history).  Deliberately
    distinct from :class:`CheckpointError`: a durability failure is a
    *deterministic* storage-state problem the retry policy must never
    re-execute its way around.
    """


class EncryptionError(ReproError):
    """A bucket could not be encrypted or decrypted (wrong key or size)."""


class TraceFormatError(ReproError):
    """A memory trace record is malformed."""
